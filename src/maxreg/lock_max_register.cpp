#include "ruco/maxreg/lock_max_register.h"

#include <algorithm>
#include <cassert>

namespace ruco::maxreg {

Value LockMaxRegister::read_max(ProcId /*proc*/) const {
  const std::scoped_lock lock{mutex_};
  return value_;
}

void LockMaxRegister::write_max(ProcId /*proc*/, Value v) {
  assert(v >= 0);
  const std::scoped_lock lock{mutex_};
  value_ = std::max(value_, v);
}

}  // namespace ruco::maxreg
