#include "ruco/maxreg/lock_max_register.h"

#include <algorithm>
#include <stdexcept>

namespace ruco::maxreg {

Value LockMaxRegister::read_max(ProcId /*proc*/) const {
  const std::scoped_lock lock{mutex_};
  return value_;
}

void LockMaxRegister::write_max(ProcId /*proc*/, Value v) {
  if (v < 0) {
    throw std::out_of_range{"LockMaxRegister::write_max: negative operand"};
  }
  const std::scoped_lock lock{mutex_};
  value_ = std::max(value_, v);
}

}  // namespace ruco::maxreg
