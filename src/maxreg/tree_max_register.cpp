#include "ruco/maxreg/tree_max_register.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ruco/maxreg/propagate.h"
#include "ruco/runtime/memorder.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/telemetry/metrics.h"

namespace ruco::maxreg {

namespace {
constexpr Value combine_max(Value l, Value r) noexcept {
  return std::max(l, r);
}
}  // namespace

TreeMaxRegister::TreeMaxRegister(std::uint32_t num_processes,
                                 Faithfulness mode)
    : shape_{num_processes},
      values_(shape_.node_count(), runtime::PaddedAtomic<Value>{kNoValue}),
      mode_{mode} {}

Value TreeMaxRegister::read_max(ProcId /*proc*/) const {
  runtime::step_tick();
  return values_[shape_.root()].value.load(runtime::mo_acquire);
}

void TreeMaxRegister::write_max(ProcId proc, Value v) {
  if (v < 0) {
    throw std::out_of_range{"TreeMaxRegister::write_max: negative operand"};
  }
  assert(proc < shape_.num_processes());
  if (mode_ == Faithfulness::kHelpOnDuplicate) {
    // Root-check fast path: if the root already covers v, every subsequent
    // ReadMax returns >= v and this operation may linearize right after the
    // write that put the root there -- O(1) instead of a full descent.
    // Not applied in kAsPrinted mode, which reproduces the paper's literal
    // pseudocode.
    runtime::step_tick();
    if (values_[shape_.root()].value.load(runtime::mo_acquire) >= v) {
      telemetry::prod().tree_root_fastpath.inc();
      return;
    }
  }
  const auto leaf = v < shape_.num_processes()
                        ? shape_.value_leaf(static_cast<std::uint64_t>(v))
                        : shape_.process_leaf(proc);
  telemetry::prod().tree_descent_depth.record(shape_.depth(leaf));
  runtime::step_tick();
  const Value old_value =
      values_[leaf].value.load(runtime::mo_acquire);
  if (v <= old_value) {
    // Another write of >= v already reached this leaf.  The paper's printed
    // code returns here; without helping, the other write may not have
    // propagated yet and this (completed) operation could be missed by a
    // subsequent ReadMax.
    telemetry::prod().tree_duplicate_writes.inc();
    if (mode_ == Faithfulness::kHelpOnDuplicate) {
      propagate_twice(shape_, values_, leaf, combine_max);
    }
    return;
  }
  runtime::step_tick();
  values_[leaf].value.store(v, runtime::mo_release);
  propagate_twice(shape_, values_, leaf, combine_max);
}

std::uint32_t TreeMaxRegister::write_leaf_depth(ProcId proc, Value v) const {
  const auto leaf = v < shape_.num_processes()
                        ? shape_.value_leaf(static_cast<std::uint64_t>(v))
                        : shape_.process_leaf(proc);
  return shape_.depth(leaf);
}

}  // namespace ruco::maxreg
