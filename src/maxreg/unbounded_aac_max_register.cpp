#include "ruco/maxreg/unbounded_aac_max_register.h"

#include <cassert>
#include <stdexcept>

#include "ruco/runtime/stepcount.h"
#include "ruco/util/bits.h"

namespace ruco::maxreg {

namespace {
constexpr Value group_base(std::uint32_t g) noexcept {
  return (Value{1} << g) - 1;
}
}  // namespace

UnboundedAacMaxRegister::UnboundedAacMaxRegister(std::uint32_t max_groups)
    : max_groups_{max_groups} {
  if (max_groups < 1 || max_groups > 26) {
    throw std::invalid_argument{
        "UnboundedAacMaxRegister: max_groups out of [1, 26]"};
  }
  spine_ = std::vector<std::atomic<std::uint8_t>>(max_groups_);
  groups_ = std::vector<std::atomic<AacMaxRegister*>>(max_groups_);
}

UnboundedAacMaxRegister::~UnboundedAacMaxRegister() {
  for (auto& g : groups_) delete g.load();
}

AacMaxRegister& UnboundedAacMaxRegister::group(std::uint32_t g) {
  AacMaxRegister* current = groups_[g].load();
  if (current != nullptr) return *current;
  auto* fresh = new AacMaxRegister{Value{1} << g};
  if (groups_[g].compare_exchange_strong(current, fresh)) return *fresh;
  delete fresh;  // lost the install race; use the winner's
  return *current;
}

const AacMaxRegister* UnboundedAacMaxRegister::group_if_present(
    std::uint32_t g) const {
  return groups_[g].load();
}

std::uint32_t UnboundedAacMaxRegister::group_of(Value v) noexcept {
  return util::floor_log2(static_cast<std::uint64_t>(v) + 1);
}

Value UnboundedAacMaxRegister::read_max(ProcId proc) const {
  // Follow the spine to the deepest group some write has fully reached.
  // A spine switch rises only after the write below it completed, and
  // switches rise bottom-up, so the walk never overshoots into an empty
  // group.
  std::uint32_t g = 0;
  while (g + 1 < max_groups_) {
    runtime::step_tick();
    if (spine_[g].load() == 0) break;
    ++g;
  }
  const AacMaxRegister* reg = group_if_present(g);
  if (reg == nullptr) return kNoValue;  // nothing ever written here
  const Value inner = reg->read_max(proc);
  if (inner == kNoValue) return kNoValue;
  return group_base(g) + inner;
}

void UnboundedAacMaxRegister::write_max(ProcId proc, Value v) {
  if (v < 0) {
    throw std::out_of_range{
        "UnboundedAacMaxRegister::write_max: negative operand"};
  }
  const std::uint32_t g = group_of(v);
  if (g >= max_groups_) {
    throw std::out_of_range{
        "UnboundedAacMaxRegister: operand exceeds the group envelope"};
  }
  // AAC composition, unrolled along the spine: v lives in the *left* part
  // of spine node g, so check that node's switch before writing; the spine
  // nodes below g were right turns, whose switches rise on the way out.
  runtime::step_tick();
  if (spine_[g].load() == 0) {
    group(g).write_max(proc, v - group_base(g));
  }
  // Raise the right-turn switches bottom-up (s_{g-1} first): each rises
  // only once everything beneath it is recorded.
  for (std::uint32_t s = g; s-- > 0;) {
    runtime::step_tick();
    spine_[s].store(1);
  }
}

Value UnboundedAacMaxRegister::max_value() const noexcept {
  return read_max(0);
}

}  // namespace ruco::maxreg
