#include "ruco/maxreg/aac_max_register.h"

#include <cassert>
#include <stdexcept>

#include "ruco/runtime/stepcount.h"
#include "ruco/telemetry/metrics.h"
#include "ruco/util/bits.h"

namespace ruco::maxreg {

AacMaxRegister::AacMaxRegister(Value bound)
    : bound_{bound}, levels_{0}, any_write_{0} {
  if (bound < 1) throw std::invalid_argument{"AacMaxRegister: bound < 1"};
  const std::uint64_t capacity =
      util::next_pow2(static_cast<std::uint64_t>(bound));
  levels_ = util::floor_log2(capacity);
  // Heap-ordered internal nodes 1 .. capacity-1 (index 0 unused).
  switches_ = std::vector<std::atomic<std::uint8_t>>(capacity);
}

Value AacMaxRegister::read_max(ProcId /*proc*/) const {
  runtime::step_tick();
  if (any_write_.load() == 0) return kNoValue;
  std::uint64_t node = 1;
  Value acc = 0;
  Value half = levels_ > 0 ? Value{1} << (levels_ - 1) : 0;
  for (std::uint32_t d = 0; d < levels_; ++d, half >>= 1) {
    runtime::step_tick();
    if (switches_[node].load() != 0) {
      acc += half;
      node = 2 * node + 1;
    } else {
      node = 2 * node;
    }
  }
  return acc;
}

void AacMaxRegister::write_max(ProcId /*proc*/, Value v) {
  if (v < 0) {
    throw std::out_of_range{"AacMaxRegister::write_max: negative operand"};
  }
  if (v >= bound_) {
    throw std::out_of_range{"AacMaxRegister::write_max: operand >= bound"};
  }
  // Descend by v's bits, remembering right turns; abandon on a set switch at
  // a left turn (a larger value is already fully recorded to our right).
  std::uint64_t node = 1;
  Value half = levels_ > 0 ? Value{1} << (levels_ - 1) : 0;
  std::uint64_t right_turns[64];
  std::size_t num_right_turns = 0;
  Value rest = v;
  for (std::uint32_t d = 0; d < levels_; ++d, half >>= 1) {
    if (rest < half) {
      runtime::step_tick();
      if (switches_[node].load() != 0) {  // abandon: dominated
        telemetry::prod().aac_write_abandons.inc();
        break;
      }
      node = 2 * node;
    } else {
      right_turns[num_right_turns++] = node;
      rest -= half;
      node = 2 * node + 1;
    }
  }
  // Raise the switches of our right turns bottom-up: a switch only rises
  // once the value beneath it is fully recorded.  On abandon this unwinds
  // exactly like the recursive original returning through its callers.
  for (std::size_t i = num_right_turns; i-- > 0;) {
    runtime::step_tick();
    switches_[right_turns[i]].store(1);
    telemetry::prod().aac_switches_set.inc();
  }
  runtime::step_tick();
  any_write_.store(1);
}

}  // namespace ruco::maxreg
