#include "ruco/maxreg/cas_max_register.h"

#include <cstdint>
#include <stdexcept>

#include "ruco/runtime/backoff.h"
#include "ruco/runtime/memorder.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/telemetry/metrics.h"

namespace ruco::maxreg {

Value CasMaxRegister::read_max(ProcId /*proc*/) const {
  runtime::step_tick();
  return cell_.value.load(runtime::mo_acquire);
}

void CasMaxRegister::write_max(ProcId /*proc*/, Value v) {
  if (v < 0) {
    throw std::out_of_range{"CasMaxRegister::write_max: negative operand"};
  }
  // Memory orders: the cell holds a self-contained Value -- nothing is
  // published through it by dereference -- so the initial load is a hint
  // the CAS re-validates (relaxed), the CAS releases on success (pairs with
  // read_max's acquire), and a failed CAS reloads relaxed: the reloaded
  // value only feeds the monotone `current < v` retest, where per-location
  // coherence already orders it after every value this thread has seen.
  runtime::step_tick();
  Value current = cell_.value.load(runtime::mo_relaxed);
  // Batched telemetry: tally the CAS loop in locals and publish once, so a
  // contended retry burst costs one counter write, not one per attempt.
  std::uint64_t attempts = 0;
  bool won = false;
  runtime::Backoff backoff;
  while (current < v) {
    runtime::step_tick();
    ++attempts;
    if (cell_.value.compare_exchange_weak(current, v,
                                          runtime::mo_release,
                                          runtime::mo_relaxed)) {
      won = true;
      break;
    }
    // compare_exchange reloads `current` on failure; loop re-tests.  Every
    // failure means another writer won -- back off (bounded, pause-hinted)
    // before re-contending the line.
    backoff.pause();
  }
  if (attempts != 0) {
    const telemetry::ProdMetrics& tm = telemetry::prod();
    tm.maxreg_cas_attempts.add(attempts);
    const std::uint64_t lost = attempts - (won ? 1 : 0);
    if (lost != 0) tm.maxreg_cas_failures.add(lost);
  }
}

}  // namespace ruco::maxreg
