#include "ruco/maxreg/cas_max_register.h"

#include <cassert>
#include <cstdint>

#include "ruco/runtime/stepcount.h"
#include "ruco/telemetry/metrics.h"

namespace ruco::maxreg {

Value CasMaxRegister::read_max(ProcId /*proc*/) const {
  runtime::step_tick();
  return cell_.value.load();
}

void CasMaxRegister::write_max(ProcId /*proc*/, Value v) {
  assert(v >= 0);
  runtime::step_tick();
  Value current = cell_.value.load();
  // Batched telemetry: tally the CAS loop in locals and publish once, so a
  // contended retry burst costs one counter write, not one per attempt.
  std::uint64_t attempts = 0;
  bool won = false;
  while (current < v) {
    runtime::step_tick();
    ++attempts;
    if (cell_.value.compare_exchange_weak(current, v)) {
      won = true;
      break;
    }
    // compare_exchange reloads `current` on failure; loop re-tests.
  }
  if (attempts != 0) {
    const telemetry::ProdMetrics& tm = telemetry::prod();
    tm.maxreg_cas_attempts.add(attempts);
    const std::uint64_t lost = attempts - (won ? 1 : 0);
    if (lost != 0) tm.maxreg_cas_failures.add(lost);
  }
}

}  // namespace ruco::maxreg
