#include "ruco/maxreg/cas_max_register.h"

#include <cassert>

#include "ruco/runtime/stepcount.h"

namespace ruco::maxreg {

Value CasMaxRegister::read_max(ProcId /*proc*/) const {
  runtime::step_tick();
  return cell_.value.load();
}

void CasMaxRegister::write_max(ProcId /*proc*/, Value v) {
  assert(v >= 0);
  runtime::step_tick();
  Value current = cell_.value.load();
  while (current < v) {
    runtime::step_tick();
    if (cell_.value.compare_exchange_weak(current, v)) return;
    // compare_exchange reloads `current` on failure; loop re-tests.
  }
}

}  // namespace ruco::maxreg
