#include "ruco/telemetry/sim_export.h"

#include <sstream>

#include "ruco/sim/awareness.h"

namespace ruco::telemetry {

using sim::Event;
using sim::HistoryEvent;
using sim::Prim;
using sim::Trace;

double ContentionReport::steps_per_op() const noexcept {
  std::uint64_t returned = 0;
  for (const ProcContention& p : procs) returned += p.ops_returned;
  if (returned == 0) return 0.0;
  return static_cast<double>(total_steps) / static_cast<double>(returned);
}

double ContentionReport::cas_fail_rate() const noexcept {
  std::uint64_t ok = 0;
  std::uint64_t fail = 0;
  for (const ObjectContention& o : objects) {
    ok += o.cas_ok;
    fail += o.cas_fail;
  }
  if (ok + fail == 0) return 0.0;
  return static_cast<double>(fail) / static_cast<double>(ok + fail);
}

std::string ContentionReport::to_json() const {
  std::ostringstream out;
  out << "{\"total_steps\":" << total_steps
      << ",\"steps_per_op\":" << steps_per_op()
      << ",\"cas_fail_rate\":" << cas_fail_rate() << ",\"objects\":[";
  for (std::size_t o = 0; o < objects.size(); ++o) {
    const ObjectContention& c = objects[o];
    if (o != 0) out << ',';
    out << "{\"object\":" << o << ",\"reads\":" << c.reads
        << ",\"writes\":" << c.writes << ",\"cas_ok\":" << c.cas_ok
        << ",\"cas_fail\":" << c.cas_fail << ",\"spurious\":" << c.spurious
        << ",\"kcas\":" << c.kcas << ",\"total\":" << c.total() << '}';
  }
  out << "],\"processes\":[";
  for (std::size_t p = 0; p < procs.size(); ++p) {
    const ProcContention& c = procs[p];
    if (p != 0) out << ',';
    out << "{\"process\":" << p << ",\"steps\":" << c.steps
        << ",\"ops_invoked\":" << c.ops_invoked
        << ",\"ops_returned\":" << c.ops_returned
        << ",\"cas_fail\":" << c.cas_fail
        << ",\"crashed\":" << (c.crashed ? "true" : "false") << '}';
  }
  out << "]}";
  return out.str();
}

ContentionReport contention_report(const sim::System& sys) {
  ContentionReport r;
  r.objects.resize(sys.num_objects());
  r.procs.resize(sys.num_processes());
  const Trace& trace = sys.trace();
  r.total_steps = trace.size();
  for (const Event& e : trace) {
    ObjectContention& oc = r.objects[e.obj];
    ProcContention& pc = r.procs[e.proc];
    ++pc.steps;
    switch (e.prim) {
      case Prim::kRead:
        ++oc.reads;
        break;
      case Prim::kWrite:
        ++oc.writes;
        break;
      case Prim::kCas:
        if (e.observed != 0) {
          ++oc.cas_ok;
        } else {
          ++oc.cas_fail;
          ++pc.cas_fail;
          if (e.spurious) ++oc.spurious;
        }
        break;
      case Prim::kKcas:
        ++oc.kcas;
        if (e.observed == 0) ++pc.cas_fail;
        break;
    }
  }
  for (const HistoryEvent& h : sys.history()) {
    if (h.kind == HistoryEvent::Kind::kInvoke) {
      ++r.procs[h.proc].ops_invoked;
    } else {
      ++r.procs[h.proc].ops_returned;
    }
  }
  for (ProcId p = 0; p < r.procs.size(); ++p) {
    r.procs[p].crashed = sys.crashed(p);
  }
  return r;
}

namespace {

std::string slice_name(const Event& e) {
  std::ostringstream out;
  switch (e.prim) {
    case Prim::kRead:
      out << "read o" << e.obj << " -> " << e.observed;
      break;
    case Prim::kWrite:
      out << "write o" << e.obj << " := " << e.arg;
      break;
    case Prim::kCas:
      out << "cas o" << e.obj << ' ' << e.expected << "->" << e.arg
          << (e.observed != 0 ? " ok" : e.spurious ? " spurious" : " fail");
      break;
    case Prim::kKcas:
      out << e.kcas.size() << "-cas o" << e.obj
          << (e.observed != 0 ? " ok" : " fail");
      break;
  }
  return out.str();
}

}  // namespace

void sim_timeline(const sim::System& sys, TimelineWriter& out,
                  const SimTimelineOptions& opts) {
  constexpr std::uint32_t kPid = 0;
  const Trace& trace = sys.trace();
  const std::size_t n = sys.num_processes();
  out.set_process_name(kPid, "simulator");
  for (std::uint32_t p = 0; p < n; ++p) {
    out.set_thread_name(kPid, p, "P" + std::to_string(p));
  }
  std::vector<std::uint64_t> last_event(n, 0);
  std::vector<bool> stepped(n, false);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Event& e = trace[i];
    std::ostringstream args;
    args << "{\"changed\":" << (e.changed ? "true" : "false")
         << ",\"observed\":" << e.observed << '}';
    out.complete(kPid, e.proc, slice_name(e), i, 1, args.str());
    if (e.spurious) {
      out.instant(kPid, e.proc, "spurious CAS failure", i);
    }
    last_event[e.proc] = i;
    stepped[e.proc] = true;
  }
  // A crash is not a trace event; mark it just after the victim's last step
  // (or at 0 if it crashed before ever stepping).
  for (std::uint32_t p = 0; p < n; ++p) {
    if (sys.crashed(p)) {
      out.instant(kPid, p, "crash", stepped[p] ? last_event[p] + 1 : 0);
    }
  }
  if (opts.awareness_edges && !trace.empty()) {
    std::uint64_t flow_id = 1;
    for (std::uint32_t target = 0; target < n; ++target) {
      const std::vector<std::uint64_t> aware = sim::first_aware_index(
          trace, n, sys.num_objects(), static_cast<ProcId>(target));
      const std::uint64_t origin = aware[target];  // target's first event
      if (origin == sim::kNeverAware) continue;
      for (std::uint32_t p = 0; p < n; ++p) {
        if (p == target || aware[p] == sim::kNeverAware) continue;
        const std::string name = "aware of P" + std::to_string(target);
        out.flow_start(kPid, target, name, origin, flow_id);
        out.flow_end(kPid, p, name, aware[p], flow_id);
        ++flow_id;
      }
    }
  }
}

}  // namespace ruco::telemetry
