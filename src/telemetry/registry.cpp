#include "ruco/telemetry/registry.h"

#include <sstream>
#include <stdexcept>

namespace ruco::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c; break;
    }
  }
  out << '"';
}

}  // namespace

const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

Registry::Registry(std::uint32_t cell_capacity)
    : capacity_(cell_capacity),
      id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

runtime::PaddedAtomic<std::uint64_t>* Registry::local_cells_slow() {
  auto& cache = detail::tls_slab_cache;
  // This thread has not touched this registry since it last used a
  // different one.  Allocate a fresh slab; if the thread ping-pongs
  // between registries it may own several slabs in the same registry, which
  // only costs memory -- snapshot() sums them all, so totals stay exact.
  std::lock_guard<std::mutex> lock(mu_);
  slabs_.push_back(std::make_unique<Slab>(capacity_));
  Slab* slab = slabs_.back().get();
  cache.registry_id = id_;
  cache.cells = slab->cells.data();
  return cache.cells;
}

void Counter::add_slow(std::uint64_t n) const noexcept {
  if (reg_ == nullptr) return;  // inert (default-constructed) handle
  auto& cell = reg_->local_cells_slow()[cell_].value;
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void Histogram::record_slow(std::uint32_t cell_index) const noexcept {
  if (reg_ == nullptr) return;
  auto& cell = reg_->local_cells_slow()[cell_index].value;
  cell.store(cell.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
}

std::uint32_t Registry::register_metric(std::string_view domain,
                                        std::string_view name, Kind kind,
                                        std::uint32_t cells) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t i = 0; i < defs_.size(); ++i) {
    const MetricDef& d = defs_[i];
    if (d.domain == domain && d.name == name) {
      if (d.kind != kind || (kind != Kind::kGauge && d.cells != cells)) {
        throw std::invalid_argument("telemetry: metric '" +
                                    std::string(domain) + "/" +
                                    std::string(name) +
                                    "' re-registered with a different shape");
      }
      return i;
    }
  }
  MetricDef def;
  def.domain = std::string(domain);
  def.name = std::string(name);
  def.kind = kind;
  if (kind == Kind::kGauge) {
    def.gauge_index = static_cast<std::uint32_t>(gauges_.size());
    gauges_.emplace_back(0);
  } else {
    if (next_cell_ + cells > capacity_) {
      throw std::length_error(
          "telemetry: registry cell capacity exhausted (raise "
          "Registry::cell_capacity)");
    }
    def.first_cell = next_cell_;
    def.cells = cells;
    next_cell_ += cells;
  }
  defs_.push_back(std::move(def));
  return static_cast<std::uint32_t>(defs_.size() - 1);
}

Counter Registry::counter(std::string_view domain, std::string_view name) {
  const std::uint32_t idx = register_metric(domain, name, Kind::kCounter, 1);
  Counter c;
  c.reg_ = this;
  c.reg_id_ = id_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    c.cell_ = defs_[idx].first_cell;
  }
  return c;
}

Gauge Registry::gauge(std::string_view domain, std::string_view name) {
  const std::uint32_t idx = register_metric(domain, name, Kind::kGauge, 0);
  Gauge g;
  {
    std::lock_guard<std::mutex> lock(mu_);
    g.cell_ = &gauges_[defs_[idx].gauge_index];
  }
  return g;
}

Histogram Registry::histogram(std::string_view domain, std::string_view name,
                              std::uint32_t buckets) {
  if (buckets == 0) {
    throw std::invalid_argument("telemetry: histogram needs >= 1 bucket");
  }
  const std::uint32_t idx =
      register_metric(domain, name, Kind::kHistogram, buckets + 1);
  Histogram h;
  h.reg_ = this;
  h.reg_id_ = id_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    h.first_cell_ = defs_[idx].first_cell;
    h.buckets_ = buckets;
  }
  return h;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Sum every sharded cell across slabs once, then slice per metric.
  std::vector<std::uint64_t> totals(next_cell_, 0);
  for (const auto& slab : slabs_) {
    for (std::uint32_t i = 0; i < next_cell_; ++i) {
      totals[i] += slab->cells[i].value.load(std::memory_order_relaxed);
    }
  }
  Snapshot snap;
  snap.metrics.reserve(defs_.size());
  for (const MetricDef& d : defs_) {
    MetricSnapshot m;
    m.domain = d.domain;
    m.name = d.name;
    m.kind = d.kind;
    switch (d.kind) {
      case Kind::kCounter:
        m.value = totals[d.first_cell];
        break;
      case Kind::kGauge:
        m.gauge = gauges_[d.gauge_index].load(std::memory_order_relaxed);
        break;
      case Kind::kHistogram: {
        const std::uint32_t buckets = d.cells - 1;
        m.buckets.assign(totals.begin() + d.first_cell,
                         totals.begin() + d.first_cell + buckets);
        m.overflow = totals[d.first_cell + buckets];
        m.value = m.overflow;
        for (std::uint64_t b : m.buckets) m.value += b;
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void Registry::reset() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slab : slabs_) {
    for (auto& cell : slab->cells) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

std::size_t Registry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_.size();
}

Registry& Registry::global() noexcept {
  // Leaked on purpose: metric handles embedded in production objects must
  // outlive every static destructor and exiting thread.
  static Registry* const g = new Registry();
  return *g;
}

void Snapshot::merge(const Snapshot& other) {
  for (const MetricSnapshot& om : other.metrics) {
    MetricSnapshot* mine = nullptr;
    for (MetricSnapshot& m : metrics) {
      if (m.domain == om.domain && m.name == om.name && m.kind == om.kind) {
        mine = &m;
        break;
      }
    }
    if (mine == nullptr) {
      metrics.push_back(om);
      continue;
    }
    mine->value += om.value;
    mine->gauge = om.gauge;  // last writer wins, like the live gauge
    mine->overflow += om.overflow;
    if (mine->buckets.size() < om.buckets.size()) {
      mine->buckets.resize(om.buckets.size(), 0);
    }
    for (std::size_t i = 0; i < om.buckets.size(); ++i) {
      mine->buckets[i] += om.buckets[i];
    }
  }
}

const MetricSnapshot* Snapshot::find(std::string_view domain,
                                     std::string_view name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.domain == domain && m.name == name) return &m;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) out << ',';
    first = false;
    out << "{\"domain\":";
    append_json_string(out, m.domain);
    out << ",\"name\":";
    append_json_string(out, m.name);
    out << ",\"kind\":\"" << to_string(m.kind) << '"';
    switch (m.kind) {
      case Kind::kCounter:
        out << ",\"value\":" << m.value;
        break;
      case Kind::kGauge:
        out << ",\"value\":" << m.gauge;
        break;
      case Kind::kHistogram:
        out << ",\"count\":" << m.value << ",\"buckets\":[";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i != 0) out << ',';
          out << m.buckets[i];
        }
        out << "],\"overflow\":" << m.overflow;
        break;
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace ruco::telemetry
