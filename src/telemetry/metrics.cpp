#include "ruco/telemetry/metrics.h"

namespace ruco::telemetry {

namespace detail {

ProdMetrics make_prod_metrics() {
  Registry& r = Registry::global();
  ProdMetrics m;
  m.maxreg_cas_attempts = r.counter("maxreg", "cas_attempts");
  m.maxreg_cas_failures = r.counter("maxreg", "cas_failures");
  m.propagate_cas_attempts = r.counter("maxreg", "propagate_cas_attempts");
  m.propagate_cas_failures = r.counter("maxreg", "propagate_cas_failures");
  m.propagate_levels = r.counter("maxreg", "propagate_levels");
  m.propagate_second_rounds = r.counter("maxreg", "propagate_second_rounds");
  m.propagate_cas_skips = r.counter("maxreg", "propagate_cas_skips");
  // 32 depth buckets cover every B1-tree the value-bound shapes produce
  // (depth <= log2(k) and benches stop well short of k = 2^32).
  m.tree_descent_depth = r.histogram("maxreg", "tree_descent_depth", 32);
  m.tree_duplicate_writes = r.counter("maxreg", "tree_duplicate_writes");
  m.tree_root_fastpath = r.counter("maxreg", "tree_root_fastpath");
  m.aac_write_abandons = r.counter("maxreg", "aac_write_abandons");
  m.aac_switches_set = r.counter("maxreg", "aac_switches_set");
  m.mcas_ops = r.counter("mcas", "ops");
  m.mcas_helps = r.counter("mcas", "helps");
  m.mcas_rdcss_helps = r.counter("mcas", "rdcss_helps");
  m.mcas_cas_failures = r.counter("mcas", "cas_failures");
  m.farray_updates = r.counter("farray", "updates");
  m.farray_reads = r.counter("farray", "reads");
  m.harness_runs = r.counter("runtime", "harness_runs");
  m.harness_threads = r.counter("runtime", "harness_threads");
  m.harness_wall_us = r.counter("runtime", "harness_wall_us");
  m.harness_body_us = r.counter("runtime", "harness_body_us");
  return m;
}

}  // namespace detail

}  // namespace ruco::telemetry
