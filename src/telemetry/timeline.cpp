#include "ruco/telemetry/timeline.h"

#include <fstream>
#include <map>
#include <sstream>

namespace ruco::telemetry {

namespace {

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c; break;
    }
  }
  out << '"';
}

}  // namespace

void TimelineWriter::set_process_name(std::uint32_t pid,
                                      std::string_view name) {
  names_.push_back({pid, 0, true, std::string(name)});
}

void TimelineWriter::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                     std::string_view name) {
  names_.push_back({pid, tid, false, std::string(name)});
}

void TimelineWriter::begin(std::uint32_t pid, std::uint32_t tid,
                           std::string_view name, std::uint64_t ts_us,
                           std::string_view args_json) {
  events_.push_back({'B', pid, tid, ts_us, 0, 0, std::string(name),
                     std::string(args_json)});
}

void TimelineWriter::end(std::uint32_t pid, std::uint32_t tid,
                         std::uint64_t ts_us) {
  events_.push_back({'E', pid, tid, ts_us, 0, 0, std::string(), std::string()});
}

void TimelineWriter::complete(std::uint32_t pid, std::uint32_t tid,
                              std::string_view name, std::uint64_t ts_us,
                              std::uint64_t dur_us,
                              std::string_view args_json) {
  events_.push_back({'X', pid, tid, ts_us, dur_us, 0, std::string(name),
                     std::string(args_json)});
}

void TimelineWriter::instant(std::uint32_t pid, std::uint32_t tid,
                             std::string_view name, std::uint64_t ts_us,
                             std::string_view args_json) {
  events_.push_back({'i', pid, tid, ts_us, 0, 0, std::string(name),
                     std::string(args_json)});
}

void TimelineWriter::flow_start(std::uint32_t pid, std::uint32_t tid,
                                std::string_view name, std::uint64_t ts_us,
                                std::uint64_t flow_id) {
  events_.push_back(
      {'s', pid, tid, ts_us, 0, flow_id, std::string(name), std::string()});
}

void TimelineWriter::flow_end(std::uint32_t pid, std::uint32_t tid,
                              std::string_view name, std::uint64_t ts_us,
                              std::uint64_t flow_id) {
  events_.push_back(
      {'f', pid, tid, ts_us, 0, flow_id, std::string(name), std::string()});
}

std::string TimelineWriter::json() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TrackName& n : names_) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"M\",\"pid\":" << n.pid << ",\"tid\":" << n.tid
        << ",\"name\":"
        << (n.is_process ? "\"process_name\"" : "\"thread_name\"")
        << ",\"args\":{\"name\":";
    append_json_string(out, n.name);
    out << "}}";
  }
  for (const Event& e : events_) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.pid
        << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
    if (e.phase == 'X') out << ",\"dur\":" << e.dur;
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (e.phase == 's' || e.phase == 'f') {
      out << ",\"id\":" << e.flow_id << ",\"cat\":\"flow\"";
      if (e.phase == 'f') out << ",\"bp\":\"e\"";
    }
    if (!e.name.empty() || e.phase != 'E') {
      out << ",\"name\":";
      append_json_string(out, e.name);
    }
    if (e.phase != 's' && e.phase != 'f' && e.phase != 'E') {
      out << ",\"cat\":\"ruco\"";
    }
    if (!e.args_json.empty()) out << ",\"args\":" << e.args_json;
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool TimelineWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << json() << '\n';
  return static_cast<bool>(out);
}

std::string TimelineWriter::validate() const {
  struct TrackState {
    std::uint64_t last_ts = 0;
    bool seen = false;
    int open_slices = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, TrackState> tracks;
  std::map<std::uint32_t, bool> process_named;
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> thread_named;
  for (const TrackName& n : names_) {
    if (n.is_process) {
      process_named[n.pid] = true;
    } else {
      thread_named[{n.pid, n.tid}] = true;
    }
  }
  std::ostringstream err;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    // Flow endpoints connect tracks at arbitrary points; they are excluded
    // from per-track ordering and naming requirements (the viewer binds
    // them to the enclosing slice, not to the track timeline).
    if (e.phase == 's' || e.phase == 'f') continue;
    TrackState& t = tracks[{e.pid, e.tid}];
    if (t.seen && e.ts < t.last_ts) {
      err << "event " << i << " (" << e.phase << " '" << e.name
          << "'): ts " << e.ts << " < previous " << t.last_ts
          << " on track pid=" << e.pid << " tid=" << e.tid;
      return err.str();
    }
    t.seen = true;
    t.last_ts = e.ts;
    if (e.phase == 'B') {
      ++t.open_slices;
    } else if (e.phase == 'E') {
      if (t.open_slices == 0) {
        err << "event " << i << ": E without matching B on track pid="
            << e.pid << " tid=" << e.tid;
        return err.str();
      }
      --t.open_slices;
    }
    if (!process_named.count(e.pid)) {
      err << "event " << i << ": pid " << e.pid << " has no process_name";
      return err.str();
    }
    if (!thread_named.count({e.pid, e.tid})) {
      err << "event " << i << ": track pid=" << e.pid << " tid=" << e.tid
          << " has no thread_name";
      return err.str();
    }
  }
  for (const auto& [key, t] : tracks) {
    if (t.open_slices != 0) {
      err << "track pid=" << key.first << " tid=" << key.second << " has "
          << t.open_slices << " unclosed B slice(s)";
      return err.str();
    }
  }
  return {};
}

OpRecorder::OpRecorder(std::uint32_t num_threads,
                       std::size_t capacity_per_thread)
    : lanes_(num_threads), dropped_per_lane_(num_threads, 0) {
  for (auto& lane : lanes_) lane.reserve(capacity_per_thread);
}

std::uint32_t OpRecorder::intern(std::string_view name) {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void OpRecorder::record(std::uint32_t thread, std::uint32_t name_id,
                        std::uint64_t start_us,
                        std::uint64_t dur_us) noexcept {
  auto& lane = lanes_[thread];
  if (lane.size() == lane.capacity()) {
    ++dropped_per_lane_[thread];
    return;
  }
  lane.push_back({name_id, start_us, dur_us});
}

std::uint64_t OpRecorder::dropped() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t d : dropped_per_lane_) total += d;
  return total;
}

void OpRecorder::export_to(TimelineWriter& out, std::uint32_t pid,
                           std::string_view process_name) const {
  out.set_process_name(pid, process_name);
  for (std::uint32_t t = 0; t < lanes_.size(); ++t) {
    out.set_thread_name(pid, t, "thread " + std::to_string(t));
    for (const Slice& s : lanes_[t]) {
      out.complete(pid, t, names_[s.name_id], s.start_us, s.dur_us);
    }
  }
}

}  // namespace ruco::telemetry
