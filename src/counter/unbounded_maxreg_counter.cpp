#include "ruco/counter/unbounded_maxreg_counter.h"

#include <cassert>

#include "ruco/runtime/stepcount.h"

namespace ruco::counter {

UnboundedMaxRegCounter::UnboundedMaxRegCounter(std::uint32_t num_processes,
                                               std::uint32_t max_groups)
    : n_{num_processes},
      shape_{util::complete_shape(num_processes)},
      nodes_(shape_.node_count()),
      leaf_counts_(num_processes, runtime::PaddedAtomic<Value>{0}) {
  for (util::TreeShape::NodeId id = 0; id < shape_.node_count(); ++id) {
    if (!shape_.is_leaf(id)) {
      nodes_[id] =
          std::make_unique<maxreg::UnboundedAacMaxRegister>(max_groups);
    }
  }
}

Value UnboundedMaxRegCounter::node_value(ProcId proc,
                                         util::TreeShape::NodeId node) const {
  if (shape_.is_leaf(node)) {
    runtime::step_tick();
    return leaf_counts_[shape_.leaf_index(node)].value.load();
  }
  const Value v = nodes_[node]->read_max(proc);
  return v == kNoValue ? 0 : v;
}

Value UnboundedMaxRegCounter::read(ProcId proc) const {
  return node_value(proc, shape_.root());
}

void UnboundedMaxRegCounter::increment(ProcId proc) {
  assert(proc < n_);
  const auto leaf = shape_.leaf(proc);
  runtime::step_tick();
  const Value mine = leaf_counts_[proc].value.load() + 1;
  runtime::step_tick();
  leaf_counts_[proc].value.store(mine);
  for (auto node = shape_.parent(leaf); node != util::TreeShape::kNil;
       node = shape_.parent(node)) {
    const Value left_sum = node_value(proc, shape_.left(node));
    const Value right_sum = node_value(proc, shape_.right(node));
    nodes_[node]->write_max(proc, left_sum + right_sum);
  }
}

}  // namespace ruco::counter
