#include "ruco/counter/kcas_counter.h"

#include <cassert>
#include <stdexcept>

namespace ruco::counter {

KcasCounter::KcasCounter(std::uint32_t num_processes)
    : n_{num_processes}, cells_{num_processes + 1, 0, num_processes} {
  if (num_processes == 0) {
    throw std::invalid_argument{"KcasCounter: 0 processes"};
  }
}

Value KcasCounter::read(ProcId proc) { return cells_.read(proc, 0); }

Value KcasCounter::mine(ProcId proc) { return cells_.read(proc, 1 + proc); }

void KcasCounter::increment(ProcId proc) {
  assert(proc < n_);
  for (;;) {
    const Value slot = cells_.read(proc, 1 + proc);
    const Value total = cells_.read(proc, 0);
    if (cells_.dcas(proc, kcas::McasWord{1 + proc, slot, slot + 1},
                    kcas::McasWord{0, total, total + 1})) {
      return;
    }
  }
}

}  // namespace ruco::counter
