#include "ruco/counter/maxreg_counter.h"

#include <cassert>
#include <stdexcept>

#include "ruco/runtime/stepcount.h"

namespace ruco::counter {

MaxRegCounter::MaxRegCounter(std::uint32_t num_processes, Value max_increments)
    : n_{num_processes},
      bound_{max_increments + 1},
      shape_{util::complete_shape(num_processes)},
      nodes_(shape_.node_count()),
      leaf_counts_(num_processes, runtime::PaddedAtomic<Value>{0}) {
  if (max_increments < 1) {
    throw std::invalid_argument{"MaxRegCounter: max_increments < 1"};
  }
  for (util::TreeShape::NodeId id = 0; id < shape_.node_count(); ++id) {
    if (!shape_.is_leaf(id)) {
      nodes_[id] = std::make_unique<maxreg::AacMaxRegister>(bound_);
    }
  }
}

Value MaxRegCounter::node_value(ProcId proc,
                                util::TreeShape::NodeId node) const {
  if (shape_.is_leaf(node)) {
    runtime::step_tick();
    return leaf_counts_[shape_.leaf_index(node)].value.load();
  }
  const Value v = nodes_[node]->read_max(proc);
  return v == kNoValue ? 0 : v;
}

Value MaxRegCounter::read(ProcId proc) const {
  return node_value(proc, shape_.root());
}

void MaxRegCounter::increment(ProcId proc) {
  assert(proc < n_);
  const auto leaf = shape_.leaf(proc);
  runtime::step_tick();
  const Value mine = leaf_counts_[proc].value.load() + 1;
  if (mine >= bound_) {
    throw std::length_error{"MaxRegCounter: restricted-use bound exceeded"};
  }
  runtime::step_tick();
  leaf_counts_[proc].value.store(mine);
  // Refresh every ancestor bottom-up: WriteMax(sum of the two children).
  // The max register absorbs racing refreshes (only the largest survives),
  // which is exactly why Aspnes et al. use max registers and not plain
  // registers here.
  for (auto node = shape_.parent(leaf); node != util::TreeShape::kNil;
       node = shape_.parent(node)) {
    const Value sum = node_value(proc, shape_.left(node)) +
                      node_value(proc, shape_.right(node));
    if (sum >= bound_) {
      throw std::length_error{"MaxRegCounter: restricted-use bound exceeded"};
    }
    nodes_[node]->write_max(proc, sum);
  }
}

}  // namespace ruco::counter
