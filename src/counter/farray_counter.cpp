#include "ruco/counter/farray_counter.h"

#include <cassert>

#include "ruco/maxreg/propagate.h"
#include "ruco/runtime/memorder.h"
#include "ruco/runtime/stepcount.h"

namespace ruco::counter {

namespace {
// Leaves start at 0 (a counter's components are counts, not max values).
constexpr Value combine_sum(Value l, Value r) noexcept { return l + r; }
}  // namespace

FArrayCounter::FArrayCounter(std::uint32_t num_processes)
    : n_{num_processes},
      shape_{util::complete_shape(num_processes)},
      values_(shape_.node_count(), runtime::PaddedAtomic<Value>{0}),
      local_count_(num_processes, runtime::PaddedAtomic<Value>{0}) {}

Value FArrayCounter::read(ProcId /*proc*/) const {
  runtime::step_tick();
  return values_[shape_.root()].value.load(runtime::mo_acquire);
}

void FArrayCounter::increment(ProcId proc) {
  assert(proc < n_);
  // local_count_ is process-private bookkeeping (each slot written by one
  // process only); relaxed suffices and it is not a shared-memory step.
  const Value next =
      local_count_[proc].value.load(std::memory_order_relaxed) + 1;
  local_count_[proc].value.store(next, std::memory_order_relaxed);
  const auto leaf = shape_.leaf(proc);
  runtime::step_tick();
  // Release pairs with propagate_twice's acquire child loads.
  values_[leaf].value.store(next, runtime::mo_release);
  maxreg::propagate_twice(shape_, values_, leaf, combine_sum);
}

}  // namespace ruco::counter
