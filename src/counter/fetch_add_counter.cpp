#include "ruco/counter/fetch_add_counter.h"

#include "ruco/runtime/stepcount.h"

namespace ruco::counter {

Value FetchAddCounter::read(ProcId /*proc*/) const {
  runtime::step_tick();
  return count_.value.load();
}

void FetchAddCounter::increment(ProcId /*proc*/) {
  runtime::step_tick();
  count_.value.fetch_add(1);
}

}  // namespace ruco::counter
