#include "ruco/snapshot/double_collect_snapshot.h"

#include <cassert>
#include <stdexcept>

#include "ruco/runtime/stepcount.h"

namespace ruco::snapshot {

DoubleCollectSnapshot::DoubleCollectSnapshot(std::uint32_t num_processes)
    : n_{num_processes},
      segments_(num_processes, runtime::PaddedAtomic<Packed>{pack(0, 0)}),
      seq_(num_processes, runtime::PaddedAtomic<std::uint64_t>{0}) {
  if (num_processes == 0) {
    throw std::invalid_argument{"DoubleCollectSnapshot: 0 processes"};
  }
}

void DoubleCollectSnapshot::update(ProcId proc, Value v) {
  assert(proc < n_);
  if (v < 0 || v > kMaxValue) {
    throw std::out_of_range{"DoubleCollectSnapshot: value out of range"};
  }
  // seq_ is single-writer bookkeeping, not a shared-memory step.
  const std::uint64_t s =
      seq_[proc].value.load(std::memory_order_relaxed) + 1;
  if (s > kMaxUpdatesPerProcess) {
    throw std::length_error{"DoubleCollectSnapshot: update bound exceeded"};
  }
  seq_[proc].value.store(s, std::memory_order_relaxed);
  runtime::step_tick();
  segments_[proc].value.store(pack(v, s));
}

void DoubleCollectSnapshot::collect(std::vector<Packed>& out) const {
  out.clear();
  for (std::uint32_t i = 0; i < n_; ++i) {
    runtime::step_tick();
    out.push_back(segments_[i].value.load());
  }
}

std::vector<Value> DoubleCollectSnapshot::scan(ProcId /*proc*/) const {
  std::vector<Packed> first;
  std::vector<Packed> second;
  first.reserve(n_);
  second.reserve(n_);
  collect(first);
  for (;;) {
    collect(second);
    if (first == second) {
      std::vector<Value> values;
      values.reserve(n_);
      for (const Packed p : second) values.push_back(unpack_value(p));
      return values;
    }
    first.swap(second);
  }
}

}  // namespace ruco::snapshot
