#include "ruco/snapshot/farray_snapshot.h"

#include <cassert>
#include <stdexcept>

#include "ruco/maxreg/propagate.h"
#include "ruco/runtime/memorder.h"
#include "ruco/runtime/stepcount.h"

namespace ruco::snapshot {

FArraySnapshot::FArraySnapshot(std::uint32_t num_processes)
    : n_{num_processes},
      shape_{util::complete_shape(num_processes)},
      arenas_(num_processes),
      seq_(num_processes, runtime::PaddedAtomic<std::uint64_t>{0}) {
  if (num_processes == 0) {
    throw std::invalid_argument{"FArraySnapshot: 0 processes"};
  }
  // Build the initial per-node views bottom-up (single-threaded setup).
  nodes_.assign(shape_.node_count(),
                runtime::PaddedAtomic<const View*>{nullptr});
  std::vector<const View*> built(shape_.node_count(), nullptr);
  // Nodes were appended children-before-parents by the shape builder, so a
  // forward pass sees children already built.
  for (util::TreeShape::NodeId id = 0; id < shape_.node_count(); ++id) {
    View view;
    if (shape_.is_leaf(id)) {
      view.entries = {Entry{0, 0}};
    } else {
      const View* l = built[shape_.left(id)];
      const View* r = built[shape_.right(id)];
      view.entries = l->entries;
      view.entries.insert(view.entries.end(), r->entries.begin(),
                          r->entries.end());
    }
    initial_views_.push_back(std::move(view));
    built[id] = &initial_views_.back();
    nodes_[id].value.store(built[id], std::memory_order_relaxed);
  }
}

const FArraySnapshot::View* FArraySnapshot::merge(ProcId proc, const View* l,
                                                  const View* r) {
  View merged;
  merged.entries.reserve(l->entries.size() + r->entries.size());
  merged.entries = l->entries;
  merged.entries.insert(merged.entries.end(), r->entries.begin(),
                        r->entries.end());
  arenas_[proc].push_back(std::move(merged));
  return &arenas_[proc].back();
}

void FArraySnapshot::update(ProcId proc, Value v) {
  assert(proc < n_);
  if (v < 0) throw std::out_of_range{"FArraySnapshot: negative value"};
  const std::uint64_t s =
      seq_[proc].value.load(std::memory_order_relaxed) + 1;
  seq_[proc].value.store(s, std::memory_order_relaxed);
  View leaf_view;
  leaf_view.entries = {Entry{v, s}};
  arenas_[proc].push_back(std::move(leaf_view));
  const View* leaf_ptr = &arenas_[proc].back();
  const auto leaf = shape_.leaf(proc);
  runtime::step_tick();
  // Release publishes the freshly built View behind leaf_ptr; every reader
  // of this cell (propagate_twice's acquire child loads, scan's acquire
  // root load) dereferences it.
  nodes_[leaf].value.store(leaf_ptr, runtime::mo_release);
  maxreg::propagate_twice(
      shape_, nodes_, leaf,
      [this, proc](const View* l, const View* r) { return merge(proc, l, r); });
}

std::vector<Value> FArraySnapshot::scan(ProcId /*proc*/) const {
  runtime::step_tick();
  const View* root = nodes_[shape_.root()].value.load(runtime::mo_acquire);
  std::vector<Value> values;
  values.reserve(root->entries.size());
  for (const Entry& e : root->entries) values.push_back(e.value);
  return values;
}

std::vector<std::pair<Value, std::uint64_t>> FArraySnapshot::scan_versions(
    ProcId /*proc*/) const {
  runtime::step_tick();
  const View* root = nodes_[shape_.root()].value.load(runtime::mo_acquire);
  std::vector<std::pair<Value, std::uint64_t>> out;
  out.reserve(root->entries.size());
  for (const Entry& e : root->entries) out.emplace_back(e.value, e.seq);
  return out;
}

}  // namespace ruco::snapshot
