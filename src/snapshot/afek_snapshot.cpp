#include "ruco/snapshot/afek_snapshot.h"

#include <cassert>
#include <stdexcept>

#include "ruco/runtime/stepcount.h"

namespace ruco::snapshot {

AfekSnapshot::AfekSnapshot(std::uint32_t num_processes)
    : n_{num_processes}, arenas_(num_processes) {
  if (num_processes == 0) {
    throw std::invalid_argument{"AfekSnapshot: 0 processes"};
  }
  segments_.assign(num_processes,
                   runtime::PaddedAtomic<const Record*>{&initial_});
}

std::vector<Value> AfekSnapshot::scan(ProcId /*proc*/) const {
  std::vector<const Record*> first(n_);
  std::vector<const Record*> second(n_);
  std::vector<bool> moved(n_, false);
  for (std::uint32_t i = 0; i < n_; ++i) {
    runtime::step_tick();
    first[i] = segments_[i].value.load();
  }
  for (;;) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      runtime::step_tick();
      second[i] = segments_[i].value.load();
    }
    bool clean = true;
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (first[i] == second[i]) continue;
      clean = false;
      if (moved[i]) {
        // Segment i changed twice during this scan, so its current record's
        // embedded view was collected entirely within our interval: borrow.
        return second[i]->view;
      }
      moved[i] = true;
    }
    if (clean) {
      std::vector<Value> values;
      values.reserve(n_);
      for (const Record* r : second) values.push_back(r->value);
      return values;
    }
    first.swap(second);
  }
}

void AfekSnapshot::update(ProcId proc, Value v) {
  assert(proc < n_);
  if (v < 0) throw std::out_of_range{"AfekSnapshot: negative value"};
  std::vector<Value> embedded = scan(proc);
  auto& arena = arenas_[proc];
  const std::uint64_t seq = arena.empty() ? 1 : arena.back().seq + 1;
  arena.push_back(Record{v, seq, std::move(embedded)});
  runtime::step_tick();
  segments_[proc].value.store(&arena.back());
}

}  // namespace ruco::snapshot
