#include "ruco/adversary/maxreg_adversary.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "ruco/sim/awareness.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"

namespace ruco::adversary {

namespace {

using sim::KnowledgeSets;
using sim::ObjectId;
using sim::Pending;
using sim::Prim;
using sim::ProcSet;
using sim::System;
using sim::Trace;

struct Plan {
  MaxRegIteration::Case contention = MaxRegIteration::Case::kLowContention;
  std::vector<ProcId> next_essential;
  std::vector<ProcId> schedule;  // step order after erasure
  std::vector<ProcId> to_erase;
  bool halts = false;
};

/// Lemma 4 case 1: one process per object, then a greedy independent set in
/// the familiarity graph (edge when one process's target object is familiar
/// with the other process).  Average degree <= 2, so >= 1/3 survive.
std::vector<ProcId> independent_set(
    const std::vector<std::pair<ProcId, ObjectId>>& candidates,
    const KnowledgeSets& know, std::size_t num_processes) {
  ProcSet candidate_set{num_processes};
  for (const auto& [p, o] : candidates) candidate_set.add(p);

  // Sparse adjacency: each F(o_p) holds at most one candidate (hidden-set
  // invariant), so at most 2 edges incident per vertex on average.
  std::map<ProcId, std::vector<ProcId>> adj;
  for (const auto& [p, o] : candidates) {
    for (const ProcId q : know.familiarity[o].intersection(candidate_set)) {
      if (q == p) continue;
      adj[p].push_back(q);
      adj[q].push_back(p);
    }
  }
  std::vector<ProcId> kept;
  ProcSet kept_set{num_processes};
  for (const auto& [p, o] : candidates) {
    bool blocked = false;
    if (const auto it = adj.find(p); it != adj.end()) {
      for (const ProcId q : it->second) {
        if (kept_set.contains(q)) {
          blocked = true;
          break;
        }
      }
    }
    if (!blocked) {
      kept.push_back(p);
      kept_set.add(p);
    }
  }
  return kept;
}

Plan make_plan(const System& sys, const KnowledgeSets& know,
               const std::vector<ProcId>& essential,
               const std::vector<ProcId>& active) {
  Plan plan;
  const std::size_t m = active.size();
  const auto sqrt_m =
      static_cast<std::size_t>(std::floor(std::sqrt(static_cast<double>(m))));

  // Group the enabled events of the active essential processes by object.
  std::map<ObjectId, std::vector<ProcId>> groups;
  for (const ProcId p : active) {
    groups[sys.enabled(p)->obj].push_back(p);
  }
  const auto largest = std::max_element(
      groups.begin(), groups.end(), [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });

  ProcSet essential_set{sys.num_processes()};
  for (const ProcId p : essential) essential_set.add(p);
  ProcSet active_set{sys.num_processes()};
  for (const ProcId p : active) active_set.add(p);

  const auto erase_all_but = [&](const std::vector<ProcId>& keep_essential,
                                 ProcId keep_halted) {
    ProcSet keep{sys.num_processes()};
    for (const ProcId p : keep_essential) keep.add(p);
    for (const ProcId p : essential) {
      if (!keep.contains(p) && p != keep_halted) plan.to_erase.push_back(p);
    }
  };
  constexpr ProcId kNone = UINT32_MAX;

  if (largest->second.size() <= sqrt_m) {
    // ---- Low contention: distinct objects, independent-set pruning.
    plan.contention = MaxRegIteration::Case::kLowContention;
    std::vector<std::pair<ProcId, ObjectId>> candidates;
    candidates.reserve(groups.size());
    for (const auto& [obj, procs] : groups) {
      candidates.emplace_back(procs.front(), obj);  // arbitrary pick: min id
    }
    plan.next_essential =
        independent_set(candidates, know, sys.num_processes());
    plan.schedule = plan.next_essential;
    erase_all_but(plan.next_essential, kNone);
    return plan;
  }

  // ---- High contention at object o.
  const ObjectId o = largest->first;
  const std::vector<ProcId>& group = largest->second;
  std::vector<ProcId> cas_changing;
  std::vector<ProcId> writes;
  std::vector<ProcId> quiet;  // reads and trivial CASes
  for (const ProcId p : group) {
    const Pending* pending = sys.enabled(p);
    if (pending->prim == Prim::kWrite) {
      writes.push_back(p);
    } else if (pending->prim == Prim::kCas && sys.pending_would_change(p)) {
      cas_changing.push_back(p);
    } else {
      quiet.push_back(p);
    }
  }
  // S = F(o, E_i) ∩ Ee: the (at most one) active essential process the
  // contended object is familiar with.
  const std::vector<ProcId> familiar =
      know.familiarity[o].intersection(active_set);

  const auto in = [](const std::vector<ProcId>& v, ProcId p) {
    return std::find(v.begin(), v.end(), p) != v.end();
  };

  if (cas_changing.size() >= writes.size() &&
      cas_changing.size() >= quiet.size()) {
    // Sub-case 1: pl (min id) CASes first and is halted; the rest become
    // trivial.  (If an erased process's write held o's current value, pl's
    // CAS may turn out trivial post-erasure -- harmless: then *every* CAS
    // is trivial, which is even quieter; the invariant checks confirm.)
    plan.contention = MaxRegIteration::Case::kHighCas;
    const ProcId pl = cas_changing.front();
    for (const ProcId p : cas_changing) {
      if (p != pl && !in(familiar, p)) plan.next_essential.push_back(p);
    }
    plan.schedule.push_back(pl);
    plan.schedule.insert(plan.schedule.end(), plan.next_essential.begin(),
                         plan.next_essential.end());
    erase_all_but(plan.next_essential, pl);
    plan.halts = true;
  } else if (writes.size() >= quiet.size()) {
    // Sub-case 2: everyone writes; pl (min id) writes last and hides them
    // all (Definition 1); pl is halted.
    plan.contention = MaxRegIteration::Case::kHighWrite;
    const ProcId pl = writes.front();
    for (const ProcId p : writes) {
      if (p != pl) plan.next_essential.push_back(p);
    }
    plan.schedule = plan.next_essential;
    plan.schedule.push_back(pl);
    erase_all_but(plan.next_essential, pl);
    plan.halts = true;
  } else {
    // Sub-case 3: reads and trivial CASes; all invisible.
    plan.contention = MaxRegIteration::Case::kHighRead;
    for (const ProcId p : quiet) {
      if (!in(familiar, p)) plan.next_essential.push_back(p);
    }
    plan.schedule = plan.next_essential;
    erase_all_but(plan.next_essential, kNone);
  }
  return plan;
}

/// Definitions 5-7 checked literally on the rebuilt execution.
std::string check_invariants(const System& sys, const KnowledgeSets& know,
                             const std::vector<ProcId>& essential,
                             std::uint64_t expected_steps) {
  ProcSet essential_set{sys.num_processes()};
  for (const ProcId p : essential) essential_set.add(p);
  // Hidden, part 1: no other process is aware of an essential process.
  for (ProcId q = 0; q < sys.num_processes(); ++q) {
    for (const ProcId p : essential) {
      if (q != p && know.awareness[q].contains(p)) {
        return "hidden violated: p" + std::to_string(q) + " aware of p" +
               std::to_string(p);
      }
    }
  }
  // Hidden, part 2: every object familiar with at most one essential proc.
  for (std::size_t o = 0; o < sys.num_objects(); ++o) {
    const auto overlap = know.familiarity[o].intersection(essential_set);
    if (overlap.size() > 1) {
      return "object o" + std::to_string(o) + " familiar with " +
             std::to_string(overlap.size()) + " essential processes";
    }
  }
  // Supreme: every non-essential process that issued events has a smaller
  // id than every essential process.
  ProcId min_essential = UINT32_MAX;
  for (const ProcId p : essential) min_essential = std::min(min_essential, p);
  std::vector<bool> appears(sys.num_processes(), false);
  for (const auto& e : sys.trace()) appears[e.proc] = true;
  for (ProcId q = 0; q < sys.num_processes(); ++q) {
    if (appears[q] && !essential_set.contains(q) && q > min_essential) {
      return "supreme violated: non-essential p" + std::to_string(q) +
             " outranks essential p" + std::to_string(min_essential);
    }
  }
  // i-step: every essential process issued exactly i events.
  for (const ProcId p : essential) {
    if (sys.steps_taken(p) != expected_steps) {
      return "step-count violated: p" + std::to_string(p) + " has " +
             std::to_string(sys.steps_taken(p)) + " steps, expected " +
             std::to_string(expected_steps);
    }
  }
  return {};
}

}  // namespace

bool MaxRegIteration::size_bound_held() const noexcept {
  const double m = static_cast<double>(active_before);
  const double bound = std::sqrt(m) / 3.0 - 2.0;
  return static_cast<double>(essential_after) >= bound;
}

const char* to_string(MaxRegIteration::Case c) noexcept {
  switch (c) {
    case MaxRegIteration::Case::kLowContention:
      return "low";
    case MaxRegIteration::Case::kHighCas:
      return "high/cas";
    case MaxRegIteration::Case::kHighWrite:
      return "high/write";
    case MaxRegIteration::Case::kHighRead:
      return "high/read";
  }
  return "?";
}

MaxRegAdversaryReport run_maxreg_adversary(
    const simalgos::MaxRegProgram& target,
    const MaxRegAdversaryOptions& options) {
  MaxRegAdversaryReport report;
  report.k = target.num_writers + 1;

  auto sys = std::make_unique<System>(target.program);
  std::vector<ProcId> essential;  // E_0 = all writers (0-step essential set)
  essential.reserve(target.num_writers);
  for (ProcId p = 0; p < target.num_writers; ++p) essential.push_back(p);
  std::vector<bool> erased(target.program.num_processes(), false);

  for (;;) {
    std::vector<ProcId> active;
    std::size_t completed = 0;
    for (const ProcId p : essential) {
      if (sys->active(p)) {
        active.push_back(p);
      } else {
        ++completed;
      }
    }
    if (2 * completed >= essential.size() && !essential.empty()) {
      report.stop_reason = "half of the essential set completed (Lemma 6)";
      break;
    }
    if (active.size() < options.min_active) {
      report.stop_reason = "active essential set below floor";
      break;
    }
    if (report.iterations_completed >= options.max_iterations) {
      report.stop_reason = "iteration cap";
      break;
    }

    const KnowledgeSets know = sim::recompute_knowledge(
        sys->trace(), sys->num_processes(), sys->num_objects());
    Plan plan = make_plan(*sys, know, essential, active);

    MaxRegIteration rec;
    rec.index = report.iterations_completed + 1;
    rec.contention = plan.contention;
    rec.active_before = active.size();
    rec.essential_after = plan.next_essential.size();
    rec.erased = plan.to_erase.size();
    rec.halted = plan.halts;

    // Erase (Claim 1) and revalidate by replay.
    for (const ProcId p : plan.to_erase) erased[p] = true;
    const Trace kept = sim::erase_processes(sys->trace(), erased);
    sys = std::make_unique<System>(target.program);
    const sim::ReplayResult replay =
        sim::replay_trace(*sys, kept, /*check_responses=*/true);
    rec.replay_ok = replay.ok;
    if (!replay.ok) {
      rec.diagnostic = "replay: " + replay.message;
      report.all_replays_ok = false;
      report.iterations.push_back(std::move(rec));
      report.stop_reason = "replay mismatch";
      break;
    }

    // Extend: one step per scheduled process, in plan order.
    for (const ProcId p : plan.schedule) sys->step(p);

    essential = plan.next_essential;
    ++report.iterations_completed;

    std::size_t done_now = 0;
    for (const ProcId p : essential) {
      if (!sys->active(p)) ++done_now;
    }
    rec.completed_essential = done_now;

    const KnowledgeSets after = sim::recompute_knowledge(
        sys->trace(), sys->num_processes(), sys->num_objects());
    const std::string diag = check_invariants(
        *sys, after, essential, report.iterations_completed);
    rec.invariants_ok = diag.empty();
    if (!diag.empty()) {
      rec.diagnostic = diag;
      report.all_invariants_ok = false;
    }
    if (!rec.size_bound_held()) report.all_size_bounds_ok = false;
    report.iterations.push_back(std::move(rec));
    if (!report.all_invariants_ok) {
      report.stop_reason = "invariant violated";
      break;
    }
  }

  report.final_essential = essential.size();

  // Lemma 5/6 probe: the reader runs solo; its answer must cover every
  // completed WriteMax (writer p writes operand p+1) and never exceed the
  // largest started one.
  sim::run_solo(*sys, target.reader, 1u << 24);
  report.reader_steps = sys->steps_taken(target.reader);
  report.reader_value = sys->result(target.reader);
  Value max_completed = kNoValue;
  Value max_started = kNoValue;
  for (ProcId p = 0; p < target.num_writers; ++p) {
    const Value operand = static_cast<Value>(p) + 1;
    if (sys->steps_taken(p) > 0) max_started = std::max(max_started, operand);
    if (sys->steps_taken(p) > 0 && !sys->active(p)) {
      max_completed = std::max(max_completed, operand);
    }
  }
  report.reader_ok = report.reader_value >= max_completed &&
                     report.reader_value <= std::max(max_started, kNoValue);
  return report;
}

}  // namespace ruco::adversary
