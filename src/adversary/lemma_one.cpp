#include "ruco/adversary/lemma_one.h"

#include <algorithm>

namespace ruco::adversary {

LemmaOneRound lemma_one_round(sim::System& sys,
                              const std::vector<ProcId>& candidates) {
  LemmaOneRound round;
  round.knowledge_before = sys.max_knowledge_seen();

  std::vector<ProcId> quiet;   // sigma_1: reads, trivial CAS, trivial writes
  std::vector<ProcId> writes;  // sigma_2: value-changing writes
  std::vector<ProcId> cases;   // sigma_3: value-changing CASes
  for (const ProcId p : candidates) {
    const sim::Pending* pending = sys.enabled(p);
    if (pending == nullptr) continue;
    if (!sys.pending_would_change(p)) {
      quiet.push_back(p);
    } else if (pending->prim == sim::Prim::kWrite) {
      writes.push_back(p);
    } else {
      cases.push_back(p);
    }
  }
  for (const ProcId p : quiet) {
    sys.step(p);
    ++round.scheduled;
  }
  for (const ProcId p : writes) {
    sys.step(p);
    ++round.scheduled;
  }
  for (const ProcId p : cases) {
    sys.step(p);
    ++round.scheduled;
  }
  round.knowledge_after = sys.max_knowledge_seen();
  return round;
}

}  // namespace ruco::adversary
