#include "ruco/adversary/counter_adversary.h"

#include <unordered_set>

#include "ruco/adversary/lemma_one.h"
#include "ruco/sim/schedulers.h"

namespace ruco::adversary {

CounterAdversaryReport run_counter_adversary(
    const simalgos::CounterProgram& target, std::uint64_t max_rounds) {
  CounterAdversaryReport report;
  report.n = target.num_incrementers + 1;

  sim::System sys{target.program};
  std::vector<ProcId> incrementers;
  incrementers.reserve(target.num_incrementers);
  for (ProcId p = 0; p < target.num_incrementers; ++p) {
    incrementers.push_back(p);
  }

  std::size_t knowledge_cap = 1;  // 3^j, saturating
  while (report.rounds < max_rounds) {
    std::vector<ProcId> active;
    for (const ProcId p : incrementers) {
      if (sys.active(p)) active.push_back(p);
    }
    if (active.empty()) break;
    const LemmaOneRound round = lemma_one_round(sys, active);
    ++report.rounds;
    if (knowledge_cap <= report.n) knowledge_cap *= 3;
    report.knowledge_per_round.push_back(round.knowledge_after);
    if (round.knowledge_after > knowledge_cap) {
      report.knowledge_bound_held = false;
    }
  }
  for (const ProcId p : incrementers) {
    report.max_increment_steps =
        std::max(report.max_increment_steps, sys.steps_taken(p));
  }

  // Lemma 3's reader: p_N performs a CounterRead to completion, alone.
  const std::size_t trace_before = sys.trace().size();
  sim::run_solo(sys, target.reader, 1u << 24);
  report.reader_steps = sys.steps_taken(target.reader);
  report.reader_value = sys.result(target.reader);
  report.reader_correct =
      report.reader_value == static_cast<Value>(target.num_incrementers);
  report.reader_awareness = sys.awareness(target.reader).count();
  std::unordered_set<sim::ObjectId> touched;
  for (std::size_t i = trace_before; i < sys.trace().size(); ++i) {
    touched.insert(sys.trace()[i].obj);
  }
  report.reader_distinct_objects = touched.size();
  return report;
}

}  // namespace ruco::adversary
