#include "ruco/kcas/mcas.h"

#include <algorithm>
#include <stdexcept>

#include "ruco/runtime/backoff.h"
#include "ruco/runtime/memorder.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/telemetry/metrics.h"

// Memory orders (DESIGN.md "Hot-path memory orders").  Descriptors are
// cross-thread mutable state published by CASing tagged pointers into
// cells, so the discipline is the classic publication pattern:
//   * any CAS that installs a descriptor pointer: release on success (the
//     descriptor's fields were written before the install) and acquire on
//     failure (the loaded word may itself be somebody else's descriptor we
//     are about to dereference and help);
//   * any plain load whose value may be dereferenced (cell reads, status
//     control reads): acquire;
//   * CASes whose failure value is discarded (rdcss_complete's unpark,
//     phase-2 release CASes): release/relaxed.
// The status word is the linearization point; its decide-CAS is acq_rel so
// the decision both publishes phase-1's acquisitions and orders phase 2
// after every acquisition it saw.
// Orders are named through ruco/runtime/memorder.h so RUCO_SEQCST_ATOMICS
// can collapse them to seq_cst on weak-memory targets.

namespace ruco::kcas {

McasArray::McasArray(std::uint32_t num_cells, Value init,
                     std::uint32_t num_processes)
    : arenas_(num_processes) {
  if (num_cells == 0) throw std::invalid_argument{"McasArray: 0 cells"};
  if (num_processes == 0) {
    throw std::invalid_argument{"McasArray: 0 processes"};
  }
  cells_.assign(num_cells, runtime::PaddedAtomic<Word>{pack_value(init)});
}

McasArray::Word McasArray::pack_value(Value v) {
  if (v < kMinValue || v > kMaxValue) {
    throw std::out_of_range{"McasArray: value outside 61-bit range"};
  }
  return static_cast<Word>(static_cast<std::uint64_t>(v) << 2);
}

Value McasArray::unpack_value(Word w) noexcept {
  // Arithmetic shift back (sign-preserving for negative values).
  return static_cast<Value>(static_cast<std::int64_t>(w) >> 2);
}

void McasArray::rdcss_complete(RdcssDescriptor* d) {
  runtime::step_tick();
  const std::uintptr_t control = d->control->load(runtime::mo_acquire);
  Word parked = tag_rdcss(d);
  const Word next =
      control == d->expected_control ? d->desired : d->expected;
  runtime::step_tick();
  d->cell->compare_exchange_strong(parked, next, runtime::mo_release,
                                   runtime::mo_relaxed);
}

McasArray::Word McasArray::rdcss(RdcssDescriptor* d) {
  runtime::Backoff backoff;
  for (;;) {
    Word current = d->expected;
    runtime::step_tick();
    if (d->cell->compare_exchange_strong(current, tag_rdcss(d),
                                         runtime::mo_acq_rel,
                                         runtime::mo_acquire)) {
      rdcss_complete(d);
      return d->expected;
    }
    if (is_rdcss(current)) {
      // Someone else's acquisition is parked here: finish it and retry,
      // backing off (bounded) before re-contending the cell.
      telemetry::prod().mcas_rdcss_helps.inc();
      rdcss_complete(as_rdcss(current));
      backoff.pause();
      continue;
    }
    return current;  // a plain value or an MCAS descriptor
  }
}

bool McasArray::mcas_help(ProcId proc, McasDescriptor* d) {
  runtime::step_tick();
  if (d->status.load(runtime::mo_acquire) ==
      static_cast<std::uintptr_t>(Status::kUndecided)) {
    // Phase 1: acquire every word, wedging our descriptor in, unless the
    // operation gets decided under us (the RDCSS control check) or a word
    // no longer matches.
    auto desired_status = static_cast<std::uintptr_t>(Status::kSucceeded);
    for (const McasWord& word : d->words) {
      runtime::Backoff backoff;
      for (;;) {
        RdcssDescriptor* rd = &arenas_[proc].rdcss.emplace_back();
        rd->control = &d->status;
        rd->expected_control =
            static_cast<std::uintptr_t>(Status::kUndecided);
        rd->cell = &cells_[word.index].value;
        rd->expected = pack_value(word.expected);
        rd->desired = tag_mcas(d);
        const Word content = rdcss(rd);
        if (is_mcas(content)) {
          if (as_mcas(content) != d) {
            // A different MCAS holds the word: help it finish, then retry
            // after a bounded backoff (helping storms thrash the word's
            // line; the helped op has already made our progress).
            telemetry::prod().mcas_helps.inc();
            mcas_help(proc, as_mcas(content));
            backoff.pause();
            continue;
          }
          break;  // already acquired for d (by a helper)
        }
        if (content != pack_value(word.expected)) {
          telemetry::prod().mcas_cas_failures.inc();
          desired_status = static_cast<std::uintptr_t>(Status::kFailed);
        }
        break;
      }
      if (desired_status ==
          static_cast<std::uintptr_t>(Status::kFailed)) {
        break;
      }
    }
    auto expected_status =
        static_cast<std::uintptr_t>(Status::kUndecided);
    runtime::step_tick();
    d->status.compare_exchange_strong(expected_status, desired_status,
                                      runtime::mo_acq_rel,
                                      runtime::mo_acquire);
  }
  // Phase 2: release every word to its decided value.
  runtime::step_tick();
  const bool success =
      d->status.load(runtime::mo_acquire) ==
      static_cast<std::uintptr_t>(Status::kSucceeded);
  for (const McasWord& word : d->words) {
    Word parked = tag_mcas(d);
    runtime::step_tick();
    cells_[word.index].value.compare_exchange_strong(
        parked, pack_value(success ? word.desired : word.expected),
        runtime::mo_release, runtime::mo_relaxed);
  }
  return success;
}

Value McasArray::read(ProcId proc, std::uint32_t index) {
  runtime::Backoff backoff;
  for (;;) {
    runtime::step_tick();
    const Word w = cells_[index].value.load(runtime::mo_acquire);
    if (is_rdcss(w)) {
      telemetry::prod().mcas_rdcss_helps.inc();
      rdcss_complete(as_rdcss(w));
      backoff.pause();
      continue;
    }
    if (is_mcas(w)) {
      telemetry::prod().mcas_helps.inc();
      mcas_help(proc, as_mcas(w));
      backoff.pause();
      continue;
    }
    return unpack_value(w);
  }
}

bool McasArray::mcas(ProcId proc, std::vector<McasWord> words) {
  if (words.empty()) return true;
  std::sort(words.begin(), words.end(),
            [](const McasWord& a, const McasWord& b) {
              return a.index < b.index;
            });
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i].index >= cells_.size()) {
      throw std::out_of_range{"McasArray::mcas: index out of range"};
    }
    if (i > 0 && words[i].index == words[i - 1].index) {
      throw std::invalid_argument{"McasArray::mcas: duplicate index"};
    }
    (void)pack_value(words[i].expected);  // range checks, loud
    (void)pack_value(words[i].desired);
  }
  telemetry::prod().mcas_ops.inc();
  McasDescriptor* d = &arenas_[proc].mcas.emplace_back();
  d->words = std::move(words);
  return mcas_help(proc, d);
}

}  // namespace ruco::kcas
