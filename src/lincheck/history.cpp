#include "ruco/lincheck/history.h"

#include <algorithm>
#include <stdexcept>

namespace ruco::lincheck {

std::size_t History::pending_count() const noexcept {
  std::size_t n = 0;
  for (const auto& op : ops) n += op.pending() ? 1 : 0;
  return n;
}

History History::without_pending() const {
  History out;
  out.ops.reserve(ops.size());
  for (const auto& op : ops) {
    if (!op.pending()) out.ops.push_back(op);
  }
  return out;
}

History from_sim_history(const std::vector<sim::HistoryEvent>& events) {
  History out;
  // Per-process stack of open operations (ops of one process are
  // sequential, so the "stack" has depth <= 1; kept general for safety).
  std::vector<std::vector<std::size_t>> open;
  for (const auto& ev : events) {
    if (ev.proc >= open.size()) open.resize(ev.proc + 1);
    if (ev.kind == sim::HistoryEvent::Kind::kInvoke) {
      OpRecord rec;
      rec.proc = ev.proc;
      rec.op = ev.op;
      rec.arg = ev.value;
      rec.invoked = ev.time;
      open[ev.proc].push_back(out.ops.size());
      out.ops.push_back(std::move(rec));
    } else {
      if (open[ev.proc].empty()) {
        throw std::logic_error{"from_sim_history: return without invoke"};
      }
      OpRecord& rec = out.ops[open[ev.proc].back()];
      open[ev.proc].pop_back();
      rec.ret = ev.value;
      rec.ret_vec = ev.vec;
      rec.returned = ev.time;
    }
  }
  return out;
}

Recorder::Recorder(std::size_t num_threads) : lanes_(num_threads) {}

std::size_t Recorder::begin(ProcId t, std::string_view op, Value arg) {
  auto& lane = lanes_[t];
  OpRecord rec;
  rec.proc = t;
  rec.op = std::string{op};
  rec.arg = arg;
  rec.invoked = clock_.fetch_add(1);
  lane.records.push_back(std::move(rec));
  return lane.records.size() - 1;
}

void Recorder::end(ProcId t, std::size_t slot, Value ret) {
  OpRecord& rec = lanes_[t].records[slot];
  rec.ret = ret;
  rec.returned = clock_.fetch_add(1);
}

void Recorder::end(ProcId t, std::size_t slot, std::vector<Value> ret_vec) {
  OpRecord& rec = lanes_[t].records[slot];
  rec.ret_vec = std::move(ret_vec);
  rec.returned = clock_.fetch_add(1);
}

History Recorder::harvest() const {
  History out;
  for (const auto& lane : lanes_) {
    out.ops.insert(out.ops.end(), lane.records.begin(), lane.records.end());
  }
  std::sort(out.ops.begin(), out.ops.end(),
            [](const OpRecord& a, const OpRecord& b) {
              return a.invoked < b.invoked;
            });
  return out;
}

}  // namespace ruco::lincheck
