#include "ruco/simalgos/sim_counters.h"

#include <cassert>
#include <stdexcept>

namespace ruco::simalgos {

// ------------------------------------------------------------ f-array (sum)

SimFArrayCounter::SimFArrayCounter(sim::Program& program,
                                   std::uint32_t num_processes,
                                   maxreg::RefreshPolicy policy)
    : n_{num_processes},
      shape_{util::complete_shape(num_processes)},
      policy_{policy} {
  objects_.reserve(shape_.node_count());
  for (std::size_t i = 0; i < shape_.node_count(); ++i) {
    objects_.push_back(program.add_object(0));
  }
}

sim::Op SimFArrayCounter::read(sim::Ctx& ctx) const {
  co_return co_await ctx.read(objects_[shape_.root()]);
}

sim::Op SimFArrayCounter::increment(sim::Ctx& ctx) const {
  const auto leaf = shape_.leaf(ctx.id());
  const Value mine = co_await ctx.read(objects_[leaf]);
  co_await ctx.write(objects_[leaf], mine + 1);
  // Double refresh per level; under kConditional the production pruning
  // applies (ruco/maxreg/propagate.h): no-change recompute skips the CAS,
  // a won CAS skips the second round.
  const bool conditional = policy_ == maxreg::RefreshPolicy::kConditional;
  auto n = leaf;
  while (shape_.parent(n) != util::TreeShape::kNil) {
    n = shape_.parent(n);
    for (int attempt = 0; attempt < 2; ++attempt) {
      const Value old_value = co_await ctx.read(objects_[n]);
      const Value l = co_await ctx.read(objects_[shape_.left(n)]);
      const Value r = co_await ctx.read(objects_[shape_.right(n)]);
      if (conditional && l + r == old_value) break;
      const Value ok = co_await ctx.cas(objects_[n], old_value, l + r);
      if (conditional && ok != 0) break;
    }
  }
  co_return 0;
}

// ------------------------------------------------- AAC counter (rw-only)

SimMaxRegCounter::SimMaxRegCounter(sim::Program& program,
                                   std::uint32_t num_processes,
                                   Value max_increments)
    : n_{num_processes},
      bound_{max_increments + 1},
      shape_{util::complete_shape(num_processes)},
      nodes_(shape_.node_count()) {
  if (max_increments < 1) {
    throw std::invalid_argument{"SimMaxRegCounter: max_increments < 1"};
  }
  leaf_counts_.reserve(num_processes);
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    leaf_counts_.push_back(program.add_object(0));
  }
  for (util::TreeShape::NodeId id = 0; id < shape_.node_count(); ++id) {
    if (!shape_.is_leaf(id)) {
      nodes_[id] = std::make_unique<SimAacMaxRegister>(program, bound_);
    }
  }
}

sim::Op SimMaxRegCounter::node_value(sim::Ctx& ctx,
                                     util::TreeShape::NodeId node) const {
  if (shape_.is_leaf(node)) {
    co_return co_await ctx.read(leaf_counts_[shape_.leaf_index(node)]);
  }
  const Value v = co_await nodes_[node]->read_max(ctx);
  co_return v == kNoValue ? 0 : v;
}

sim::Op SimMaxRegCounter::read(sim::Ctx& ctx) const {
  co_return co_await node_value(ctx, shape_.root());
}

sim::Op SimMaxRegCounter::increment(sim::Ctx& ctx) const {
  assert(ctx.id() < n_);
  const auto leaf = shape_.leaf(ctx.id());
  const Value mine = co_await ctx.read(leaf_counts_[ctx.id()]) + 1;
  if (mine >= bound_) {
    throw std::length_error{"SimMaxRegCounter: restricted-use bound exceeded"};
  }
  co_await ctx.write(leaf_counts_[ctx.id()], mine);
  for (auto node = shape_.parent(leaf); node != util::TreeShape::kNil;
       node = shape_.parent(node)) {
    const Value left_sum = co_await node_value(ctx, shape_.left(node));
    const Value right_sum = co_await node_value(ctx, shape_.right(node));
    const Value sum = left_sum + right_sum;
    if (sum >= bound_) {
      throw std::length_error{
          "SimMaxRegCounter: restricted-use bound exceeded"};
    }
    co_await nodes_[node]->write_max(ctx, sum);
  }
  co_return 0;
}

// ------------------------------------------------- 2-CAS counter ([6])

SimKcasCounter::SimKcasCounter(sim::Program& program,
                               std::uint32_t num_processes)
    : n_{num_processes}, root_{program.add_object(0)} {
  leaves_.reserve(num_processes);
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    leaves_.push_back(program.add_object(0));
  }
}

sim::Op SimKcasCounter::read(sim::Ctx& ctx) const {
  co_return co_await ctx.read(root_);
}

sim::Op SimKcasCounter::increment(sim::Ctx& ctx) const {
  const sim::ObjectId leaf = leaves_[ctx.id()];
  for (;;) {
    const Value mine = co_await ctx.read(leaf);
    const Value total = co_await ctx.read(root_);
    // Built without an initializer_list: GCC 12 cannot materialize one
    // inside a coroutine frame.
    std::vector<sim::KcasEntry> words(2);
    words[0] = sim::KcasEntry{leaf, mine, mine + 1};
    words[1] = sim::KcasEntry{root_, total, total + 1};
    const Value ok = co_await ctx.kcas(std::move(words));
    if (ok != 0) co_return 0;
  }
}

}  // namespace ruco::simalgos
