#include "ruco/simalgos/sim_snapshots.h"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace ruco::simalgos {

SimDoubleCollectSnapshot::SimDoubleCollectSnapshot(
    sim::Program& program, std::uint32_t num_processes)
    : n_{num_processes} {
  if (num_processes == 0) {
    throw std::invalid_argument{"SimDoubleCollectSnapshot: 0 processes"};
  }
  segments_.reserve(num_processes);
  for (std::uint32_t i = 0; i < num_processes; ++i) {
    segments_.push_back(program.add_object(pack(0, 0)));
  }
}

sim::Op SimDoubleCollectSnapshot::update(sim::Ctx& ctx, Value v) const {
  assert(v >= 0 && v <= kMaxValue);
  const sim::ObjectId seg = segments_[ctx.id()];
  const Value current = co_await ctx.read(seg);
  co_await ctx.write(seg, pack(v, unpack_seq(current) + 1));
  co_return 0;
}

sim::Op SimDoubleCollectSnapshot::increment_own(sim::Ctx& ctx) const {
  const sim::ObjectId seg = segments_[ctx.id()];
  const Value current = co_await ctx.read(seg);
  co_await ctx.write(
      seg, pack(unpack_value(current) + 1, unpack_seq(current) + 1));
  co_return 0;
}

sim::Op SimDoubleCollectSnapshot::scan_into(sim::Ctx& ctx,
                                            std::vector<Value>* out) const {
  std::vector<Value> first(n_);
  std::vector<Value> second(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    first[i] = co_await ctx.read(segments_[i]);
  }
  for (;;) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      second[i] = co_await ctx.read(segments_[i]);
    }
    if (first == second) break;
    first.swap(second);
  }
  out->clear();
  out->reserve(n_);
  for (const Value w : second) out->push_back(unpack_value(w));
  co_return 0;
}

sim::Op SimDoubleCollectSnapshot::scan_sum(sim::Ctx& ctx) const {
  std::vector<Value> view;
  co_await scan_into(ctx, &view);
  Value sum = 0;
  for (const Value v : view) sum += v;
  co_return sum;
}

CounterProgram make_dc_snapshot_counter_program(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument{"dc counter program: n < 2"};
  CounterProgram out;
  auto counter = std::make_shared<SimDcSnapshotCounter>(out.program, n);
  out.algo = counter;
  out.num_incrementers = n - 1;
  for (std::uint32_t i = 0; i < n - 1; ++i) {
    out.program.add_process(
        [counter = counter.get()](sim::Ctx& ctx) -> sim::Op {
          ctx.mark_invoke("CounterIncrement", 0);
          co_await counter->increment(ctx);
          ctx.mark_return(0);
          co_return 0;
        });
  }
  out.reader = out.program.add_process(
      [counter = counter.get()](sim::Ctx& ctx) -> sim::Op {
        ctx.mark_invoke("CounterRead", 0);
        const Value v = co_await counter->read(ctx);
        ctx.mark_return(v);
        co_return v;
      });
  return out;
}

}  // namespace ruco::simalgos
