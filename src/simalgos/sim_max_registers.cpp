#include "ruco/simalgos/sim_max_registers.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ruco/util/bits.h"

namespace ruco::simalgos {

// ---------------------------------------------------------------- Algorithm A

SimTreeMaxRegister::SimTreeMaxRegister(sim::Program& program,
                                       std::uint32_t num_processes,
                                       maxreg::Faithfulness mode,
                                       int propagate_attempts,
                                       maxreg::RefreshPolicy policy)
    : shape_{num_processes},
      mode_{mode},
      propagate_attempts_{propagate_attempts},
      policy_{policy} {
  objects_.reserve(shape_.node_count());
  for (std::size_t i = 0; i < shape_.node_count(); ++i) {
    objects_.push_back(program.add_object(kNoValue));
  }
}

sim::Op SimTreeMaxRegister::read_max(sim::Ctx& ctx) const {
  co_return co_await ctx.read(objects_[shape_.root()]);
}

sim::Op SimTreeMaxRegister::propagate(sim::Ctx& ctx,
                                      util::TreeShape::NodeId leaf) const {
  // Paper Algorithm A, lines 3-9: double compute-max-and-CAS per level.
  // Under kConditional this mirrors the production pruning in
  // ruco/maxreg/propagate.h: a no-change recompute skips the CAS (the node
  // already covers our subtree), and a won CAS skips the second round (the
  // winning CAS read both children after our child update, so it covers
  // us).  kAlwaysTwice is the paper-literal shape.
  const bool conditional = policy_ == maxreg::RefreshPolicy::kConditional;
  auto n = leaf;
  while (shape_.parent(n) != util::AlgorithmATreeShape::kNil) {
    n = shape_.parent(n);
    for (int attempt = 0; attempt < propagate_attempts_; ++attempt) {
      const Value old_value = co_await ctx.read(objects_[n]);
      const Value l = co_await ctx.read(objects_[shape_.left(n)]);
      const Value r = co_await ctx.read(objects_[shape_.right(n)]);
      const Value new_value = std::max(l, r);
      if (conditional && new_value == old_value) break;
      const Value ok = co_await ctx.cas(objects_[n], old_value, new_value);
      if (conditional && ok != 0) break;
    }
  }
  co_return 0;
}

sim::Op SimTreeMaxRegister::write_max(sim::Ctx& ctx, Value v) const {
  assert(v >= 0);
  if (mode_ == maxreg::Faithfulness::kHelpOnDuplicate &&
      policy_ == maxreg::RefreshPolicy::kConditional) {
    // Root-check fast path (mirrors production): a root already >= v means
    // every later ReadMax returns >= v, so linearize right away.  Gated on
    // kConditional so kAlwaysTwice stays fully paper-shaped.
    if (co_await ctx.read(objects_[shape_.root()]) >= v) co_return 0;
  }
  const auto leaf = v < shape_.num_processes()
                        ? shape_.value_leaf(static_cast<std::uint64_t>(v))
                        : shape_.process_leaf(ctx.id());
  const Value old_value = co_await ctx.read(objects_[leaf]);
  if (v <= old_value) {
    if (mode_ == maxreg::Faithfulness::kHelpOnDuplicate) {
      co_await propagate(ctx, leaf);
    }
    co_return 0;
  }
  co_await ctx.write(objects_[leaf], v);
  co_await propagate(ctx, leaf);
  co_return 0;
}

// ------------------------------------------------------------ CAS retry loop

SimCasMaxRegister::SimCasMaxRegister(sim::Program& program)
    : cell_{program.add_object(kNoValue)} {}

sim::Op SimCasMaxRegister::read_max(sim::Ctx& ctx) const {
  co_return co_await ctx.read(cell_);
}

sim::Op SimCasMaxRegister::write_max(sim::Ctx& ctx, Value v) const {
  assert(v >= 0);
  Value current = co_await ctx.read(cell_);
  while (current < v) {
    const Value ok = co_await ctx.cas(cell_, current, v);
    if (ok != 0) break;
    current = co_await ctx.read(cell_);
  }
  co_return 0;
}

// --------------------------------------------------------- AAC max register

SimAacMaxRegister::SimAacMaxRegister(sim::Program& program, Value bound)
    : bound_{bound} {
  if (bound < 1) throw std::invalid_argument{"SimAacMaxRegister: bound < 1"};
  const std::uint64_t capacity =
      util::next_pow2(static_cast<std::uint64_t>(bound));
  levels_ = util::floor_log2(capacity);
  switches_.reserve(capacity);
  for (std::uint64_t i = 0; i < capacity; ++i) {
    switches_.push_back(program.add_object(0));
  }
  any_write_ = program.add_object(0);
}

sim::Op SimAacMaxRegister::read_max(sim::Ctx& ctx) const {
  if (co_await ctx.read(any_write_) == 0) co_return kNoValue;
  std::uint64_t node = 1;
  Value acc = 0;
  Value half = levels_ > 0 ? Value{1} << (levels_ - 1) : 0;
  for (std::uint32_t d = 0; d < levels_; ++d, half >>= 1) {
    if (co_await ctx.read(switches_[node]) != 0) {
      acc += half;
      node = 2 * node + 1;
    } else {
      node = 2 * node;
    }
  }
  co_return acc;
}

sim::Op SimAacMaxRegister::write_max(sim::Ctx& ctx, Value v) const {
  assert(v >= 0 && v < bound_);
  std::uint64_t node = 1;
  Value half = levels_ > 0 ? Value{1} << (levels_ - 1) : 0;
  std::uint64_t right_turns[64];
  std::size_t num_right_turns = 0;
  Value rest = v;
  for (std::uint32_t d = 0; d < levels_; ++d, half >>= 1) {
    if (rest < half) {
      if (co_await ctx.read(switches_[node]) != 0) break;  // dominated
      node = 2 * node;
    } else {
      right_turns[num_right_turns++] = node;
      rest -= half;
      node = 2 * node + 1;
    }
  }
  for (std::size_t i = num_right_turns; i-- > 0;) {
    co_await ctx.write(switches_[right_turns[i]], 1);
  }
  co_await ctx.write(any_write_, 1);
  co_return 0;
}

// ------------------------------------------------------- spinlock baseline

SimLockMaxRegister::SimLockMaxRegister(sim::Program& program)
    : lock_{program.add_object(0)}, cell_{program.add_object(kNoValue)} {}

sim::Op SimLockMaxRegister::read_max(sim::Ctx& ctx) const {
  while (co_await ctx.cas(lock_, 0, 1) == 0) {
  }
  const Value v = co_await ctx.read(cell_);
  co_await ctx.write(lock_, 0);
  co_return v;
}

sim::Op SimLockMaxRegister::write_max(sim::Ctx& ctx, Value v) const {
  assert(v >= 0);
  while (co_await ctx.cas(lock_, 0, 1) == 0) {
  }
  const Value current = co_await ctx.read(cell_);
  if (v > current) co_await ctx.write(cell_, v);
  co_await ctx.write(lock_, 0);
  co_return 0;
}

// ------------------------------------------ unbounded AAC (B1 spine)

SimUnboundedAacMaxRegister::SimUnboundedAacMaxRegister(
    sim::Program& program, std::uint32_t max_groups)
    : max_groups_{max_groups} {
  if (max_groups < 1 || max_groups > 26) {
    throw std::invalid_argument{
        "SimUnboundedAacMaxRegister: max_groups out of [1, 26]"};
  }
  spine_.reserve(max_groups_);
  groups_.reserve(max_groups_);
  for (std::uint32_t g = 0; g < max_groups_; ++g) {
    spine_.push_back(program.add_object(0));
    groups_.push_back(
        std::make_unique<SimAacMaxRegister>(program, Value{1} << g));
  }
}

sim::Op SimUnboundedAacMaxRegister::read_max(sim::Ctx& ctx) const {
  std::uint32_t g = 0;
  while (g + 1 < max_groups_) {
    if (co_await ctx.read(spine_[g]) == 0) break;
    ++g;
  }
  const Value inner = co_await groups_[g]->read_max(ctx);
  if (inner == kNoValue) co_return kNoValue;
  co_return ((Value{1} << g) - 1) + inner;
}

sim::Op SimUnboundedAacMaxRegister::write_max(sim::Ctx& ctx, Value v) const {
  assert(v >= 0);
  const std::uint32_t g =
      util::floor_log2(static_cast<std::uint64_t>(v) + 1);
  if (g >= max_groups_) {
    throw std::out_of_range{
        "SimUnboundedAacMaxRegister: operand exceeds the group envelope"};
  }
  if (co_await ctx.read(spine_[g]) == 0) {
    co_await groups_[g]->write_max(ctx, v - ((Value{1} << g) - 1));
  }
  for (std::uint32_t s = g; s-- > 0;) {
    co_await ctx.write(spine_[s], 1);
  }
  co_return 0;
}

}  // namespace ruco::simalgos
