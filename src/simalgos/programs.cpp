#include "ruco/simalgos/programs.h"

#include <stdexcept>

#include "ruco/util/bits.h"

#include "ruco/simalgos/sim_counters.h"
#include "ruco/simalgos/sim_max_registers.h"

namespace ruco::simalgos {

namespace {

template <typename Reg>
sim::Op maxreg_writer_body(const Reg* reg, sim::Ctx& ctx, Value v) {
  ctx.mark_invoke("WriteMax", v);
  co_await reg->write_max(ctx, v);
  ctx.mark_return(0);
  co_return 0;
}

template <typename Reg>
sim::Op maxreg_reader_body(const Reg* reg, sim::Ctx& ctx) {
  ctx.mark_invoke("ReadMax", 0);
  const Value v = co_await reg->read_max(ctx);
  ctx.mark_return(v);
  co_return v;
}

template <typename Reg, typename... Args>
MaxRegProgram make_maxreg_program(std::uint32_t k, Args&&... args) {
  if (k < 2) throw std::invalid_argument{"maxreg program: k < 2"};
  MaxRegProgram out;
  auto reg =
      std::make_shared<Reg>(out.program, std::forward<Args>(args)...);
  out.algo = reg;
  out.num_writers = k - 1;
  for (std::uint32_t i = 0; i < k - 1; ++i) {
    out.program.add_process(
        [reg = reg.get(), v = static_cast<Value>(i) + 1](sim::Ctx& ctx) {
          return maxreg_writer_body(reg, ctx, v);
        });
  }
  out.reader = out.program.add_process([reg = reg.get()](sim::Ctx& ctx) {
    return maxreg_reader_body(reg, ctx);
  });
  return out;
}

template <typename Counter>
sim::Op counter_inc_body(const Counter* counter, sim::Ctx& ctx) {
  ctx.mark_invoke("CounterIncrement", 0);
  co_await counter->increment(ctx);
  ctx.mark_return(0);
  co_return 0;
}

template <typename Counter>
sim::Op counter_read_body(const Counter* counter, sim::Ctx& ctx) {
  ctx.mark_invoke("CounterRead", 0);
  const Value v = co_await counter->read(ctx);
  ctx.mark_return(v);
  co_return v;
}

template <typename Counter, typename... Args>
CounterProgram make_counter_program(std::uint32_t n, Args&&... args) {
  if (n < 2) throw std::invalid_argument{"counter program: n < 2"};
  CounterProgram out;
  auto counter =
      std::make_shared<Counter>(out.program, n, std::forward<Args>(args)...);
  out.algo = counter;
  out.num_incrementers = n - 1;
  for (std::uint32_t i = 0; i < n - 1; ++i) {
    out.program.add_process([counter = counter.get()](sim::Ctx& ctx) {
      return counter_inc_body(counter, ctx);
    });
  }
  out.reader =
      out.program.add_process([counter = counter.get()](sim::Ctx& ctx) {
        return counter_read_body(counter, ctx);
      });
  return out;
}

}  // namespace

MaxRegProgram make_tree_maxreg_program(std::uint32_t k,
                                       maxreg::Faithfulness mode,
                                       maxreg::RefreshPolicy policy) {
  return make_maxreg_program<SimTreeMaxRegister>(k, k, mode, 2, policy);
}

MaxRegProgram make_cas_maxreg_program(std::uint32_t k) {
  return make_maxreg_program<SimCasMaxRegister>(k);
}

MaxRegProgram make_aac_maxreg_program(std::uint32_t k, Value bound) {
  if (bound < static_cast<Value>(k)) {
    throw std::invalid_argument{"aac maxreg program: bound < k"};
  }
  return make_maxreg_program<SimAacMaxRegister>(k, bound);
}

MaxRegProgram make_unbounded_aac_maxreg_program(std::uint32_t k) {
  // Writer operands reach k-1; groups up to floor(log2(k)) + 1 suffice.
  const std::uint32_t groups = util::floor_log2(k) + 2;
  return make_maxreg_program<SimUnboundedAacMaxRegister>(k, groups);
}

MaxRegProgram make_lock_maxreg_program(std::uint32_t k) {
  return make_maxreg_program<SimLockMaxRegister>(k);
}

CounterProgram make_farray_counter_program(std::uint32_t n) {
  return make_counter_program<SimFArrayCounter>(n);
}

CounterProgram make_maxreg_counter_program(std::uint32_t n,
                                           Value max_increments) {
  return make_counter_program<SimMaxRegCounter>(n, max_increments);
}

CounterProgram make_kcas_counter_program(std::uint32_t n) {
  return make_counter_program<SimKcasCounter>(n);
}

}  // namespace ruco::simalgos
