#include "ruco/sim/event.h"

namespace ruco::sim {

const char* to_string(Prim p) noexcept {
  switch (p) {
    case Prim::kRead:
      return "read";
    case Prim::kWrite:
      return "write";
    case Prim::kCas:
      return "cas";
    case Prim::kKcas:
      return "kcas";
  }
  return "?";
}

std::string Event::to_string() const {
  std::string s = "p" + std::to_string(proc) + " " + sim::to_string(prim) +
                  " o" + std::to_string(obj);
  switch (prim) {
    case Prim::kRead:
      s += " -> " + std::to_string(observed);
      break;
    case Prim::kWrite:
      s += " := " + std::to_string(arg);
      break;
    case Prim::kCas:
      s += "(" + std::to_string(expected) + " -> " + std::to_string(arg) +
           ") = " + (observed != 0 ? "ok" : "fail");
      break;
    case Prim::kKcas: {
      s = "p" + std::to_string(proc) + " kcas";
      for (const auto& entry : kcas) {
        s += " o" + std::to_string(entry.obj) + "(" +
             std::to_string(entry.expected) + "->" +
             std::to_string(entry.desired) + ")";
      }
      s += std::string{" = "} + (observed != 0 ? "ok" : "fail");
      break;
    }
  }
  if (spurious) s += " [spurious]";
  if (!changed) s += " [trivial]";
  return s;
}

Trace erase_processes(const Trace& trace, const std::vector<bool>& erase) {
  Trace out;
  out.reserve(trace.size());
  for (const Event& e : trace) {
    if (e.proc < erase.size() && erase[e.proc]) continue;
    out.push_back(e);
  }
  return out;
}

}  // namespace ruco::sim
