#include "ruco/sim/awareness.h"

#include <functional>

namespace ruco::sim {

namespace {

constexpr std::uint64_t kNone = UINT64_MAX;

using OnEvent = std::function<void(ProcId, std::uint64_t, const ProcSet&)>;

/// Shared forward pass: replays the trace through the Definition 1-4 rules,
/// invoking `on_event(p, index, aw_of_p)` after each event is absorbed.
void knowledge_pass(const Trace& trace, std::size_t num_processes,
                    std::size_t num_objects, KnowledgeSets& sets,
                    const OnEvent& on_event) {
  struct Contribution {
    std::uint64_t event_index;
    ProcId proc;
    ProcSet aw;
  };
  struct ObjectInfo {
    std::vector<Contribution> contribs;
    ProcSet fam;
    std::uint64_t last_access = kNone;
  };

  sets.awareness.assign(num_processes, ProcSet{num_processes});
  for (ProcId p = 0; p < num_processes; ++p) sets.awareness[p].add(p);
  std::vector<std::uint64_t> last_step(num_processes, kNone);
  std::vector<ObjectInfo> objects(num_objects);
  for (auto& o : objects) o.fam = ProcSet{num_processes};

  for (std::uint64_t i = 0; i < trace.size(); ++i) {
    const Event& e = trace[i];
    ObjectInfo& o = objects[e.obj];
    ProcSet& aw = sets.awareness[e.proc];
    switch (e.prim) {
      case Prim::kRead:
        aw.unite(o.fam);
        break;
      case Prim::kWrite: {
        // Literal Definition 1: *any* write hides an immediately-preceding
        // event on the same object whose issuer has not stepped since and
        // that nothing else accessed in between.
        if (!o.contribs.empty()) {
          const Contribution& top = o.contribs.back();
          if (top.event_index == o.last_access &&
              last_step[top.proc] == top.event_index) {
            o.contribs.pop_back();
            o.fam.clear();
            for (const auto& c : o.contribs) o.fam.unite(c.aw);
          }
        }
        if (e.changed) {
          o.contribs.push_back(Contribution{i, e.proc, aw});
          o.fam.unite(aw);
        }
        break;
      }
      case Prim::kCas:
        aw.unite(o.fam);
        if (e.changed) {
          o.contribs.push_back(Contribution{i, e.proc, aw});
          o.fam.unite(aw);
        }
        break;
      case Prim::kKcas:
        // Observes (and grows aware through) every touched object; on
        // success it is visible on every object whose value changed --
        // which, since all expected values matched, is exactly the entries
        // with desired != expected.
        for (const auto& entry : e.kcas) {
          aw.unite(objects[entry.obj].fam);
        }
        if (e.observed != 0) {
          for (const auto& entry : e.kcas) {
            if (entry.desired == entry.expected) continue;
            ObjectInfo& target = objects[entry.obj];
            target.contribs.push_back(Contribution{i, e.proc, aw});
            target.fam.unite(aw);
          }
        }
        for (const auto& entry : e.kcas) {
          objects[entry.obj].last_access = i;
        }
        break;
    }
    o.last_access = i;
    last_step[e.proc] = i;
    on_event(e.proc, i, aw);
  }

  sets.familiarity.assign(num_objects, ProcSet{num_processes});
  for (std::size_t o = 0; o < num_objects; ++o) {
    sets.familiarity[o] = std::move(objects[o].fam);
  }
}

}  // namespace

KnowledgeSets recompute_knowledge(const Trace& trace,
                                  std::size_t num_processes,
                                  std::size_t num_objects) {
  KnowledgeSets sets;
  knowledge_pass(trace, num_processes, num_objects, sets,
                 [](ProcId, std::uint64_t, const ProcSet&) {});
  return sets;
}

std::vector<std::uint64_t> first_aware_index(const Trace& trace,
                                             std::size_t num_processes,
                                             std::size_t num_objects,
                                             ProcId target) {
  std::vector<std::uint64_t> first(num_processes, kNeverAware);
  KnowledgeSets sets;
  knowledge_pass(trace, num_processes, num_objects, sets,
                 [&](ProcId p, std::uint64_t i, const ProcSet& aw) {
                   if (first[p] == kNeverAware && aw.contains(target)) {
                     first[p] = i;
                   }
                 });
  return first;
}

Trace erase_aware_of(const Trace& trace, std::size_t num_processes,
                     std::size_t num_objects, ProcId target) {
  const auto first =
      first_aware_index(trace, num_processes, num_objects, target);
  Trace out;
  out.reserve(trace.size());
  for (std::uint64_t i = 0; i < trace.size(); ++i) {
    const Event& e = trace[i];
    if (e.proc == target) continue;
    if (first[e.proc] != kNeverAware && i >= first[e.proc]) continue;
    out.push_back(e);
  }
  return out;
}

}  // namespace ruco::sim
