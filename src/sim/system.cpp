#include "ruco/sim/system.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ruco::sim {

ObjectId Program::add_object(Value initial) {
  object_init_.push_back(initial);
  return static_cast<ObjectId>(object_init_.size() - 1);
}

ProcId Program::add_process(std::function<Op(Ctx&)> body) {
  bodies_.push_back(std::move(body));
  footprints_.emplace_back();
  return static_cast<ProcId>(bodies_.size() - 1);
}

ProcId Program::add_process(std::function<Op(Ctx&)> body,
                            std::vector<ObjectId> footprint) {
  if (footprint.empty()) {
    throw std::invalid_argument{
        "Program::add_process: declared footprint must be non-empty (omit "
        "it entirely for an undeclared process)"};
  }
  std::sort(footprint.begin(), footprint.end());
  footprint.erase(std::unique(footprint.begin(), footprint.end()),
                  footprint.end());
  bodies_.push_back(std::move(body));
  footprints_.push_back(std::move(footprint));
  return static_cast<ProcId>(bodies_.size() - 1);
}

void Ctx::mark_invoke(std::string_view op, Value arg) {
  auto& ps = sys_->procs_[id_];
  if (++ps.invokes > 1 && sys_->program_->has_footprint(id_)) {
    throw std::logic_error{
        "Ctx::mark_invoke: footprint-declared process p" +
        std::to_string(id_) +
        " performed a second operation; the persistent-set filter requires "
        "at most one (drop the footprint declaration)"};
  }
  ps.invoke_buffered = true;
  ps.buffered_op = std::string{op};
  ps.buffered_arg = arg;
}

void Ctx::mark_return(Value ret) {
  // A zero-step operation would return with its invoke still buffered;
  // stamp the invoke first so the pair stays ordered.
  sys_->flush_invoke(id_);
  sys_->history_.push_back(HistoryEvent{id_, HistoryEvent::Kind::kReturn,
                                        std::string{}, ret, {},
                                        sys_->clock_++});
}

void Ctx::mark_return_vec(std::vector<Value> ret) {
  sys_->flush_invoke(id_);
  sys_->history_.push_back(HistoryEvent{id_, HistoryEvent::Kind::kReturn,
                                        std::string{}, 0, std::move(ret),
                                        sys_->clock_++});
}

void System::flush_invoke(ProcId p) {
  ProcState& ps = procs_[p];
  if (!ps.invoke_buffered) return;
  ps.invoke_buffered = false;
  history_.push_back(HistoryEvent{p, HistoryEvent::Kind::kInvoke,
                                  std::move(ps.buffered_op), ps.buffered_arg,
                                  {}, clock_++});
}

System::System(const Program& program) : program_{&program} {
  const std::size_t n = program.num_processes();
  objects_.resize(program.num_objects());
  for (auto& os : objects_) os.fam = ProcSet{n};
  // procs_ must never reallocate: coroutine frames hold Ctx&.
  procs_ = std::vector<ProcState>(n);
  for (ProcId p = 0; p < n; ++p) {
    ProcState& ps = procs_[p];
    ps.ctx.sys_ = this;
    ps.ctx.id_ = p;
    ps.aw = ProcSet{n};
  }
  active_ = ProcSet{n};
  reset();
}

void System::reset() {
  const Program& program = *program_;
  for (std::size_t o = 0; o < objects_.size(); ++o) {
    ObjectState& os = objects_[o];
    os.value = program.object_init_[o];
    os.fam.clear();
    os.contribs.clear();
    os.last_access = kNoEvent;
  }
  trace_.clear();
  history_.clear();
  decisions_.clear();
  clock_ = 0;
  knowledge_high_water_ = 1;
  crash_count_ = 0;
  active_.clear();
  live_count_ = 0;
  for (ProcId p = 0; p < procs_.size(); ++p) {
    ProcState& ps = procs_[p];
    ps.op = Op{};  // destroy any previously suspended coroutine chain
    ps.resume_point = {};
    ps.has_pending = false;
    ps.crashed = false;
    ps.prim_result = 0;
    ps.aw.clear();
    ps.aw.add(p);  // initially, each process is aware only of itself
    ps.steps = 0;
    ps.last_step = kNoEvent;
    ps.invoke_buffered = false;
    ps.buffered_op.clear();
    ps.buffered_arg = 0;
    ps.invokes = 0;
    ps.op = program.bodies_[p](ps.ctx);
    // Run to the first suspension so the enabled event is visible.
    ps.op.resume_from_system();
    if (ps.op.done() && !ps.has_pending) {
      (void)ps.op.result();  // surface construction-time exceptions
    }
    if (ps.has_pending) {
      active_.add(p);
      ++live_count_;
    }
  }
}

void System::post_pending(ProcId p, const Pending& pending,
                          std::coroutine_handle<> resume_point) {
  ProcState& ps = procs_[p];
  ps.pending = pending;
  ps.has_pending = true;
  ps.resume_point = resume_point;
}

bool System::pending_would_change(ProcId p) const {
  const ProcState& ps = procs_[p];
  if (!ps.has_pending) return false;
  const Value current = objects_[ps.pending.obj].value;
  switch (ps.pending.prim) {
    case Prim::kRead:
      return false;
    case Prim::kWrite:
      return ps.pending.arg != current;
    case Prim::kCas:
      return ps.pending.expected == current && ps.pending.arg != current;
    case Prim::kKcas: {
      bool all_match = true;
      bool any_change = false;
      for (const auto& entry : ps.pending.kcas) {
        const Value now = objects_[entry.obj].value;
        all_match = all_match && (now == entry.expected);
        any_change = any_change || (entry.desired != now);
      }
      return all_match && any_change;
    }
  }
  return false;
}

Value System::result(ProcId p) const {
  const ProcState& ps = procs_[p];
  if (ps.crashed) {
    throw std::logic_error{"System::result: process p" + std::to_string(p) +
                           " crashed; its operation never returned"};
  }
  return ps.op.result();
}

bool System::crash(ProcId p) {
  ProcState& ps = procs_[p];
  if (!ps.has_pending) return false;
  if (decision_log_enabled_) {
    decisions_.push_back({SchedDecision::Kind::kCrash, p});
  }
  // Discard a buffered invoke: in the model an operation's interval begins
  // at its first shared-memory event, so an operation that never stepped
  // never started -- it must not appear in the history even as pending.
  ps.invoke_buffered = false;
  ps.buffered_op.clear();
  ps.has_pending = false;
  ps.crashed = true;
  ps.resume_point = {};
  ps.op = Op{};  // destroy the suspended coroutine chain
  ++crash_count_;
  active_.remove(p);
  --live_count_;
  return true;
}

bool System::step_spurious(ProcId p) {
  ProcState& ps = procs_[p];
  if (!ps.has_pending || ps.pending.prim != Prim::kCas) return false;
  if (decision_log_enabled_) {
    decisions_.push_back({SchedDecision::Kind::kSpurious, p});
  }
  flush_invoke(p);
  const Pending pending = ps.pending;
  ps.has_pending = false;
  // A spuriously failed CAS is exactly a failed CAS to the rest of the
  // system: no value change, result 0 -- and it still observes the object,
  // so the knowledge tracker stays a conservative superset.
  ObjectState& os = objects_[pending.obj];
  Event ev;
  ev.proc = p;
  ev.obj = pending.obj;
  ev.prim = Prim::kCas;
  ev.arg = pending.arg;
  ev.expected = pending.expected;
  ev.observed = 0;
  ev.changed = false;
  ev.spurious = true;
  ps.aw.unite(os.fam);
  knowledge_high_water_ = std::max(knowledge_high_water_, ps.aw.count());
  ps.prim_result = 0;
  os.last_access = trace_.size();
  trace_.push_back(ev);
  ++clock_;
  ps.steps += 1;
  ps.last_step = trace_.size() - 1;
  ps.resume_point.resume();
  if (!ps.has_pending) {
    active_.remove(p);
    --live_count_;
    if (ps.op.done()) {
      (void)ps.op.result();  // rethrow algorithm bugs eagerly
    }
  }
  return true;
}

bool System::step(ProcId p) {
  ProcState& ps = procs_[p];
  if (!ps.has_pending) return false;
  if (decision_log_enabled_) {
    decisions_.push_back({SchedDecision::Kind::kStep, p});
  }
  flush_invoke(p);  // the operation's interval begins at its first step
  const Pending pending = ps.pending;
  ps.has_pending = false;
  apply(p, pending);
  ps.steps += 1;
  ps.last_step = trace_.size() - 1;
  // Resume the innermost suspended coroutine; it either posts a new pending
  // event or runs the op (chain) to completion.
  ps.resume_point.resume();
  if (!ps.has_pending) {
    active_.remove(p);
    --live_count_;
    if (ps.op.done()) {
      (void)ps.op.result();  // rethrow algorithm bugs eagerly
    }
  }
  return true;
}

void System::check_footprint(ProcId p, const Pending& pending) const {
  const std::vector<ObjectId>& fp = program_->footprint(p);
  const auto in_fp = [&fp](ObjectId o) {
    return std::binary_search(fp.begin(), fp.end(), o);
  };
  bool ok = true;
  if (pending.prim == Prim::kKcas) {
    for (const auto& entry : pending.kcas) ok = ok && in_fp(entry.obj);
  } else {
    ok = in_fp(pending.obj);
  }
  if (!ok) {
    throw std::logic_error{
        "System: process p" + std::to_string(p) + " accessed object " +
        std::to_string(pending.obj) +
        " outside its declared footprint; the persistent-set filter would "
        "be unsound (fix or drop the declaration)"};
  }
}

void System::apply(ProcId p, const Pending& pending) {
  if (program_->has_footprint(p)) check_footprint(p, pending);
  ObjectState& os = objects_[pending.obj];
  ProcState& ps = procs_[p];
  Event ev;
  ev.proc = p;
  ev.obj = pending.obj;
  ev.prim = pending.prim;
  ev.arg = pending.arg;
  ev.expected = pending.expected;
  const std::uint64_t index = trace_.size();

  switch (pending.prim) {
    case Prim::kRead:
      ev.observed = os.value;
      ev.changed = false;
      ps.aw.unite(os.fam);  // Definition 2 case 1
      ps.prim_result = ev.observed;
      break;
    case Prim::kWrite:
      ev.changed = (os.value != pending.arg);
      if (ev.changed) {
        // Definition 1: an immediately-overwritten, never-observed write
        // becomes invisible; retract its familiarity contribution.
        retract_overwritten(os);
        os.value = pending.arg;
        os.contribs.push_back(
            ObjectState::Contribution{index, p, ps.aw});
        os.fam.unite(ps.aw);  // Definition 4
      }
      ps.prim_result = 0;
      break;
    case Prim::kCas: {
      const bool success = (os.value == pending.expected);
      ev.observed = success ? 1 : 0;
      ev.changed = success && (pending.arg != os.value);
      ps.aw.unite(os.fam);  // a CAS observes the object either way
      if (ev.changed) {
        os.value = pending.arg;
        os.contribs.push_back(
            ObjectState::Contribution{index, p, ps.aw});
        os.fam.unite(ps.aw);
      }
      ps.prim_result = ev.observed;
      break;
    }
    case Prim::kKcas: {
      // Succeed iff every word matches; observe (and grow aware through)
      // every touched object either way.
      ev.kcas = pending.kcas;
      bool all_match = true;
      for (const auto& entry : pending.kcas) {
        all_match = all_match && (objects_[entry.obj].value == entry.expected);
      }
      ev.observed = all_match ? 1 : 0;
      for (const auto& entry : pending.kcas) {
        ps.aw.unite(objects_[entry.obj].fam);
      }
      if (all_match) {
        for (const auto& entry : pending.kcas) {
          ObjectState& target = objects_[entry.obj];
          if (target.value != entry.desired) {
            ev.changed = true;
            target.value = entry.desired;
            target.contribs.push_back(
                ObjectState::Contribution{index, p, ps.aw});
            target.fam.unite(ps.aw);
            knowledge_high_water_ =
                std::max(knowledge_high_water_, target.fam.count());
          }
        }
      }
      knowledge_high_water_ = std::max(knowledge_high_water_, ps.aw.count());
      // Every touched object records the access (blocks Definition 1
      // retraction of whatever it last held).
      for (const auto& entry : pending.kcas) {
        objects_[entry.obj].last_access = index;
      }
      ps.prim_result = ev.observed;
      break;
    }
  }
  os.last_access = index;
  switch (pending.prim) {
    case Prim::kRead:
      knowledge_high_water_ = std::max(knowledge_high_water_, ps.aw.count());
      break;
    case Prim::kWrite:
    case Prim::kCas:
      if (ev.changed) {
        knowledge_high_water_ =
            std::max(knowledge_high_water_, os.fam.count());
      }
      if (pending.prim == Prim::kCas) {
        knowledge_high_water_ =
            std::max(knowledge_high_water_, ps.aw.count());
      }
      break;
    case Prim::kKcas:
      break;  // tracked inline above
  }
  trace_.push_back(ev);
  ++clock_;
}

void System::retract_overwritten(ObjectState& os) {
  if (os.contribs.empty()) return;
  const auto& top = os.contribs.back();
  // The previous visible event on this object becomes invisible iff it was
  // the most recent access to the object (nobody read it in between) and
  // its issuer has taken no step since (Definition 1's two conditions).
  if (top.event_index == os.last_access &&
      procs_[top.proc].last_step == top.event_index) {
    os.contribs.pop_back();
    rebuild_familiarity(os);
  }
}

void System::rebuild_familiarity(ObjectState& os) {
  os.fam.clear();
  for (const auto& c : os.contribs) os.fam.unite(c.aw);
}

std::size_t System::max_knowledge() const {
  std::size_t best = 0;
  for (const auto& ps : procs_) best = std::max(best, ps.aw.count());
  for (const auto& os : objects_) best = std::max(best, os.fam.count());
  return best;
}

ReplayResult replay_trace(System& fresh, const Trace& script,
                          bool check_responses) {
  for (std::size_t i = 0; i < script.size(); ++i) {
    const Event& want = script[i];
    const Pending* enabled = fresh.enabled(want.proc);
    if (enabled == nullptr) {
      return ReplayResult{false, i,
                          "process completed early during replay"};
    }
    // Spurious weak-CAS failures are faults, not value-dependent outcomes:
    // replay must re-inject them or a CAS that spuriously failed in the
    // original run could succeed in the replay.
    const bool stepped = want.spurious ? fresh.step_spurious(want.proc)
                                       : fresh.step(want.proc);
    if (!stepped) {
      return ReplayResult{false, i, "process not steppable during replay"};
    }
    const Event& got = fresh.trace().back();
    if (!got.same_action(want)) {
      return ReplayResult{false, i,
                          "action mismatch: expected " + want.to_string() +
                              ", got " + got.to_string()};
    }
    if (check_responses &&
        (got.observed != want.observed || got.changed != want.changed)) {
      return ReplayResult{false, i,
                          "response mismatch: expected " + want.to_string() +
                              ", got " + got.to_string()};
    }
  }
  return ReplayResult{};
}

}  // namespace ruco::sim
