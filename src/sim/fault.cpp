#include "ruco/sim/fault.h"

namespace ruco::sim {

FaultInjector::FaultInjector(System& sys, FaultPlan plan)
    : sys_{sys},
      plan_{std::move(plan)},
      rng_{plan_.seed},
      fired_(plan_.crash_at.size(), false) {}

std::size_t FaultInjector::live_count() const {
  std::size_t live = 0;
  for (ProcId p = 0; p < sys_.num_processes(); ++p) {
    live += sys_.active(p) ? 1 : 0;
  }
  return live;
}

bool FaultInjector::should_crash(ProcId p) {
  for (std::size_t i = 0; i < plan_.crash_at.size(); ++i) {
    if (fired_[i]) continue;
    const CrashPoint& point = plan_.crash_at[i];
    if (point.proc != p) continue;
    const std::uint64_t counter =
        point.basis == CrashPoint::Basis::kOwnSteps ? sys_.steps_taken(p)
                                                    : sys_.trace().size();
    if (counter >= point.step) {
      fired_[i] = true;
      return true;
    }
  }
  if (random_crashes_ < plan_.max_random_crashes &&
      plan_.crash_per_mille != 0 && live_count() > plan_.min_survivors &&
      rng_.chance(plan_.crash_per_mille, 1000)) {
    ++random_crashes_;
    return true;
  }
  return false;
}

FaultInjector::Outcome FaultInjector::step(ProcId p) {
  if (!sys_.active(p)) return Outcome::kInactive;
  if (should_crash(p)) {
    const CrashRecord record{p, sys_.trace().size(), sys_.steps_taken(p)};
    sys_.crash(p);
    log_.push_back(record);
    return Outcome::kCrashed;
  }
  if (plan_.spurious_cas_per_mille != 0) {
    const Pending* pending = sys_.enabled(p);
    if (pending != nullptr && pending->prim == Prim::kCas &&
        rng_.chance(plan_.spurious_cas_per_mille, 1000)) {
      sys_.step_spurious(p);
      ++spurious_;
      return Outcome::kStepped;
    }
  }
  sys_.step(p);
  return Outcome::kStepped;
}

}  // namespace ruco::sim
