#include "ruco/sim/certify.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "ruco/sim/parallel.h"
#include "ruco/sim/schedulers.h"
#include "ruco/util/rng.h"

namespace ruco::sim {

namespace {

/// Drives one crash schedule to completion: round-robin when `rng` is
/// null, uniformly random over active processes otherwise, every slot
/// mediated by the injector.  Fails fast the moment any survivor exceeds
/// `bound` own steps -- a blocked (spinning) survivor is caught after
/// bound+1 of its steps, not after the whole budget.  Returns "" on
/// success, else a diagnostic naming the offending process.
std::string drive(System& sys, FaultInjector& injector, std::uint64_t bound,
                  std::uint64_t budget, util::SplitMix64* rng) {
  std::uint64_t slots = 0;
  std::vector<ProcId> live = sys.active_set().members();
  std::size_t rr_next = 0;
  while (!live.empty() && slots < budget) {
    const std::size_t i =
        rng != nullptr ? static_cast<std::size_t>(rng->below(live.size()))
                       : rr_next % live.size();
    const ProcId p = live[i];
    const auto outcome = injector.step(p);
    ++slots;
    if (outcome == FaultInjector::Outcome::kStepped &&
        sys.steps_taken(p) > bound) {
      return "p" + std::to_string(p) + " exceeded the step bound (" +
             std::to_string(sys.steps_taken(p)) + " > " +
             std::to_string(bound) + " steps); not wait-free under crashes";
    }
    if (!sys.active(p)) {  // completed or crashed
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      if (rng == nullptr) rr_next = i;  // successor now sits at index i
    } else if (rng == nullptr) {
      rr_next = i + 1;
    }
  }
  if (!live.empty()) {
    return "p" + std::to_string(live.front()) +
           " still active after the schedule budget (blocked survivor)";
  }
  return {};
}

void record_survivors(const System& sys, std::uint64_t* worst) {
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    if (!sys.crashed(p)) *worst = std::max(*worst, sys.steps_taken(p));
  }
}

}  // namespace

WaitFreedomReport certify_wait_freedom(const Program& program,
                                       const WaitFreedomOptions& options) {
  WaitFreedomReport report;
  const std::size_t n = program.num_processes();

  // Fault-free calibration run: per-process baseline step counts, and the
  // auto step bound.
  std::vector<std::uint64_t> baseline(n, 0);
  {
    System sys{program};
    run_round_robin(sys, options.max_schedule_steps);
    if (!all_done(sys)) {
      report.certified = false;
      report.message = "program did not complete fault-free within the "
                       "schedule budget; nothing to certify";
      return report;
    }
    for (ProcId p = 0; p < n; ++p) baseline[p] = sys.steps_taken(p);
  }
  const std::uint64_t max_baseline =
      *std::max_element(baseline.begin(), baseline.end());
  report.step_bound = options.step_bound != 0
                          ? options.step_bound
                          : options.slack * std::max<std::uint64_t>(
                                                max_baseline, 1);

  // Build the full job list up front -- (1) the deterministic crash sweep
  // (every process, every own-step prefix), then (2) the seeded storms --
  // and run it through the ordered job pool.  Each job drives one fault
  // schedule on its own System, so jobs parallelize embarrassingly; the
  // pool's ascending-claim protocol keeps the report deterministic (the
  // recorded failure is the first job that would have failed sequentially,
  // and every job before it is guaranteed to have run).
  struct CrashJob {
    FaultPlan plan;
    bool storm = false;  // storms randomize the scheduler from plan.seed
    std::string label;
  };
  std::vector<CrashJob> jobs;
  for (ProcId p = 0; p < n; ++p) {
    const std::uint64_t limit =
        std::min(options.sweep_steps,
                 baseline[p] == 0 ? std::uint64_t{0} : baseline[p] - 1);
    for (std::uint64_t k = 0; k <= limit; ++k) {
      CrashJob job;
      job.plan.crash_at.push_back(
          CrashPoint{p, k, CrashPoint::Basis::kOwnSteps});
      job.label = "sweep crash(p" + std::to_string(p) + " after " +
                  std::to_string(k) + " steps)";
      jobs.push_back(std::move(job));
    }
  }
  const std::uint32_t quota = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      options.max_crashes, n > 0 ? n - 1 : 0));
  for (std::uint64_t seed = 1; seed <= options.storm_seeds; ++seed) {
    CrashJob job;
    job.plan.seed = seed;
    job.plan.max_random_crashes = quota;
    job.plan.crash_per_mille = options.crash_per_mille;
    job.storm = true;
    job.label = "storm seed " + std::to_string(seed);
    jobs.push_back(std::move(job));
  }

  struct JobResult {
    bool ran = false;
    bool passed = false;
    std::string diag;
    std::uint64_t worst = 0;
  };
  std::vector<JobResult> results(jobs.size());
  // Heartbeat plumbing: one relaxed increment per schedule when requested,
  // serialized callback, nothing when on_progress is null.
  std::atomic<std::uint64_t> done{0};
  std::mutex progress_mu;
  const auto t0 = std::chrono::steady_clock::now();
  run_ordered_jobs(jobs.size(), options.jobs, [&](std::size_t i) {
    const CrashJob& job = jobs[i];
    System sys{program};
    FaultInjector injector{sys, job.plan};
    util::SplitMix64 sched_rng{job.plan.seed ^ 0x9e3779b97f4a7c15ULL};
    JobResult& r = results[i];
    r.diag = drive(sys, injector, report.step_bound,
                   options.max_schedule_steps,
                   job.storm ? &sched_rng : nullptr);
    record_survivors(sys, &r.worst);
    r.passed = r.diag.empty();
    r.ran = true;
    if (options.on_progress) {
      const std::uint64_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
      const std::uint64_t interval =
          std::max<std::uint64_t>(1, options.progress_interval);
      if (d % interval == 0 || d == jobs.size()) {
        CertifyProgress prog;
        prog.schedules_done = d;
        prog.schedules_total = jobs.size();
        prog.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        prog.schedules_per_sec =
            prog.wall_ms > 0.0
                ? static_cast<double>(d) * 1e3 / prog.wall_ms
                : 0.0;
        std::lock_guard<std::mutex> lk{progress_mu};
        options.on_progress(prog);
      }
    }
    return r.passed;
  });

  // Sequential-equivalent merge: count schedules (and aggregate the worst
  // survivor) up to and including the first failure, exactly like the old
  // stop-at-first-failure loops.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!results[i].ran) break;
    ++report.schedules;
    report.worst_survivor_steps =
        std::max(report.worst_survivor_steps, results[i].worst);
    if (!results[i].passed) {
      report.certified = false;
      report.message = jobs[i].label + ": " + results[i].diag;
      break;
    }
  }
  return report;
}

}  // namespace ruco::sim
