#include "ruco/sim/certify.h"

#include <algorithm>
#include <string>
#include <vector>

#include "ruco/sim/schedulers.h"
#include "ruco/util/rng.h"

namespace ruco::sim {

namespace {

/// Drives one crash schedule to completion: round-robin when `rng` is
/// null, uniformly random over active processes otherwise, every slot
/// mediated by the injector.  Fails fast the moment any survivor exceeds
/// `bound` own steps -- a blocked (spinning) survivor is caught after
/// bound+1 of its steps, not after the whole budget.  Returns "" on
/// success, else a diagnostic naming the offending process.
std::string drive(System& sys, FaultInjector& injector, std::uint64_t bound,
                  std::uint64_t budget, util::SplitMix64* rng) {
  std::uint64_t slots = 0;
  std::vector<ProcId> live;
  live.reserve(sys.num_processes());
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    if (sys.active(p)) live.push_back(p);
  }
  std::size_t rr_next = 0;
  while (!live.empty() && slots < budget) {
    const std::size_t i =
        rng != nullptr ? static_cast<std::size_t>(rng->below(live.size()))
                       : rr_next % live.size();
    const ProcId p = live[i];
    const auto outcome = injector.step(p);
    ++slots;
    if (outcome == FaultInjector::Outcome::kStepped &&
        sys.steps_taken(p) > bound) {
      return "p" + std::to_string(p) + " exceeded the step bound (" +
             std::to_string(sys.steps_taken(p)) + " > " +
             std::to_string(bound) + " steps); not wait-free under crashes";
    }
    if (!sys.active(p)) {  // completed or crashed
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      if (rng == nullptr) rr_next = i;  // successor now sits at index i
    } else if (rng == nullptr) {
      rr_next = i + 1;
    }
  }
  if (!live.empty()) {
    return "p" + std::to_string(live.front()) +
           " still active after the schedule budget (blocked survivor)";
  }
  return {};
}

void record_survivors(const System& sys, std::uint64_t* worst) {
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    if (!sys.crashed(p)) *worst = std::max(*worst, sys.steps_taken(p));
  }
}

}  // namespace

WaitFreedomReport certify_wait_freedom(const Program& program,
                                       const WaitFreedomOptions& options) {
  WaitFreedomReport report;
  const std::size_t n = program.num_processes();

  // Fault-free calibration run: per-process baseline step counts, and the
  // auto step bound.
  std::vector<std::uint64_t> baseline(n, 0);
  {
    System sys{program};
    run_round_robin(sys, options.max_schedule_steps);
    if (!all_done(sys)) {
      report.certified = false;
      report.message = "program did not complete fault-free within the "
                       "schedule budget; nothing to certify";
      return report;
    }
    for (ProcId p = 0; p < n; ++p) baseline[p] = sys.steps_taken(p);
  }
  const std::uint64_t max_baseline =
      *std::max_element(baseline.begin(), baseline.end());
  report.step_bound = options.step_bound != 0
                          ? options.step_bound
                          : options.slack * std::max<std::uint64_t>(
                                                max_baseline, 1);

  const auto run_one = [&](const FaultPlan& plan, util::SplitMix64* rng,
                           const std::string& label) {
    System sys{program};
    FaultInjector injector{sys, plan};
    const std::string diag = drive(sys, injector, report.step_bound,
                                   options.max_schedule_steps, rng);
    ++report.schedules;
    record_survivors(sys, &report.worst_survivor_steps);
    if (!diag.empty() && report.certified) {
      report.certified = false;
      report.message = label + ": " + diag;
    }
    return diag.empty();
  };

  // (1) Deterministic crash sweep: every process, every own-step prefix.
  for (ProcId p = 0; p < n && report.certified; ++p) {
    const std::uint64_t limit =
        std::min(options.sweep_steps,
                 baseline[p] == 0 ? std::uint64_t{0} : baseline[p] - 1);
    for (std::uint64_t k = 0; k <= limit && report.certified; ++k) {
      FaultPlan plan;
      plan.crash_at.push_back(
          CrashPoint{p, k, CrashPoint::Basis::kOwnSteps});
      run_one(plan, nullptr,
              "sweep crash(p" + std::to_string(p) + " after " +
                  std::to_string(k) + " steps)");
    }
  }

  // (2) Seeded random crash storms.
  const std::uint32_t quota = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      options.max_crashes, n > 0 ? n - 1 : 0));
  for (std::uint64_t seed = 1;
       seed <= options.storm_seeds && report.certified; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.max_random_crashes = quota;
    plan.crash_per_mille = options.crash_per_mille;
    util::SplitMix64 sched_rng{seed ^ 0x9e3779b97f4a7c15ULL};
    run_one(plan, &sched_rng, "storm seed " + std::to_string(seed));
  }

  return report;
}

}  // namespace ruco::sim
