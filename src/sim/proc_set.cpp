#include "ruco/sim/proc_set.h"

#include <bit>

namespace ruco::sim {

std::size_t ProcSet::count() const {
  std::size_t total = 0;
  for (const auto w : words_) total += std::popcount(w);
  return total;
}

bool ProcSet::empty() const {
  for (const auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool ProcSet::intersects(const ProcSet& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::vector<ProcId> ProcSet::intersection(const ProcSet& other) const {
  std::vector<ProcId> out;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i] & other.words_[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<ProcId>(i * 64 + static_cast<unsigned>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

std::vector<ProcId> ProcSet::members() const {
  std::vector<ProcId> out;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<ProcId>(i * 64 + static_cast<unsigned>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace ruco::sim
