#include "ruco/sim/trace_render.h"

#include <algorithm>
#include <vector>

#include "ruco/sim/awareness.h"

namespace ruco::sim {

namespace {

std::string cell_text(const Event& e, bool mark_trivial) {
  std::string s;
  switch (e.prim) {
    case Prim::kRead:
      s = "read o" + std::to_string(e.obj) + " -> " +
          std::to_string(e.observed);
      break;
    case Prim::kWrite:
      s = "write o" + std::to_string(e.obj) + " := " + std::to_string(e.arg);
      break;
    case Prim::kCas:
      s = "cas o" + std::to_string(e.obj) + "(" + std::to_string(e.expected) +
          "->" + std::to_string(e.arg) + ") " +
          (e.observed != 0 ? "ok" : "fail");
      break;
    case Prim::kKcas: {
      s = "kcas";
      for (const auto& w : e.kcas) s += " o" + std::to_string(w.obj);
      s += e.observed != 0 ? " ok" : " fail";
      break;
    }
  }
  if (mark_trivial && !e.changed && e.prim != Prim::kRead) s += " .";
  return s;
}

}  // namespace

std::string render_trace(const Trace& trace, std::size_t num_processes,
                         const TraceRenderOptions& options) {
  const std::size_t limit =
      options.max_events == 0 ? trace.size()
                              : std::min(options.max_events, trace.size());
  // Column widths.
  std::vector<std::size_t> width(num_processes, 2);
  for (std::size_t p = 0; p < num_processes; ++p) {
    width[p] = std::max<std::size_t>(width[p], 1 + std::to_string(p).size());
  }
  std::vector<std::string> cells(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    cells[i] = cell_text(trace[i], options.mark_trivial);
    if (trace[i].proc < num_processes) {
      width[trace[i].proc] =
          std::max(width[trace[i].proc], cells[i].size());
    }
  }
  std::string out;
  for (std::size_t p = 0; p < num_processes; ++p) {
    const std::string head = "p" + std::to_string(p);
    out += head + std::string(width[p] - head.size() + 2, ' ');
  }
  out += '\n';
  for (std::size_t i = 0; i < limit; ++i) {
    const ProcId p = trace[i].proc;
    for (std::size_t c = 0; c < num_processes; ++c) {
      if (c == p) {
        out += cells[i] + std::string(width[c] - cells[i].size() + 2, ' ');
      } else {
        out += std::string(width[c] + 2, ' ');
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  }
  if (limit < trace.size()) {
    out += "... (" + std::to_string(trace.size() - limit) + " more)\n";
  }
  return out;
}

std::string knowledge_dot(const Trace& trace, std::size_t num_processes,
                          std::size_t num_objects) {
  // For edge labels we track, per (learner, source), the object of the
  // event at which the learner first became aware of the source.
  struct Edge {
    ProcId from;
    ProcId to;
    ObjectId via;
  };
  std::vector<Edge> edges;
  // One first_aware_index pass per source process (O(sources * len));
  // recomputing full knowledge after every event would be quadratic in a
  // worse constant.
  for (ProcId source = 0; source < num_processes; ++source) {
    const auto first =
        first_aware_index(trace, num_processes, num_objects, source);
    for (ProcId learner = 0; learner < num_processes; ++learner) {
      if (learner == source || first[learner] == kNeverAware) continue;
      edges.push_back(
          Edge{source, learner, trace[first[learner]].obj});
    }
  }
  std::string out = "digraph knowledge {\n  rankdir=LR;\n";
  for (std::size_t p = 0; p < num_processes; ++p) {
    out += "  p" + std::to_string(p) + ";\n";
  }
  for (const Edge& e : edges) {
    out += "  p" + std::to_string(e.from) + " -> p" + std::to_string(e.to) +
           " [label=\"o" + std::to_string(e.via) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ruco::sim
