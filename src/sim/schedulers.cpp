#include "ruco/sim/schedulers.h"

#include <algorithm>
#include <utility>

#include <vector>

#include "ruco/sim/fault.h"
#include "ruco/util/rng.h"

namespace ruco::sim {

namespace {

// The scheduler cores are templated over a stepper so the fault-injecting
// decorations share one implementation with the plain paths.  A stepper
// reports what happened to the selected process in FaultInjector::Outcome
// terms; crashes occupy the scheduling slot without counting as steps.
using Outcome = FaultInjector::Outcome;

struct DirectStepper {
  System& sys;
  Outcome step(ProcId p) {
    return sys.step(p) ? Outcome::kStepped : Outcome::kInactive;
  }
};

struct FaultStepper {
  FaultInjector& faults;
  Outcome step(ProcId p) { return faults.step(p); }
};

template <typename Stepper>
std::uint64_t round_robin_impl(System& sys, std::uint64_t max_steps,
                               Stepper stepper) {
  std::uint64_t taken = 0;
  bool any = true;
  // Sweep the cached active set instead of all N processes: stepping (or
  // crashing) p only ever removes p itself, so advancing with next(p + 1)
  // mid-mutation still visits exactly the processes that were active.
  while (any && taken < max_steps) {
    any = false;
    const ProcSet& active = sys.active_set();
    for (ProcId p = active.next(0);
         p != ProcSet::kNone && taken < max_steps; p = active.next(p + 1)) {
      switch (stepper.step(p)) {
        case Outcome::kStepped:
          ++taken;
          any = true;
          break;
        case Outcome::kCrashed:
          any = true;  // progress of a sort: p left the schedule
          break;
        case Outcome::kInactive:
          break;
      }
    }
  }
  return taken;
}

template <typename Stepper>
std::uint64_t random_impl(System& sys, std::uint64_t seed,
                          std::uint64_t max_steps, Stepper stepper) {
  util::SplitMix64 rng{seed};
  std::uint64_t taken = 0;
  std::vector<ProcId> live = sys.active_set().members();
  while (!live.empty() && taken < max_steps) {
    const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
    const ProcId p = live[i];
    if (stepper.step(p) == Outcome::kStepped) ++taken;
    if (!sys.active(p)) {  // completed or crashed
      live[i] = live.back();
      live.pop_back();
    }
  }
  return taken;
}

template <typename Stepper>
std::uint64_t pct_impl(System& sys, const PctOptions& options,
                       Stepper stepper) {
  util::SplitMix64 rng{options.seed};
  const std::size_t n = sys.num_processes();
  // Distinct random priorities: a shuffled ramp, all above the demotion
  // band [0, depth).
  std::vector<std::uint64_t> priority(n);
  for (std::size_t i = 0; i < n; ++i) {
    priority[i] = options.depth + i;
  }
  for (std::size_t i = n; i > 1; --i) {
    std::swap(priority[i - 1],
              priority[static_cast<std::size_t>(rng.below(i))]);
  }
  // depth-1 change points, uniform over the step budget estimate.
  std::vector<std::uint64_t> change_points;
  for (std::uint32_t d = 1; d < options.depth; ++d) {
    change_points.push_back(rng.below(std::max<std::uint64_t>(
        options.max_steps / 4, 1)));
  }

  std::vector<bool> eligible(n, options.only.empty());
  for (const ProcId p : options.only) eligible[p] = true;

  std::uint64_t taken = 0;
  std::uint64_t next_demoted_priority = options.depth - 1;
  while (taken < options.max_steps) {
    ProcId best = UINT32_MAX;
    const ProcSet& active = sys.active_set();
    for (ProcId p = active.next(0); p != ProcSet::kNone;
         p = active.next(p + 1)) {
      if (eligible[p] &&
          (best == UINT32_MAX || priority[p] > priority[best])) {
        best = p;
      }
    }
    if (best == UINT32_MAX) break;
    // A crash consumes the scheduling slot but not a step: the change-point
    // clock (indexed by applied steps) must not advance, or crashed
    // processes would burn the bug-depth demotion points.
    if (stepper.step(best) != Outcome::kStepped) continue;
    ++taken;
    for (const std::uint64_t cp : change_points) {
      if (cp == taken && next_demoted_priority != UINT64_MAX) {
        priority[best] = next_demoted_priority;
        next_demoted_priority =
            next_demoted_priority == 0 ? UINT64_MAX
                                       : next_demoted_priority - 1;
      }
    }
  }
  return taken;
}

}  // namespace

std::uint64_t run_round_robin(System& sys, std::uint64_t max_steps) {
  return round_robin_impl(sys, max_steps, DirectStepper{sys});
}

std::uint64_t run_round_robin(System& sys, std::uint64_t max_steps,
                              FaultInjector& faults) {
  return round_robin_impl(sys, max_steps, FaultStepper{faults});
}

std::uint64_t run_random(System& sys, std::uint64_t seed,
                         std::uint64_t max_steps) {
  return random_impl(sys, seed, max_steps, DirectStepper{sys});
}

std::uint64_t run_random(System& sys, std::uint64_t seed,
                         std::uint64_t max_steps, FaultInjector& faults) {
  return random_impl(sys, seed, max_steps, FaultStepper{faults});
}

std::uint64_t run_solo(System& sys, ProcId p, std::uint64_t max_steps) {
  std::uint64_t taken = 0;
  while (sys.active(p) && taken < max_steps) {
    sys.step(p);
    ++taken;
  }
  return taken;
}

std::uint64_t run_script(System& sys, std::span<const ProcId> script) {
  std::uint64_t taken = 0;
  for (const ProcId p : script) {
    if (!sys.step(p)) break;
    ++taken;
  }
  return taken;
}

bool all_done(const System& sys) { return sys.all_done(); }

std::uint64_t run_pct(System& sys, const PctOptions& options) {
  return pct_impl(sys, options, DirectStepper{sys});
}

std::uint64_t run_pct(System& sys, const PctOptions& options,
                      FaultInjector& faults) {
  return pct_impl(sys, options, FaultStepper{faults});
}

}  // namespace ruco::sim
