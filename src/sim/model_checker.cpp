#include "ruco/sim/model_checker.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>

#include "ruco/sim/parallel.h"

namespace ruco::sim {

namespace {

/// Sentinel for "this node has no incoming choice" (the global root).
/// Cannot collide with a real choice: real ones carry a proc id < N.
constexpr ProcId kNoIncoming = UINT32_MAX;

void apply_choice(System& sys, ProcId choice) {
  if (is_crash_choice(choice)) {
    sys.crash(choice_proc(choice));
  } else {
    sys.step(choice);
  }
}

// ---------------------------------------------------------------------------
// Exploration telemetry (ModelCheckOptions::telemetry).
// ---------------------------------------------------------------------------

/// Shared heartbeat state: one atomic increment per complete execution when
/// the hook is installed, nothing at all when it is not.  Exploration order
/// and prune decisions never read it, so counters that must be
/// deterministic stay so.
struct TelemetryShared {
  const ModelCheckTelemetry* hook = nullptr;
  std::atomic<std::uint64_t> executions{0};
  std::mutex mu;  // serializes on_progress across workers
  std::chrono::steady_clock::time_point t0;
};

void record_depth(ModelCheckStats& stats, std::size_t depth) {
  if (stats.depth_hist.empty()) {
    stats.depth_hist.assign(ModelCheckStats::kDepthBuckets + 1, 0);
  }
  ++stats.depth_hist[std::min(depth, ModelCheckStats::kDepthBuckets)];
}

/// Called once per complete execution by whichever engine/worker produced
/// it; fires on_progress every interval_executions completions.
void telemetry_note_execution(TelemetryShared* tel,
                              const ModelCheckStats& local,
                              std::size_t depth) {
  if (tel == nullptr || tel->hook == nullptr) return;
  const std::uint64_t global =
      tel->executions.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t interval = tel->hook->interval_executions;
  if (interval == 0 || global % interval != 0 || !tel->hook->on_progress) {
    return;
  }
  ModelCheckProgress prog;
  prog.executions = global;
  prog.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - tel->t0)
                     .count();
  prog.executions_per_sec =
      prog.wall_ms > 0.0 ? static_cast<double>(global) * 1e3 / prog.wall_ms
                         : 0.0;
  prog.nodes = local.nodes;
  prog.sleep_pruned = local.sleep_pruned;
  prog.persistent_pruned = local.persistent_pruned;
  prog.replays = local.replays;
  prog.current_depth = depth;
  std::lock_guard<std::mutex> lk{tel->mu};
  tel->hook->on_progress(prog);
}

// ---------------------------------------------------------------------------
// Independence relation (docs/MODEL.md, "Independence and the history").
// ---------------------------------------------------------------------------

bool touches(const Pending& x, ObjectId o) {
  if (x.prim != Prim::kKcas) return x.obj == o;
  for (const auto& e : x.kcas) {
    if (e.obj == o) return true;
  }
  return false;
}

bool objects_intersect(const Pending& a, const Pending& b) {
  if (a.prim != Prim::kKcas) return touches(b, a.obj);
  for (const auto& e : a.kcas) {
    if (touches(b, e.obj)) return true;
  }
  return false;
}

/// Conditional independence of two distinct enabled choices at the state
/// `sys` currently sits in.  Rules, each load-bearing for soundness:
///   * same process: dependent (program order, and crash-vs-step of one
///     process obviously do not commute);
///   * crash choices commute with every other process's choices -- a crash
///     records no trace/history event and touches only its own process;
///   * a step that will stamp a deferred mark_invoke is dependent with
///     every other step: the invoke timestamp orders that operation
///     against every response in the history, so swapping it past any
///     event can change the linearizability verdict;
///   * otherwise two steps commute iff their object footprints are
///     disjoint, or they overlap but neither would change a value right
///     now (reads, failing CAS/k-CAS, value-preserving writes).  The
///     classification is state-dependent, which sleep sets support: it is
///     re-evaluated on every edge, and any value-changing access to a
///     slept choice's object is dependent with it and evicts it.
bool choices_independent(const System& sys, ProcId ca, ProcId cb) {
  const ProcId pa = choice_proc(ca);
  const ProcId pb = choice_proc(cb);
  if (pa == pb) return false;
  if (is_crash_choice(ca) || is_crash_choice(cb)) return true;
  if (sys.will_flush_invoke(pa) || sys.will_flush_invoke(pb)) return false;
  const Pending* ea = sys.enabled(pa);
  const Pending* eb = sys.enabled(pb);
  if (ea == nullptr || eb == nullptr) return false;  // defensive: dependent
  if (!objects_intersect(*ea, *eb)) return true;
  return !sys.pending_would_change(pa) && !sys.pending_would_change(pb);
}

// ---------------------------------------------------------------------------
// Shared engine pieces.
// ---------------------------------------------------------------------------

struct EngineConfig {
  const Program& program;
  const Verdict& verdict;
  const ModelCheckOptions& opt;
  /// POR requested AND applicable (preemption_bound == kUnbounded): sleep
  /// sets keep one representative per commutation class, but the kept
  /// representative may need a different preemption count than a pruned
  /// equivalent, so combining the two would silently lose bounded coverage.
  bool por = false;
  /// Persistent-set filter precomputation: usable iff every process
  /// declared a footprint and N <= 64.  fp_conflict[p] = bitmask of
  /// processes whose declared footprints intersect p's (p included).
  bool footprints_usable = false;
  std::vector<std::uint64_t> fp_conflict;
};

struct NodeContext {
  bool last_still_ready = false;
  ProcId last_proc = 0;
};

/// Builds the ordered choice list of the node `sys` currently sits at:
/// ready steps ascending (minus context-bound-blocked, slept and
/// persistent-deferred ones), then crash choices ascending if budget
/// remains -- exactly the legacy enumeration order when POR is off.
void build_choices(const EngineConfig& cfg, const System& sys,
                   const std::vector<ProcId>& sleep, std::uint32_t pl,
                   std::uint32_t cl, ProcId incoming, std::vector<ProcId>& out,
                   NodeContext& ctx, ModelCheckStats& stats) {
  ctx.last_still_ready = incoming != kNoIncoming &&
                         !is_crash_choice(incoming) &&
                         sys.active(choice_proc(incoming));
  ctx.last_proc = incoming == kNoIncoming ? 0 : choice_proc(incoming);
  const ProcSet& active = sys.active_set();

  // Persistent-set filter: if every live process declared a footprint and
  // none is about to stamp an invoke (invoke steps are dependent with
  // everything), the closure of the first live process under
  // footprint-intersection is a persistent set -- processes outside it
  // cannot interact with it on any path, so their choices are deferred,
  // not lost (the state space is acyclic: no ignoring problem).
  std::uint64_t allowed = ~std::uint64_t{0};
  if (cfg.por && cfg.footprints_usable) {
    bool applicable = true;
    std::uint64_t live = 0;
    for (ProcId p = active.next(0); p != ProcSet::kNone;
         p = active.next(p + 1)) {
      live |= std::uint64_t{1} << p;
      if (sys.will_flush_invoke(p)) applicable = false;
    }
    if (applicable && live != 0) {
      std::uint64_t closure = live & (~live + 1);  // lowest live process
      while (true) {
        std::uint64_t grown = closure;
        for (std::uint64_t rest = closure; rest != 0; rest &= rest - 1) {
          grown |= cfg.fp_conflict[static_cast<std::size_t>(
              std::countr_zero(rest))];
        }
        grown &= live;
        if (grown == closure) break;
        closure = grown;
      }
      allowed = closure;
    }
  }

  const auto slept = [&sleep](ProcId choice) {
    return std::find(sleep.begin(), sleep.end(), choice) != sleep.end();
  };
  const auto deferred = [allowed](ProcId p) {
    return p < 64 && (allowed & (std::uint64_t{1} << p)) == 0;
  };
  for (ProcId p = active.next(0); p != ProcSet::kNone; p = active.next(p + 1)) {
    if (deferred(p)) {
      ++stats.persistent_pruned;
      continue;
    }
    const bool preempts = ctx.last_still_ready && p != ctx.last_proc;
    if (preempts && pl == 0) continue;
    if (cfg.por && slept(p)) {
      ++stats.sleep_pruned;
      continue;
    }
    out.push_back(p);
  }
  if (cl > 0) {
    for (ProcId p = active.next(0); p != ProcSet::kNone;
         p = active.next(p + 1)) {
      if (deferred(p)) {
        ++stats.persistent_pruned;
        continue;
      }
      if (cfg.por && slept(p | kCrashChoice)) {
        ++stats.sleep_pruned;
        continue;
      }
      out.push_back(p | kCrashChoice);
    }
  }
}

/// One parallel work unit: a DFS subtree identified by its absolute prefix
/// plus the sleep set and remaining bound budgets at its root.
struct SubtreeRoot {
  std::vector<ProcId> prefix;
  std::vector<ProcId> sleep;
  std::uint32_t preemptions_left = 0;
  std::uint32_t crashes_left = 0;
};

struct LocalResult {
  StopReason stop = StopReason::kComplete;
  std::uint64_t executions = 0;
  std::vector<ProcId> counterexample;
  std::string message;
  ModelCheckStats stats;
};

// ---------------------------------------------------------------------------
// Replay-light iterative DFS over one subtree.
//
// One live System walks forward along the current branch for free; on
// backtrack the next sibling's state is rebuilt by System::reset plus a
// prefix replay.  Per complete execution that is O(1) forward steps plus at
// most one replay of O(length) steps, i.e. O(paths * length) overall --
// versus the legacy recursion's fresh System + full replay at *every* node.
// ---------------------------------------------------------------------------
class SubtreeExplorer {
 public:
  SubtreeExplorer(const EngineConfig& cfg, std::atomic<std::uint64_t>* budget,
                  TelemetryShared* tel)
      : cfg_{cfg}, budget_{budget}, tel_{tel}, sys_{cfg.program} {}

  /// Complete executions produced by this explorer over its lifetime
  /// (across every subtree it ran) -- the per-worker balance statistic.
  [[nodiscard]] std::uint64_t lifetime_executions() const noexcept {
    return lifetime_executions_;
  }

  LocalResult run(const SubtreeRoot& root) {
    res_ = LocalResult{};
    base_ = &root.prefix;
    path_.clear();
    stack_.clear();
    resync_to(0);
    const ProcId incoming =
        root.prefix.empty() ? kNoIncoming : root.prefix.back();
    if (begin_node(root.sleep, root.preemptions_left, root.crashes_left,
                   incoming)) {
      loop();
    }
    return std::move(res_);
  }

 private:
  struct Frame {
    std::vector<ProcId> choices;
    std::vector<ProcId> sleep;
    NodeContext ctx;
    std::uint32_t next = 0;
    std::uint32_t preemptions_left = 0;
    std::uint32_t crashes_left = 0;
  };

  void loop() {
    while (!stack_.empty()) {
      Frame& f = stack_.back();
      if (f.next >= f.choices.size()) {
        stack_.pop_back();
        if (!path_.empty()) path_.pop_back();
        continue;
      }
      const std::size_t depth = stack_.size() - 1;
      if (synced_ != base_->size() + depth) resync_to(depth);
      const ProcId c = f.choices[f.next];
      // Child sleep set (Godefroid): survivors of sleep ∪ explored
      // siblings that are independent with c -- evaluated at the parent
      // state, before c is applied.
      child_sleep_.clear();
      if (cfg_.por) {
        for (const ProcId s : f.sleep) {
          if (choices_independent(sys_, c, s)) child_sleep_.push_back(s);
        }
        for (std::uint32_t i = 0; i < f.next; ++i) {
          if (choices_independent(sys_, c, f.choices[i])) {
            child_sleep_.push_back(f.choices[i]);
          }
        }
      }
      ++f.next;
      const bool preempts = !is_crash_choice(c) && f.ctx.last_still_ready &&
                            choice_proc(c) != f.ctx.last_proc;
      const std::uint32_t npl =
          preempts ? f.preemptions_left - 1 : f.preemptions_left;
      const std::uint32_t ncl =
          is_crash_choice(c) ? f.crashes_left - 1 : f.crashes_left;
      apply_choice(sys_, c);
      ++synced_;
      ++res_.stats.applied_steps;
      path_.push_back(c);
      // May push a frame (interior node), pop path_ (leaf / fully pruned
      // node), or stop the run; `f` is invalid past this point.
      if (!begin_node(child_sleep_, npl, ncl, c)) return;
    }
  }

  /// Enters the node `sys_` sits at.  Returns false to stop the whole run
  /// (res_.stop already set); true to continue the loop.
  bool begin_node(const std::vector<ProcId>& sleep, std::uint32_t pl,
                  std::uint32_t cl, ProcId incoming) {
    ++res_.stats.nodes;
    const bool leaf = sys_.all_done();
    if (cfg_.opt.max_executions != 0) {
      // Leaves reserve a ticket from the shared counter, so with several
      // workers exactly max_executions leaves get counted overall.
      if (leaf) {
        const std::uint64_t ticket =
            budget_->fetch_add(1, std::memory_order_relaxed);
        if (ticket >= cfg_.opt.max_executions) {
          res_.stop = StopReason::kBudget;
          return false;
        }
      } else if (budget_->load(std::memory_order_relaxed) >=
                 cfg_.opt.max_executions) {
        res_.stop = StopReason::kBudget;
        return false;
      }
    }
    if (leaf) {
      ++res_.executions;
      ++lifetime_executions_;
      record_depth(res_.stats, base_->size() + path_.size());
      telemetry_note_execution(tel_, res_.stats, base_->size() + path_.size());
      std::string diag = cfg_.verdict(sys_);
      if (!diag.empty()) {
        fail(std::move(diag));
        return false;
      }
      if (!path_.empty()) path_.pop_back();
      return true;
    }
    if (base_->size() + path_.size() >= cfg_.opt.max_depth) {
      fail("max_depth exceeded (non-terminating schedule?)");
      return false;
    }
    Frame f;
    f.preemptions_left = pl;
    f.crashes_left = cl;
    build_choices(cfg_, sys_, sleep, pl, cl, incoming, f.choices, f.ctx,
                  res_.stats);
    if (f.choices.empty()) {
      // Everything bound-blocked, slept or deferred: prune point.
      if (!path_.empty()) path_.pop_back();
      return true;
    }
    if (cfg_.por) f.sleep = sleep;
    stack_.push_back(std::move(f));
    return true;
  }

  void fail(std::string msg) {
    res_.stop = StopReason::kCounterexample;
    res_.counterexample = *base_;
    res_.counterexample.insert(res_.counterexample.end(), path_.begin(),
                               path_.end());
    res_.message = std::move(msg);
  }

  /// Rebuilds sys_ to the state base + path[0..depth).
  void resync_to(std::size_t depth) {
    sys_.reset();
    ++res_.stats.replays;
    for (const ProcId c : *base_) apply_choice(sys_, c);
    for (std::size_t i = 0; i < depth; ++i) apply_choice(sys_, path_[i]);
    res_.stats.replayed_steps += base_->size() + depth;
    synced_ = base_->size() + depth;
  }

  const EngineConfig& cfg_;
  std::atomic<std::uint64_t>* budget_;
  TelemetryShared* tel_ = nullptr;
  std::uint64_t lifetime_executions_ = 0;
  System sys_;
  LocalResult res_;
  const std::vector<ProcId>* base_ = nullptr;
  std::vector<ProcId> path_;
  std::vector<Frame> stack_;
  std::vector<ProcId> child_sleep_;
  std::size_t synced_ = 0;  // choices applied to sys_ since its last reset
};

// ---------------------------------------------------------------------------
// Parallel frontier: breadth-first expansion of the first few levels, with
// the same choice construction (and sleep propagation) the workers use.
// Children replace their parent in place, so the root list stays in global
// DFS order -- the basis of the deterministic merge.
// ---------------------------------------------------------------------------
std::vector<SubtreeRoot> build_frontier(const EngineConfig& cfg,
                                        ModelCheckStats& stats,
                                        std::size_t target_roots,
                                        std::uint32_t depth_cap) {
  std::vector<SubtreeRoot> roots;
  roots.push_back(SubtreeRoot{
      {}, {}, cfg.opt.preemption_bound, cfg.opt.max_crashes});
  System sys{cfg.program};
  std::vector<ProcId> choices;
  NodeContext ctx;
  for (std::uint32_t depth = 0;
       depth < depth_cap && roots.size() < target_roots; ++depth) {
    std::vector<SubtreeRoot> next;
    next.reserve(roots.size() * 2);
    bool expanded = false;
    for (SubtreeRoot& r : roots) {
      sys.reset();
      for (const ProcId c : r.prefix) apply_choice(sys, c);
      if (sys.all_done() || r.prefix.size() >= cfg.opt.max_depth) {
        // Terminal: hand to a worker as a trivial job (it evaluates the
        // verdict / reports the depth failure, keeping order intact).
        next.push_back(std::move(r));
        continue;
      }
      ++stats.nodes;
      ++stats.replays;
      stats.replayed_steps += r.prefix.size();
      choices.clear();
      const ProcId incoming =
          r.prefix.empty() ? kNoIncoming : r.prefix.back();
      build_choices(cfg, sys, r.sleep, r.preemptions_left, r.crashes_left,
                    incoming, choices, ctx, stats);
      expanded = true;
      for (std::size_t ci = 0; ci < choices.size(); ++ci) {
        const ProcId c = choices[ci];
        SubtreeRoot child;
        child.prefix = r.prefix;
        child.prefix.push_back(c);
        if (cfg.por) {
          for (const ProcId s : r.sleep) {
            if (choices_independent(sys, c, s)) child.sleep.push_back(s);
          }
          for (std::size_t i = 0; i < ci; ++i) {
            if (choices_independent(sys, c, choices[i])) {
              child.sleep.push_back(choices[i]);
            }
          }
        }
        const bool preempts = !is_crash_choice(c) && ctx.last_still_ready &&
                              choice_proc(c) != ctx.last_proc;
        child.preemptions_left =
            preempts ? r.preemptions_left - 1 : r.preemptions_left;
        child.crashes_left =
            is_crash_choice(c) ? r.crashes_left - 1 : r.crashes_left;
        next.push_back(std::move(child));
      }
    }
    roots = std::move(next);
    if (!expanded) break;
  }
  return roots;
}

void accumulate(ModelCheckStats& into, const ModelCheckStats& from) {
  into.nodes += from.nodes;
  into.applied_steps += from.applied_steps;
  into.replays += from.replays;
  into.replayed_steps += from.replayed_steps;
  into.sleep_pruned += from.sleep_pruned;
  into.persistent_pruned += from.persistent_pruned;
  if (!from.depth_hist.empty()) {
    if (into.depth_hist.empty()) {
      into.depth_hist.assign(ModelCheckStats::kDepthBuckets + 1, 0);
    }
    for (std::size_t i = 0; i < from.depth_hist.size(); ++i) {
      into.depth_hist[i] += from.depth_hist[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Legacy recursive engine: fresh System + full prefix replay per node.
// Kept as a differential oracle for tests and as the benchmark baseline.
// ---------------------------------------------------------------------------
struct LegacyDfs {
  const Program& program;
  const Verdict& verdict;
  const ModelCheckOptions& options;
  TelemetryShared* tel;
  ModelCheckResult result;
  std::vector<ProcId> prefix;

  // Returns false to stop exploration; result.stop says why.
  // `preemptions_left` implements iterative context bounding: continuing
  // the process that just ran -- or switching away from a completed or
  // crashed one -- is free; any other switch consumes budget.
  // `crashes_left` bounds the crash-choice fan-out (options.max_crashes).
  bool explore(std::uint32_t preemptions_left, std::uint32_t crashes_left) {
    if (options.max_executions != 0 &&
        result.executions >= options.max_executions) {
      result.stop = StopReason::kBudget;
      return false;
    }
    ++result.stats.nodes;
    ++result.stats.replays;
    result.stats.replayed_steps += prefix.size();
    System sys{program};
    for (const ProcId choice : prefix) apply_choice(sys, choice);

    std::vector<ProcId> ready;
    for (ProcId p = 0; p < sys.num_processes(); ++p) {
      if (sys.active(p)) ready.push_back(p);
    }
    if (ready.empty()) {
      ++result.executions;
      record_depth(result.stats, prefix.size());
      telemetry_note_execution(tel, result.stats, prefix.size());
      std::string diag = verdict(sys);
      if (!diag.empty()) {
        result.stop = StopReason::kCounterexample;
        result.counterexample = prefix;
        result.message = std::move(diag);
        return false;
      }
      return true;
    }
    if (prefix.size() >= options.max_depth) {
      result.stop = StopReason::kCounterexample;
      result.counterexample = prefix;
      result.message = "max_depth exceeded (non-terminating schedule?)";
      return false;
    }
    const bool last_still_ready = !prefix.empty() &&
                                  !is_crash_choice(prefix.back()) &&
                                  sys.active(prefix.back());
    for (const ProcId p : ready) {
      const bool preempts = last_still_ready && p != prefix.back();
      if (preempts && preemptions_left == 0) continue;
      prefix.push_back(p);
      const bool keep_going =
          explore(preempts ? preemptions_left - 1 : preemptions_left,
                  crashes_left);
      prefix.pop_back();
      if (!keep_going) return false;
    }
    // Crash choices: fail any active process here.  Free of preemption
    // budget (see header); the crashed process leaves the ready set, so
    // the next step choice away from a crashed "last runner" is free too.
    if (crashes_left > 0) {
      for (const ProcId p : ready) {
        prefix.push_back(p | kCrashChoice);
        const bool keep_going = explore(preemptions_left, crashes_left - 1);
        prefix.pop_back();
        if (!keep_going) return false;
      }
    }
    return true;
  }
};

}  // namespace

ModelCheckResult model_check(const Program& program, const Verdict& verdict,
                             const ModelCheckOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  TelemetryShared tel;
  tel.hook = options.telemetry;
  tel.t0 = t0;
  const bool por_effective =
      options.por &&
      options.preemption_bound == ModelCheckOptions::kUnbounded &&
      options.engine == ModelCheckOptions::Engine::kIterative;
  ModelCheckResult result;

  if (options.engine == ModelCheckOptions::Engine::kLegacyRecursive) {
    LegacyDfs dfs{program, verdict, options, &tel, ModelCheckResult{}, {}};
    dfs.explore(options.preemption_bound, options.max_crashes);
    result = std::move(dfs.result);
    result.stats.jobs_used = 1;
    result.stats.worker_executions = {result.executions};
  } else {
    EngineConfig cfg{program, verdict, options, por_effective, false, {}};
    const std::size_t n = program.num_processes();
    if (por_effective && n > 0 && n <= 64) {
      bool all_declared = true;
      for (ProcId p = 0; p < n; ++p) {
        all_declared = all_declared && program.has_footprint(p);
      }
      if (all_declared) {
        cfg.footprints_usable = true;
        cfg.fp_conflict.assign(n, 0);
        for (ProcId p = 0; p < n; ++p) {
          const auto& fp = program.footprint(p);
          for (ProcId q = 0; q < n; ++q) {
            const auto& fq = program.footprint(q);
            const bool overlap =
                p == q ||
                std::find_first_of(fp.begin(), fp.end(), fq.begin(),
                                   fq.end()) != fp.end();
            if (overlap) cfg.fp_conflict[p] |= std::uint64_t{1} << q;
          }
        }
      }
    }

    std::atomic<std::uint64_t> budget{0};
    const std::uint32_t jobs = std::max<std::uint32_t>(1, options.jobs);
    if (jobs == 1) {
      SubtreeExplorer explorer{cfg, &budget, &tel};
      LocalResult lr = explorer.run(SubtreeRoot{
          {}, {}, options.preemption_bound, options.max_crashes});
      result.stop = lr.stop;
      result.executions = lr.executions;
      result.counterexample = std::move(lr.counterexample);
      result.message = std::move(lr.message);
      result.stats = std::move(lr.stats);
      result.stats.jobs_used = 1;
      result.stats.worker_executions = {result.executions};
    } else {
      ModelCheckStats frontier_stats;
      const std::uint32_t depth_cap =
          options.frontier_depth != 0 ? options.frontier_depth : 12;
      std::vector<SubtreeRoot> roots = build_frontier(
          cfg, frontier_stats, std::size_t{jobs} * 8, depth_cap);
      std::vector<LocalResult> locals(roots.size());
      std::vector<char> ran(roots.size(), 0);
      std::mutex pool_mu;
      std::vector<std::unique_ptr<SubtreeExplorer>> pool;
      run_ordered_jobs(roots.size(), jobs, [&](std::size_t i) {
        std::unique_ptr<SubtreeExplorer> explorer;
        {
          std::lock_guard<std::mutex> lk{pool_mu};
          if (!pool.empty()) {
            explorer = std::move(pool.back());
            pool.pop_back();
          }
        }
        if (!explorer) {
          explorer = std::make_unique<SubtreeExplorer>(cfg, &budget, &tel);
        }
        locals[i] = explorer->run(roots[i]);
        ran[i] = 1;
        const bool keep_going = locals[i].stop == StopReason::kComplete;
        std::lock_guard<std::mutex> lk{pool_mu};
        pool.push_back(std::move(explorer));
        return keep_going;
      });
      // Deterministic merge in root (= global DFS) order: the pool
      // guarantees every root below the smallest stopping index ran.
      result.stats = frontier_stats;
      std::size_t fail_idx = SIZE_MAX;
      bool budget_hit = false;
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < roots.size(); ++i) {
        if (!ran[i]) continue;
        accumulate(result.stats, locals[i].stats);
        total += locals[i].executions;
        if (locals[i].stop == StopReason::kCounterexample &&
            fail_idx == SIZE_MAX) {
          fail_idx = i;
        }
        budget_hit = budget_hit || locals[i].stop == StopReason::kBudget;
      }
      if (fail_idx != SIZE_MAX) {
        result.stop = StopReason::kCounterexample;
        result.counterexample = std::move(locals[fail_idx].counterexample);
        result.message = std::move(locals[fail_idx].message);
        // Count only executions at or before the failing subtree: those
        // roots all completed, so the count is reproducible.
        result.executions = 0;
        for (std::size_t i = 0; i <= fail_idx; ++i) {
          if (ran[i]) result.executions += locals[i].executions;
        }
      } else if (budget_hit) {
        result.stop = StopReason::kBudget;
        // Ticket reservation makes the total deterministic: exactly
        // max_executions leaves got tickets below the limit.
        result.executions = total;
      } else {
        result.stop = StopReason::kComplete;
        result.executions = total;
      }
      result.stats.frontier_roots = roots.size();
      result.stats.jobs_used = jobs;
      // pool holds every explorer back after the join; each maps ~1:1 to a
      // worker thread, so its lifetime execution count is the balance.
      for (const auto& e : pool) {
        result.stats.worker_executions.push_back(e->lifetime_executions());
      }
    }
  }

  // The single place ok/exhaustive are derived from the stop reason
  // (StopReason doc): budget cuts and context bounds forfeit
  // exhaustiveness; POR-reduced complete runs keep it (every pruned
  // schedule has an explored equivalent).
  result.ok = result.stop != StopReason::kCounterexample;
  result.exhaustive =
      result.stop == StopReason::kComplete &&
      options.preemption_bound == ModelCheckOptions::kUnbounded;
  result.stats.por_effective = por_effective;
  result.stats.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::string render_schedule(const Program& program,
                            const std::vector<ProcId>& schedule) {
  System sys{program};
  std::string out;
  for (const ProcId choice : schedule) {
    if (is_crash_choice(choice)) {
      const ProcId p = choice_proc(choice);
      if (!sys.crash(p)) {
        out += "<process p" + std::to_string(p) + " not crashable>\n";
        break;
      }
      out += "p" + std::to_string(p) + " CRASH\n";
      continue;
    }
    if (!sys.step(choice)) {
      out += "<process p" + std::to_string(choice) + " not steppable>\n";
      break;
    }
    out += sys.trace().back().to_string() + "\n";
  }
  return out;
}

}  // namespace ruco::sim
