#include "ruco/sim/model_checker.h"

#include <memory>

namespace ruco::sim {

namespace {

void apply_choice(System& sys, ProcId choice) {
  if (is_crash_choice(choice)) {
    sys.crash(choice_proc(choice));
  } else {
    sys.step(choice);
  }
}

struct Dfs {
  const Program& program;
  const Verdict& verdict;
  const ModelCheckOptions& options;
  ModelCheckResult result;
  std::vector<ProcId> prefix;

  // Returns false to stop exploration (failure found or budget exhausted).
  // `preemptions_left` implements iterative context bounding: continuing
  // the process that just ran -- or switching away from a completed or
  // crashed one -- is free; any other switch consumes budget.
  // `crashes_left` bounds the crash-choice fan-out (options.max_crashes).
  bool explore(std::uint32_t preemptions_left, std::uint32_t crashes_left) {
    if (options.max_executions != 0 &&
        result.executions >= options.max_executions) {
      result.exhaustive = false;
      return false;
    }
    System sys{program};
    for (const ProcId choice : prefix) apply_choice(sys, choice);

    std::vector<ProcId> ready;
    for (ProcId p = 0; p < sys.num_processes(); ++p) {
      if (sys.active(p)) ready.push_back(p);
    }
    if (ready.empty()) {
      ++result.executions;
      std::string diag = verdict(sys);
      if (!diag.empty()) {
        result.ok = false;
        result.counterexample = prefix;
        result.message = std::move(diag);
        return false;
      }
      return true;
    }
    if (prefix.size() >= options.max_depth) {
      result.ok = false;
      result.counterexample = prefix;
      result.message = "max_depth exceeded (non-terminating schedule?)";
      return false;
    }
    const bool last_still_ready =
        !prefix.empty() && !is_crash_choice(prefix.back()) &&
        sys.active(prefix.back());
    for (const ProcId p : ready) {
      const bool preempts = last_still_ready && p != prefix.back();
      if (preempts && preemptions_left == 0) continue;
      prefix.push_back(p);
      const bool keep_going =
          explore(preempts ? preemptions_left - 1 : preemptions_left,
                  crashes_left);
      prefix.pop_back();
      if (!keep_going) return false;
    }
    // Crash choices: fail any active process here.  Free of preemption
    // budget (see header); the crashed process leaves the ready set, so
    // the next step choice away from a crashed "last runner" is free too.
    if (crashes_left > 0) {
      for (const ProcId p : ready) {
        prefix.push_back(p | kCrashChoice);
        const bool keep_going = explore(preemptions_left, crashes_left - 1);
        prefix.pop_back();
        if (!keep_going) return false;
      }
    }
    return true;
  }
};

}  // namespace

ModelCheckResult model_check(const Program& program, const Verdict& verdict,
                             const ModelCheckOptions& options) {
  Dfs dfs{program, verdict, options, ModelCheckResult{}, {}};
  dfs.explore(options.preemption_bound, options.max_crashes);
  if (options.preemption_bound != ModelCheckOptions::kUnbounded) {
    // Bounded search covers a subset of schedules by design.
    dfs.result.exhaustive = false;
  }
  return dfs.result;
}

std::string render_schedule(const Program& program,
                            const std::vector<ProcId>& schedule) {
  System sys{program};
  std::string out;
  for (const ProcId choice : schedule) {
    if (is_crash_choice(choice)) {
      const ProcId p = choice_proc(choice);
      if (!sys.crash(p)) {
        out += "<process p" + std::to_string(p) + " not crashable>\n";
        break;
      }
      out += "p" + std::to_string(p) + " CRASH\n";
      continue;
    }
    if (!sys.step(choice)) {
      out += "<process p" + std::to_string(choice) + " not steppable>\n";
      break;
    }
    out += sys.trace().back().to_string() + "\n";
  }
  return out;
}

}  // namespace ruco::sim
