#include "ruco/wmm/litmus.h"

#include <utility>

#include "ruco/runtime/memorder.h"

namespace ruco::wmm {

namespace {

using std::memory_order_acquire;
using std::memory_order_relaxed;
using std::memory_order_release;
using std::memory_order_seq_cst;

// Store-buffering: both threads publish then read the other's flag.
// The weak outcome is both loads missing both stores: (0,0).
Litmus make_sb(std::string name, std::memory_order store_o,
               std::memory_order load_o, bool sc_outcomes) {
  Litmus lit;
  lit.name = std::move(name);
  lit.description = "store buffering (Dekker core)";
  auto x = lit.program.atomic<Value>("x", 0);
  auto y = lit.program.atomic<Value>("y", 0);
  lit.program.thread([=] {
    x.store(1, store_o);
    observe(y.load(load_o));
  });
  lit.program.thread([=] {
    y.store(1, store_o);
    observe(x.load(load_o));
  });
  // Joint tuples: (r0, r1, final x, final y).
  lit.allowed = {{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 1, 1}};
  if (!sc_outcomes) lit.allowed.push_back({0, 0, 1, 1});
  return lit;
}

// Message passing: data published, then flag; consumer reads flag then
// data.  The weak outcome is flag seen but data stale: (1,0).
Litmus make_mp(std::string name, std::memory_order data_o,
               std::memory_order flag_store_o, std::memory_order flag_load_o,
               bool ordered) {
  Litmus lit;
  lit.name = std::move(name);
  lit.description = "message passing (publish data, raise flag)";
  auto data = lit.program.atomic<Value>("data", 0);
  auto flag = lit.program.atomic<Value>("flag", 0);
  lit.program.thread([=] {
    data.store(1, data_o);
    flag.store(1, flag_store_o);
  });
  lit.program.thread([=] {
    observe(flag.load(flag_load_o));
    observe(data.load(data_o));
  });
  // Joint tuples: (r_flag, r_data, final data, final flag).
  lit.allowed = {{0, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1}};
  if (!ordered) lit.allowed.push_back({1, 0, 1, 1});
  return lit;
}

// IRIW: two writers, two readers observing the writes in opposite
// orders.  The weak outcome (1,0,1,0) needs the writes to propagate in
// different orders to the two readers.
Litmus make_iriw(std::string name, std::memory_order store_o,
                 std::memory_order load_o, bool sc_outcomes) {
  Litmus lit;
  lit.name = std::move(name);
  lit.description = "independent reads of independent writes";
  auto x = lit.program.atomic<Value>("x", 0);
  auto y = lit.program.atomic<Value>("y", 0);
  lit.program.thread([=] { x.store(1, store_o); });
  lit.program.thread([=] { y.store(1, store_o); });
  lit.program.thread([=] {
    observe(x.load(load_o));
    observe(y.load(load_o));
  });
  lit.program.thread([=] {
    observe(y.load(load_o));
    observe(x.load(load_o));
  });
  // Joint tuples: (r0, r1, r2, r3, final x, final y) -- everything but
  // the split-order observation is allowed even under SC.
  for (Value a = 0; a <= 1; ++a) {
    for (Value b = 0; b <= 1; ++b) {
      for (Value c = 0; c <= 1; ++c) {
        for (Value d = 0; d <= 1; ++d) {
          if (sc_outcomes && a == 1 && b == 0 && c == 1 && d == 0) continue;
          lit.allowed.push_back({a, b, c, d, 1, 1});
        }
      }
    }
  }
  return lit;
}

// 2+2W: opposing store pairs; the weak outcome is both locations ending
// on their *first* store, which needs a po/mo cycle SC forbids.
Litmus make_2plus2w(std::string name, std::memory_order store_o,
                    bool sc_outcomes) {
  Litmus lit;
  lit.name = std::move(name);
  lit.description = "2+2W (opposing store pairs)";
  auto x = lit.program.atomic<Value>("x", 0);
  auto y = lit.program.atomic<Value>("y", 0);
  lit.program.thread([=] {
    x.store(1, store_o);
    y.store(2, store_o);
  });
  lit.program.thread([=] {
    y.store(1, store_o);
    x.store(2, store_o);
  });
  // Joint tuples: (final x, final y).
  lit.allowed = {{1, 2}, {2, 1}, {2, 2}};
  if (!sc_outcomes) lit.allowed.push_back({1, 1});
  return lit;
}

// R: a store pair racing a store+load; the weak outcome correlates the
// mo-final value of y with a stale read of x.
Litmus make_r(std::string name, std::memory_order store_o,
              std::memory_order load_o, bool sc_outcomes) {
  Litmus lit;
  lit.name = std::move(name);
  lit.description = "R (store pair vs store+load)";
  auto x = lit.program.atomic<Value>("x", 0);
  auto y = lit.program.atomic<Value>("y", 0);
  lit.program.thread([=] {
    x.store(1, store_o);
    y.store(1, store_o);
  });
  lit.program.thread([=] {
    y.store(2, store_o);
    observe(x.load(load_o));
  });
  // Joint tuples: (r, final x, final y); weak outcome r=0 with y=2.
  lit.allowed = {{0, 1, 1}, {1, 1, 1}, {1, 1, 2}};
  if (!sc_outcomes) lit.allowed.push_back({0, 1, 2});
  return lit;
}

}  // namespace

std::vector<Litmus> classic_battery() {
  std::vector<Litmus> out;

  out.push_back(make_sb("SB+sc", memory_order_seq_cst, memory_order_seq_cst,
                        /*sc_outcomes=*/true));
  out.push_back(make_sb("SB+rel+acq", memory_order_release,
                        memory_order_acquire, /*sc_outcomes=*/false));

  out.push_back(make_mp("MP+rel+acq", memory_order_relaxed,
                        memory_order_release, memory_order_acquire,
                        /*ordered=*/true));
  out.push_back(make_mp("MP+rlx", memory_order_relaxed, memory_order_relaxed,
                        memory_order_relaxed, /*ordered=*/false));

  {
    // LB: RC11 forbids (1,1) at *every* order -- no po-future reads.
    Litmus lit;
    lit.name = "LB+rlx";
    lit.description = "load buffering (porf acyclicity)";
    auto x = lit.program.atomic<Value>("x", 0);
    auto y = lit.program.atomic<Value>("y", 0);
    lit.program.thread([=] {
      observe(x.load(memory_order_relaxed));
      y.store(1, memory_order_relaxed);
    });
    lit.program.thread([=] {
      observe(y.load(memory_order_relaxed));
      x.store(1, memory_order_relaxed);
    });
    lit.allowed = {{0, 0, 1, 1}, {0, 1, 1, 1}, {1, 0, 1, 1}};
    out.push_back(std::move(lit));
  }

  {
    // CoRR: read-read coherence -- two reads of one location may not
    // observe its modification order backwards.
    Litmus lit;
    lit.name = "CoRR+rlx";
    lit.description = "read-read coherence";
    auto x = lit.program.atomic<Value>("x", 0);
    lit.program.thread([=] { x.store(1, memory_order_relaxed); });
    lit.program.thread([=] {
      observe(x.load(memory_order_relaxed));
      observe(x.load(memory_order_relaxed));
    });
    lit.allowed = {{0, 0, 1}, {0, 1, 1}, {1, 1, 1}};
    out.push_back(std::move(lit));
  }

  out.push_back(make_iriw("IRIW+sc", memory_order_seq_cst,
                          memory_order_seq_cst, /*sc_outcomes=*/true));
  out.push_back(make_iriw("IRIW+rel+acq", memory_order_release,
                          memory_order_acquire, /*sc_outcomes=*/false));

  out.push_back(make_2plus2w("2+2W+sc", memory_order_seq_cst,
                             /*sc_outcomes=*/true));
  out.push_back(make_2plus2w("2+2W+rlx", memory_order_relaxed,
                             /*sc_outcomes=*/false));

  out.push_back(make_r("R+sc", memory_order_seq_cst, memory_order_seq_cst,
                       /*sc_outcomes=*/true));
  out.push_back(make_r("R+rel+acq", memory_order_release,
                       memory_order_acquire, /*sc_outcomes=*/false));

  {
    // SB with seq_cst fences between relaxed accesses: psc_F must
    // restore the SC outcome set.
    Litmus lit;
    lit.name = "SB+rlx+scfences";
    lit.description = "store buffering fenced by seq_cst fences (psc_F)";
    auto x = lit.program.atomic<Value>("x", 0);
    auto y = lit.program.atomic<Value>("y", 0);
    lit.program.thread([=] {
      x.store(1, memory_order_relaxed);
      fence(memory_order_seq_cst);
      observe(y.load(memory_order_relaxed));
    });
    lit.program.thread([=] {
      y.store(1, memory_order_relaxed);
      fence(memory_order_seq_cst);
      observe(x.load(memory_order_relaxed));
    });
    lit.allowed = {{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 1, 1}};
    out.push_back(std::move(lit));
  }

  {
    // Duelling strong CASes: ATOMICITY forces exactly one winner, and
    // the loser must observe the winner's value.
    Litmus lit;
    lit.name = "CAS-duel+sc";
    lit.description = "CAS atomicity: exactly one winner";
    auto x = lit.program.atomic<Value>("x", 0);
    lit.program.thread([=] {
      Value e = 0;
      observe(x.compare_exchange_strong(e, 1, memory_order_seq_cst,
                                        memory_order_seq_cst)
                  ? 1
                  : 0);
    });
    lit.program.thread([=] {
      Value e = 0;
      observe(x.compare_exchange_strong(e, 2, memory_order_seq_cst,
                                        memory_order_seq_cst)
                  ? 1
                  : 0);
    });
    lit.allowed = {{1, 0, 1}, {0, 1, 2}};
    out.push_back(std::move(lit));
  }

  return out;
}

std::vector<Litmus> handtuned_battery() {
#if defined(RUCO_SEQCST_ATOMICS)
  constexpr bool sc = true;
#else
  constexpr bool sc = false;
#endif
  using runtime::mo_acquire;
  using runtime::mo_relaxed;
  using runtime::mo_release;

  std::vector<Litmus> out;

  out.push_back(make_sb("SB+mo", mo_release, mo_acquire, sc));
  out.back().weak_outcome = {{0, 0, 1, 1}};

  // MP at the production orders keeps its SC outcome set in *both*
  // configurations: release/acquire is exactly what MP needs.
  out.push_back(make_mp("MP+mo", mo_relaxed, mo_release, mo_acquire,
                        /*ordered=*/true));

  out.push_back(make_iriw("IRIW+mo", mo_release, mo_acquire, sc));
  out.back().weak_outcome = {{1, 0, 1, 0, 1, 1}};

  out.push_back(make_2plus2w("2+2W+mo", mo_release, sc));
  out.back().weak_outcome = {{1, 1}};

  out.push_back(make_r("R+mo", mo_release, mo_acquire, sc));
  out.back().weak_outcome = {{0, 1, 2}};

  return out;
}

}  // namespace ruco::wmm
