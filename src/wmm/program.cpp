#include "ruco/wmm/program.h"

#include <stdexcept>

namespace ruco::wmm {

namespace detail {

ThreadCtx*& current_ctx() {
  thread_local ThreadCtx* ctx = nullptr;
  return ctx;
}

OpResult ThreadCtx::issue(const OpDesc& desc) {
  if (cursor < script->size()) {
    const OpRecord& rec = (*script)[cursor];
    if (!(rec.desc == desc)) {
      throw std::logic_error{
          "wmm: thread body diverged from its replay script; bodies must "
          "be deterministic functions of their shared-memory reads"};
    }
    ++cursor;
    return rec.result;
  }
  pending = desc;
  paused = true;
  throw PauseSignal{};
}

OpResult issue_op(const OpDesc& desc) {
  ThreadCtx* ctx = current_ctx();
  if (ctx == nullptr) {
    throw std::logic_error{
        "wmm: Atomic/Plain operation outside an explorer-run thread body"};
  }
  return ctx->issue(desc);
}

void record_observation(Value v) {
  ThreadCtx* ctx = current_ctx();
  if (ctx == nullptr) {
    throw std::logic_error{"wmm: observe() outside a thread body"};
  }
  if (ctx->observations != nullptr) ctx->observations->push_back(v);
}

namespace {

// RAII scope installing a ThreadCtx as the thread-local current context.
struct CtxScope {
  explicit CtxScope(ThreadCtx* ctx) { current_ctx() = ctx; }
  ~CtxScope() { current_ctx() = nullptr; }
  CtxScope(const CtxScope&) = delete;
  CtxScope& operator=(const CtxScope&) = delete;
};

}  // namespace

}  // namespace detail

LocId Program::add_location(std::string name, Value init, bool atomic) {
  if (locs_.size() >= kMaxEvents) {
    throw std::invalid_argument{"wmm: too many locations"};
  }
  locs_.push_back(LocInfo{std::move(name), init, atomic});
  return static_cast<LocId>(locs_.size() - 1);
}

Program::ThreadStep Program::run_thread(
    ThreadId t, const std::vector<OpRecord>& script) const {
  detail::ThreadCtx ctx;
  ctx.script = &script;
  detail::CtxScope scope{&ctx};
  try {
    bodies_[t]();
  } catch (const PauseSignal&) {
    return ThreadStep{false, ctx.pending};
  }
  if (ctx.cursor != script.size()) {
    throw std::logic_error{
        "wmm: thread body completed without consuming its replay script"};
  }
  return ThreadStep{true, OpDesc{}};
}

std::vector<Value> Program::collect_observations(
    ThreadId t, const std::vector<OpRecord>& script) const {
  std::vector<Value> out;
  detail::ThreadCtx ctx;
  ctx.script = &script;
  ctx.observations = &out;
  detail::CtxScope scope{&ctx};
  bodies_[t]();  // completed thread: must not pause
  return out;
}

}  // namespace ruco::wmm
