#include "ruco/wmm/execution.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <stdexcept>

namespace ruco::wmm {

namespace {

constexpr std::uint64_t bit(EventId e) { return std::uint64_t{1} << e; }

// In-place transitive closure of a row-bitmask relation (Warshall over
// uint64 rows): after the call, r[i] is the set of events reachable from
// i in one or more steps.
void close(std::vector<std::uint64_t>& r) {
  const std::size_t n = r.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t row_k = r[k];
    for (std::size_t i = 0; i < n; ++i) {
      if ((r[i] >> k) & 1U) r[i] |= row_k;
    }
  }
}

// c = a ; b  (composition: c[i] = union of b[j] for j in a[i]).
std::vector<std::uint64_t> compose(const std::vector<std::uint64_t>& a,
                                   const std::vector<std::uint64_t>& b) {
  const std::size_t n = a.size();
  std::vector<std::uint64_t> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t m = a[i];
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(m));
      m &= m - 1;
      c[i] |= b[j];
    }
  }
  return c;
}

void merge(std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] |= b[i];
}

bool has_reflexive(const std::vector<std::uint64_t>& reach) {
  for (std::size_t i = 0; i < reach.size(); ++i) {
    if ((reach[i] >> i) & 1U) return true;
  }
  return false;
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kInit: return "init";
    case EventKind::kLoad: return "load";
    case EventKind::kStore: return "store";
    case EventKind::kRmw: return "rmw";
    case EventKind::kFence: return "fence";
    case EventKind::kPlainLoad: return "plain-load";
    case EventKind::kPlainStore: return "plain-store";
  }
  return "?";
}

std::string to_string(std::memory_order order) {
  switch (order) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

Graph::Graph(const std::vector<LocInfo>* locs) : locs_(locs) {
  if (locs_->size() > kMaxEvents) {
    throw std::invalid_argument{"wmm: too many locations"};
  }
  stores_.resize(locs_->size());
  for (LocId l = 0; l < locs_->size(); ++l) {
    Event e;
    e.id = static_cast<EventId>(events_.size());
    e.thread = kInitThread;
    e.index = l;
    e.kind = EventKind::kInit;
    e.loc = l;
    e.value_written = (*locs_)[l].init;
    init_mask_ |= bit(e.id);
    hb_.push_back(0);  // init events have no predecessors
    stores_[l].push_back(e.id);
    events_.push_back(e);
  }
}

Value Graph::final_value(LocId loc) const {
  return events_[stores_[loc].back()].value_written;
}

std::vector<Value> Graph::mo_values(LocId loc) const {
  std::vector<Value> out;
  out.reserve(stores_[loc].size());
  for (EventId s : stores_[loc]) out.push_back(events_[s].value_written);
  return out;
}

EventId Graph::rmw_reader(LocId loc, EventId store) const {
  for (EventId s : stores_[loc]) {
    if (events_[s].kind == EventKind::kRmw && events_[s].rf == store) return s;
  }
  return kNoEvent;
}

bool Graph::store_pos_ok(LocId loc, std::size_t pos) const {
  const auto& mo = stores_[loc];
  if (pos == 0 || pos > mo.size()) return false;  // never before init
  if (pos < mo.size()) {
    // Inserting here would place the new store between mo[pos-1] and
    // mo[pos]; forbidden when mo[pos] is an RMW reading mo[pos-1]
    // (ATOMICITY requires RMWs adjacent to their source).
    const Event& succ = events_[mo[pos]];
    if (succ.kind == EventKind::kRmw && succ.rf == mo[pos - 1]) return false;
  }
  return true;
}

EventId Graph::new_event(ThreadId t, std::uint32_t index, EventKind kind,
                         LocId loc, std::memory_order order) {
  if (!can_add_event()) {
    throw std::runtime_error{
        "wmm: program exceeds the 64-event graph budget; shrink the litmus"};
  }
  Event e;
  e.id = static_cast<EventId>(events_.size());
  e.thread = t;
  e.index = index;
  e.kind = kind;
  e.loc = loc;
  e.order = order;
  seed_hb(e);
  events_.push_back(e);
  return e.id;
}

void Graph::seed_hb(Event& e) {
  // sb from the thread's previous event, plus "init before everything".
  std::uint64_t mask = init_mask_;
  if (e.thread >= thread_last_.size()) {
    thread_last_.resize(e.thread + 1, kNoEvent);
  }
  const EventId prev = thread_last_[e.thread];
  if (prev != kNoEvent) mask |= hb_[prev] | bit(prev);
  thread_last_[e.thread] = e.id;
  hb_.push_back(mask);
}

std::uint64_t Graph::release_heads(EventId store) const {
  // Walk the release-sequence chain backwards from `store` (through the
  // RMWs it extends) and collect every synchronizes-with source an
  // acquire of `store` picks up: release-or-stronger chain members, plus
  // release fences sequenced before a chain member in its own thread.
  std::uint64_t heads = 0;
  EventId cur = store;
  while (cur != kNoEvent) {
    const Event& w = events_[cur];
    if (w.kind == EventKind::kInit) break;
    if (is_release_order(w.order)) heads |= bit(cur);
    for (const Event& f : events_) {
      if (f.kind == EventKind::kFence && f.thread == w.thread &&
          f.index < w.index && is_release_order(f.order)) {
        heads |= bit(f.id);
      }
    }
    cur = (w.kind == EventKind::kRmw) ? w.rf : kNoEvent;
  }
  return heads;
}

void Graph::add_acquire_edges(Event& e) {
  if (e.rf == kNoEvent) return;
  const std::uint64_t heads = release_heads(e.rf);
  if (heads == 0) return;
  // Acquire read: sw directly.  Relaxed read: an acquire fence sequenced
  // *after* it in the same thread will pick the edge up -- handled when
  // that fence is created (add_fence).
  if (!is_acquire_order(e.order)) return;
  std::uint64_t m = heads;
  while (m != 0) {
    const unsigned h = static_cast<unsigned>(__builtin_ctzll(m));
    m &= m - 1;
    hb_[e.id] |= hb_[h] | bit(h);
  }
}

EventId Graph::add_load(ThreadId t, std::uint32_t index, LocId loc,
                        std::memory_order order, EventId rf, bool cas_fail) {
  const EventId id = new_event(t, index, EventKind::kLoad, loc, order);
  Event& e = events_[id];
  e.rf = rf;
  e.cas_fail = cas_fail;
  e.value_read = events_[rf].value_written;
  add_acquire_edges(e);
  return id;
}

EventId Graph::add_store(ThreadId t, std::uint32_t index, LocId loc,
                         std::memory_order order, Value v, std::size_t mo_pos) {
  const EventId id = new_event(t, index, EventKind::kStore, loc, order);
  events_[id].value_written = v;
  auto& mo = stores_[loc];
  mo.insert(mo.begin() + static_cast<std::ptrdiff_t>(mo_pos), id);
  return id;
}

EventId Graph::add_rmw(ThreadId t, std::uint32_t index, LocId loc,
                       std::memory_order order, EventId rf, Value desired) {
  const EventId id = new_event(t, index, EventKind::kRmw, loc, order);
  Event& e = events_[id];
  e.rf = rf;
  e.value_read = events_[rf].value_written;
  e.value_written = desired;
  add_acquire_edges(e);
  // ATOMICITY by construction: the RMW's write goes immediately after its
  // read source in mo, and store_pos_ok() keeps later inserts out.
  auto& mo = stores_[loc];
  for (std::size_t i = 0; i < mo.size(); ++i) {
    if (mo[i] == rf) {
      mo.insert(mo.begin() + static_cast<std::ptrdiff_t>(i) + 1, id);
      return id;
    }
  }
  throw std::logic_error{"wmm: rmw source not in modification order"};
}

EventId Graph::add_fence(ThreadId t, std::uint32_t index,
                         std::memory_order order) {
  const EventId id = new_event(t, index, EventKind::kFence, 0, order);
  if (is_acquire_order(order)) {
    // Acquire fence: synchronizes-with the release heads of every store
    // read by a sequenced-before atomic load of this thread.
    for (const Event& p : events_) {
      if (p.thread != t || p.index >= index || p.rf == kNoEvent) continue;
      if (p.kind != EventKind::kLoad && p.kind != EventKind::kRmw) continue;
      std::uint64_t m = release_heads(p.rf);
      while (m != 0) {
        const unsigned h = static_cast<unsigned>(__builtin_ctzll(m));
        m &= m - 1;
        hb_[id] |= hb_[h] | bit(h);
      }
    }
  }
  return id;
}

EventId Graph::add_plain_store(ThreadId t, std::uint32_t index, LocId loc,
                               Value v) {
  const EventId id = new_event(t, index, EventKind::kPlainStore, loc,
                               std::memory_order_relaxed);
  events_[id].value_written = v;
  stores_[loc].push_back(id);  // creation order only; plain locs have no mo
  return id;
}

EventId Graph::add_plain_load(ThreadId t, std::uint32_t index, LocId loc) {
  const EventId id = new_event(t, index, EventKind::kPlainLoad, loc,
                               std::memory_order_relaxed);
  Event& e = events_[id];
  // A plain load's hb past is fixed at creation (sw sources always
  // precede it), so the set of visible writes is already final: take the
  // hb-maximal one.  If two visible writes are hb-unordered that is a
  // write-write race and race() reports it; the value is then arbitrary.
  const std::uint64_t visible = hb_[id];
  EventId best = kNoEvent;
  for (EventId w : stores_[loc]) {
    if ((visible & bit(w)) == 0) continue;
    if (best == kNoEvent || (hb_[w] & bit(best)) != 0) best = w;
  }
  if (best == kNoEvent) {
    throw std::logic_error{"wmm: plain load with no visible write"};
  }
  e.rf = best;
  e.value_read = events_[best].value_written;
  return id;
}

bool Graph::consistent() const {
  const std::size_t n = events_.size();

  // eco = (rf | mo | fr)+ as reachability rows.
  std::vector<std::uint64_t> eco(n, 0);
  for (const Event& e : events_) {
    if (e.rf != kNoEvent && e.kind != EventKind::kPlainLoad) {
      eco[e.rf] |= bit(e.id);  // rf
    }
  }
  for (LocId l = 0; l < locs_->size(); ++l) {
    if (!(*locs_)[l].atomic) continue;
    const auto& mo = stores_[l];
    for (std::size_t i = 0; i < mo.size(); ++i) {
      for (std::size_t j = i + 1; j < mo.size(); ++j) {
        eco[mo[i]] |= bit(mo[j]);  // mo
      }
    }
  }
  std::vector<std::uint64_t> fr(n, 0);
  for (const Event& e : events_) {
    if (e.rf == kNoEvent || e.kind == EventKind::kPlainLoad) continue;
    const auto& mo = stores_[e.loc];
    bool after = false;
    for (EventId w : mo) {
      if (after && w != e.id) fr[e.id] |= bit(w);  // fr = rf^-1 ; mo \ id
      if (w == e.rf) after = true;
    }
  }
  merge(eco, fr);
  close(eco);

  // COHERENCE: irreflexive(hb ; eco?).  hb itself is irreflexive by
  // construction, so check only (hb ; eco): some y with an event both
  // hb-before y and eco-reachable from y.
  for (std::size_t y = 0; y < n; ++y) {
    if ((hb_[y] & eco[y]) != 0) return false;
  }

  // ATOMICITY: the explorer constructs RMWs adjacent to their sources
  // and guards later inserts, but re-assert to keep the checker honest.
  for (const Event& e : events_) {
    if (e.kind != EventKind::kRmw) continue;
    const auto& mo = stores_[e.loc];
    bool adjacent = false;
    for (std::size_t i = 0; i + 1 < mo.size(); ++i) {
      if (mo[i] == e.rf && mo[i + 1] == e.id) adjacent = true;
    }
    if (!adjacent) return false;
  }

  // SC: acyclic(psc_base | psc_F), RC11 definitions.
  auto is_sc_access = [&](const Event& e) {
    return e.order == std::memory_order_seq_cst &&
           e.kind != EventKind::kFence && e.kind != EventKind::kInit;
  };
  auto is_sc_fence = [&](const Event& e) {
    return e.kind == EventKind::kFence &&
           e.order == std::memory_order_seq_cst;
  };
  bool any_sc = false;
  for (const Event& e : events_) {
    if (is_sc_access(e) || is_sc_fence(e)) any_sc = true;
  }
  if (!any_sc) return true;

  std::vector<std::uint64_t> sb(n, 0);
  for (const Event& a : events_) {
    for (const Event& b : events_) {
      if (a.thread != kInitThread && a.thread == b.thread &&
          a.index < b.index) {
        sb[a.id] |= bit(b.id);
      }
    }
  }
  std::vector<std::uint64_t> hbm(n, 0);  // hb as forward reachability
  for (std::size_t y = 0; y < n; ++y) {
    std::uint64_t m = hb_[y];
    while (m != 0) {
      const unsigned x = static_cast<unsigned>(__builtin_ctzll(m));
      m &= m - 1;
      hbm[x] |= bit(static_cast<EventId>(y));
    }
  }
  auto same_loc = [&](const Event& a, const Event& b) {
    return a.has_loc() && b.has_loc() && a.loc == b.loc &&
           (*locs_)[a.loc].atomic;
  };
  std::vector<std::uint64_t> sbneq(n, 0), hbloc(n, 0);
  for (const Event& a : events_) {
    std::uint64_t m = sb[a.id];
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(m));
      m &= m - 1;
      if (!same_loc(a, events_[j])) sbneq[a.id] |= bit(j);
    }
    m = hbm[a.id];
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(m));
      m &= m - 1;
      if (same_loc(a, events_[j])) hbloc[a.id] |= bit(j);
    }
  }
  // scb = sb | sb|!=loc ; hb ; sb|!=loc | hb|loc | mo | fr.
  std::vector<std::uint64_t> scb = sb;
  merge(scb, compose(sbneq, compose(hbm, sbneq)));
  merge(scb, hbloc);
  for (LocId l = 0; l < locs_->size(); ++l) {
    if (!(*locs_)[l].atomic) continue;
    const auto& mo = stores_[l];
    for (std::size_t i = 0; i < mo.size(); ++i) {
      for (std::size_t j = i + 1; j < mo.size(); ++j) {
        scb[mo[i]] |= bit(mo[j]);
      }
    }
  }
  merge(scb, fr);

  // psc_base = ([SC] | [F_SC];hb?) ; scb ; ([SC] | hb?;[F_SC]).
  std::vector<std::uint64_t> hbq = hbm;  // hb?
  for (std::size_t i = 0; i < n; ++i) hbq[i] |= bit(static_cast<EventId>(i));
  std::vector<std::uint64_t> a_out(n, 0), a_in(n, 0);
  for (const Event& e : events_) {
    if (is_sc_access(e)) {
      a_out[e.id] |= bit(e.id);
      a_in[e.id] |= bit(e.id);
    }
    if (is_sc_fence(e)) {
      a_out[e.id] |= hbq[e.id];  // [F_SC] ; hb?
      // hb? ; [F_SC]: any x with hb?(x, fence) gets an in-edge to fence.
      for (std::size_t x = 0; x < n; ++x) {
        if ((hbq[x] & bit(e.id)) != 0) a_in[x] |= bit(e.id);
      }
    }
  }
  std::vector<std::uint64_t> psc = compose(a_out, compose(scb, a_in));

  // psc_F = [F_SC] ; (hb | hb;eco;hb) ; [F_SC].
  std::vector<std::uint64_t> hb_eco_hb = compose(hbm, compose(eco, hbm));
  merge(hb_eco_hb, hbm);
  for (const Event& a : events_) {
    if (!is_sc_fence(a)) continue;
    std::uint64_t m = hb_eco_hb[a.id];
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(m));
      m &= m - 1;
      if (is_sc_fence(events_[j])) psc[a.id] |= bit(j);
    }
  }
  close(psc);
  return !has_reflexive(psc);
}

std::optional<std::string> Graph::race() const {
  for (const Event& a : events_) {
    if (a.kind != EventKind::kPlainLoad && a.kind != EventKind::kPlainStore) {
      continue;
    }
    for (const Event& b : events_) {
      if (b.id <= a.id) continue;
      if (b.kind != EventKind::kPlainLoad && b.kind != EventKind::kPlainStore) {
        continue;
      }
      if (a.loc != b.loc || a.thread == b.thread) continue;
      if (a.kind == EventKind::kPlainLoad && b.kind == EventKind::kPlainLoad) {
        continue;
      }
      const bool ordered =
          (hb_[b.id] & bit(a.id)) != 0 || (hb_[a.id] & bit(b.id)) != 0;
      if (!ordered) {
        return "data race on plain location '" + (*locs_)[a.loc].name +
               "': " + label(a.id) + " and " + label(b.id) +
               " are unordered by happens-before";
      }
    }
  }
  return std::nullopt;
}

std::string Graph::signature() const {
  // Canonical order: init events first, then by (thread, index) -- the
  // same graph reached through different interleavings serialises
  // identically, which is what lets the DFS merge schedules.
  std::vector<EventId> order;
  order.reserve(events_.size());
  for (const Event& e : events_) order.push_back(e.id);
  std::sort(order.begin(), order.end(), [&](EventId x, EventId y) {
    const Event& a = events_[x];
    const Event& b = events_[y];
    const bool ai = a.thread == kInitThread;
    const bool bi = b.thread == kInitThread;
    if (ai != bi) return ai;
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.index < b.index;
  });
  std::vector<EventId> canon(events_.size(), kNoEvent);
  for (std::size_t i = 0; i < order.size(); ++i) {
    canon[order[i]] = static_cast<EventId>(i);
  }
  std::ostringstream out;
  for (EventId id : order) {
    const Event& e = events_[id];
    out << static_cast<int>(e.kind) << ',' << e.thread << ',' << e.loc << ','
        << static_cast<int>(e.order) << ',' << e.value_read << ','
        << e.value_written << ','
        << (e.rf == kNoEvent ? -1 : static_cast<long>(canon[e.rf])) << ','
        << e.cas_fail << ';';
  }
  for (const auto& mo : stores_) {
    out << '|';
    for (EventId s : mo) out << canon[s] << ',';
  }
  return out.str();
}

std::string Graph::label(EventId id) const {
  const Event& e = events_[id];
  if (e.thread == kInitThread) return "init(" + (*locs_)[e.loc].name + ")";
  return "T" + std::to_string(e.thread) + "." + std::to_string(e.index);
}

std::string Graph::render() const {
  std::ostringstream out;
  std::uint32_t max_thread = 0;
  for (const Event& e : events_) {
    if (e.thread != kInitThread && e.thread + 1 > max_thread) {
      max_thread = e.thread + 1;
    }
  }
  for (ThreadId t = 0; t < max_thread; ++t) {
    out << "thread T" << t << ":\n";
    for (const Event& e : events_) {
      if (e.thread != t) continue;
      out << "  " << label(e.id) << ": " << to_string(e.kind);
      if (e.has_loc()) out << ' ' << (*locs_)[e.loc].name;
      if (e.is_write()) out << '=' << e.value_written;
      if (e.is_read() && e.kind != EventKind::kRmw) {
        out << "->" << e.value_read;
      }
      if (e.kind == EventKind::kRmw) {
        out << " (read " << e.value_read << ")";
      }
      if (e.cas_fail) out << " (failed cas)";
      if (e.kind != EventKind::kPlainLoad && e.kind != EventKind::kPlainStore) {
        out << " [" << to_string(e.order) << ']';
      }
      if (e.rf != kNoEvent) out << " rf=" << label(e.rf);
      out << '\n';
    }
  }
  for (LocId l = 0; l < locs_->size(); ++l) {
    out << ((*locs_)[l].atomic ? "mo(" : "writes(") << (*locs_)[l].name
        << "):";
    for (EventId s : stores_[l]) {
      out << ' ' << label(s) << ':' << events_[s].value_written;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ruco::wmm
