#include "ruco/wmm/explore.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace ruco::wmm {

namespace {

using Scripts = std::vector<std::vector<OpRecord>>;

class Search {
 public:
  Search(const Program& program, const ExploreOptions& options)
      : prog_{program}, opts_{options} {}

  ExploreResult run() {
    Graph root{&prog_.locations()};
    Scripts scripts(prog_.num_threads());
    visit(root, scripts);
    return std::move(result_);
  }

 private:
  void visit(const Graph& g, Scripts& scripts) {
    if (aborted_) return;
    if (!seen_states_.insert(g.signature()).second) return;
    if (++result_.states > opts_.max_states) {
      result_.complete = false;
      aborted_ = true;
      return;
    }
    bool all_done = true;
    for (ThreadId t = 0; t < prog_.num_threads(); ++t) {
      const Program::ThreadStep step = prog_.run_thread(t, scripts[t]);
      if (step.completed) continue;
      all_done = false;
      expand(g, scripts, t, step.op);
      if (aborted_) return;
    }
    if (all_done) finish(g, scripts);
  }

  void expand(const Graph& g, Scripts& scripts, ThreadId t,
              const OpDesc& op) {
    const auto index = static_cast<std::uint32_t>(scripts[t].size());
    switch (op.kind) {
      case EventKind::kLoad: {
        for (EventId s : g.stores(op.loc)) {
          Graph child = g;
          child.add_load(t, index, op.loc, op.order, s, false);
          descend(child, scripts, t,
                  {op, {g.events()[s].value_written, false}});
        }
        break;
      }
      case EventKind::kRmw: {
        for (EventId s : g.stores(op.loc)) {
          const Value v = g.events()[s].value_written;
          Graph child = g;
          if (v == op.expected) {
            // A strong CAS that reads its expected value must succeed,
            // so it must be mo-adjacent to the source; if another RMW
            // already reads `s` this rf choice has no consistent
            // completion at all.
            if (g.rmw_reader(op.loc, s) != kNoEvent) continue;
            child.add_rmw(t, index, op.loc, op.order, s, op.store_value);
            descend(child, scripts, t, {op, {v, true}});
          } else {
            child.add_load(t, index, op.loc, op.fail_order, s, true);
            descend(child, scripts, t, {op, {v, false}});
          }
        }
        break;
      }
      case EventKind::kStore: {
        const std::size_t slots = g.stores(op.loc).size();
        for (std::size_t pos = 1; pos <= slots; ++pos) {
          if (!g.store_pos_ok(op.loc, pos)) continue;
          Graph child = g;
          child.add_store(t, index, op.loc, op.order, op.store_value, pos);
          descend(child, scripts, t, {op, {}});
        }
        break;
      }
      case EventKind::kFence: {
        Graph child = g;
        child.add_fence(t, index, op.order);
        descend(child, scripts, t, {op, {}});
        break;
      }
      case EventKind::kPlainStore: {
        Graph child = g;
        child.add_plain_store(t, index, op.loc, op.store_value);
        descend(child, scripts, t, {op, {}});
        break;
      }
      case EventKind::kPlainLoad: {
        Graph child = g;
        const EventId e = child.add_plain_load(t, index, op.loc);
        descend(child, scripts, t,
                {op, {child.events()[e].value_read, false}});
        break;
      }
      case EventKind::kInit:
        throw std::logic_error{"wmm: body issued an init event"};
    }
  }

  void descend(const Graph& child, Scripts& scripts, ThreadId t,
               OpRecord record) {
    if (!child.consistent()) return;  // silent prune: not an execution
    if (auto racy = child.race()) {
      report("data-race", *racy, child);
      return;  // a racy program has undefined behaviour; stop this branch
    }
    if (aborted_) return;
    scripts[t].push_back(std::move(record));
    visit(child, scripts);
    scripts[t].pop_back();
  }

  void finish(const Graph& g, const Scripts& scripts) {
    ++result_.executions;
    std::vector<Value> obs;
    for (ThreadId t = 0; t < prog_.num_threads(); ++t) {
      const auto thread_obs = prog_.collect_observations(t, scripts[t]);
      obs.insert(obs.end(), thread_obs.begin(), thread_obs.end());
    }
    std::vector<Value> finals;
    for (LocId l = 0; l < g.locations().size(); ++l) {
      finals.push_back(g.final_value(l));
    }
    std::vector<Value> joint = obs;
    joint.insert(joint.end(), finals.begin(), finals.end());
    result_.outcomes.insert(std::move(obs));
    result_.final_states.insert(std::move(finals));
    result_.joint.insert(std::move(joint));
    if (opts_.invariant) {
      const std::string msg = opts_.invariant(g);
      if (!msg.empty()) report("invariant", msg, g);
    }
  }

  void report(const std::string& kind, const std::string& message,
              const Graph& g) {
    ++result_.violation_count;
    if (result_.violations.size() < opts_.max_violations) {
      result_.violations.push_back(Violation{kind, message, g.render()});
    }
    if (result_.violation_count >= opts_.max_violations) {
      aborted_ = true;
      result_.complete = false;
    }
  }

  const Program& prog_;
  const ExploreOptions& opts_;
  ExploreResult result_;
  std::unordered_set<std::string> seen_states_;
  bool aborted_ = false;
};

}  // namespace

ExploreResult explore(const Program& program, const ExploreOptions& options) {
  Search search{program, options};
  return search.run();
}

namespace {

// Interleaving-SC reference: one flat memory, step any live thread.
class ScSearch {
 public:
  explicit ScSearch(const Program& program) : prog_{program} {
    for (const LocInfo& l : prog_.locations()) memory_.push_back(l.init);
  }

  ScResult run() {
    Scripts scripts(prog_.num_threads());
    visit(scripts);
    return std::move(result_);
  }

 private:
  std::string state_key(const Scripts& scripts) const {
    std::ostringstream out;
    for (Value v : memory_) out << v << ',';
    for (const auto& script : scripts) {
      out << '|';
      for (const OpRecord& r : script) {
        out << static_cast<int>(r.desc.kind) << ':' << r.result.value << ':'
            << r.result.cas_ok << ';';
      }
    }
    return out.str();
  }

  void visit(Scripts& scripts) {
    if (!seen_.insert(state_key(scripts)).second) return;
    bool all_done = true;
    for (ThreadId t = 0; t < prog_.num_threads(); ++t) {
      const Program::ThreadStep step = prog_.run_thread(t, scripts[t]);
      if (step.completed) continue;
      all_done = false;
      apply(scripts, t, step.op);
    }
    if (all_done) finish(scripts);
  }

  void apply(Scripts& scripts, ThreadId t, const OpDesc& op) {
    OpResult res;
    Value saved = 0;
    bool wrote = false;
    switch (op.kind) {
      case EventKind::kLoad:
      case EventKind::kPlainLoad:
        res.value = memory_[op.loc];
        break;
      case EventKind::kStore:
      case EventKind::kPlainStore:
        saved = memory_[op.loc];
        wrote = true;
        memory_[op.loc] = op.store_value;
        break;
      case EventKind::kRmw:
        res.value = memory_[op.loc];
        res.cas_ok = memory_[op.loc] == op.expected;
        if (res.cas_ok) {
          saved = memory_[op.loc];
          wrote = true;
          memory_[op.loc] = op.store_value;
        }
        break;
      case EventKind::kFence:
        break;  // SC interleavings: fences are no-ops
      case EventKind::kInit:
        throw std::logic_error{"wmm: body issued an init event"};
    }
    scripts[t].push_back(OpRecord{op, res});
    visit(scripts);
    scripts[t].pop_back();
    if (wrote) memory_[op.loc] = saved;
  }

  void finish(const Scripts& scripts) {
    ++result_.executions;
    std::vector<Value> obs;
    for (ThreadId t = 0; t < prog_.num_threads(); ++t) {
      const auto thread_obs = prog_.collect_observations(t, scripts[t]);
      obs.insert(obs.end(), thread_obs.begin(), thread_obs.end());
    }
    std::vector<Value> joint = obs;
    joint.insert(joint.end(), memory_.begin(), memory_.end());
    result_.outcomes.insert(std::move(obs));
    result_.final_states.insert(memory_);
    result_.joint.insert(std::move(joint));
  }

  const Program& prog_;
  std::vector<Value> memory_;
  ScResult result_;
  std::unordered_set<std::string> seen_;
};

}  // namespace

ScResult explore_sc(const Program& program) {
  ScSearch search{program};
  return search.run();
}

}  // namespace ruco::wmm
