#include "ruco/wmm/kernels.h"

#include <sstream>
#include <utility>

namespace ruco::wmm {

namespace {

// Invariant helper: every plain load in the graph observed the value
// its location publishes (42 for F-style fields, 9 for G, 1 for payload
// versions) -- a mismatch is a torn/stale read that slipped past the
// race detector, which by construction cannot happen; the race detector
// itself reports the interesting executions.  Kept as a belt-and-braces
// second condition.
std::string check_plain_reads(const Graph& g, LocId loc, Value expected) {
  for (const Event& e : g.events()) {
    if (e.kind != EventKind::kPlainLoad || e.loc != loc) continue;
    if (e.value_read != expected) {
      std::ostringstream out;
      out << "stale plain read of '" << g.locations()[loc].name << "': got "
          << e.value_read << ", published value is " << expected;
      return out.str();
    }
  }
  return "";
}

std::string check_monotone(const Graph& g, LocId loc) {
  const auto vals = g.mo_values(loc);
  for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
    if (vals[i + 1] < vals[i]) {
      std::ostringstream out;
      out << "monotonicity regression on '" << g.locations()[loc].name
          << "': modification order writes " << vals[i] << " then "
          << vals[i + 1];
      return out.str();
    }
  }
  return "";
}

}  // namespace

Kernel make_propagate_counter_kernel(maxreg::RefreshPolicy policy,
                                     const PropagateOrders& o) {
  const bool conditional = policy == maxreg::RefreshPolicy::kConditional;
  Kernel k;
  k.name = conditional ? "propagate-counter/conditional"
                       : "propagate-counter/always-twice";
  k.description =
      "propagate_twice on a 2-leaf tree, two concurrent increments";
  auto node = k.program.atomic<Value>("node", 0);  // loc 0
  auto l0 = k.program.atomic<Value>("l0", 0);      // loc 1
  auto l1 = k.program.atomic<Value>("l1", 0);      // loc 2
  // One writer per leaf: store the increment, then the propagate loop
  // transcribed from ruco/maxreg/propagate.h (combine = sum).
  auto writer = [=](Atomic<Value> leaf) {
    return [=] {
      leaf.store(1, o.leaf_store);
      for (int round = 0; round < 2; ++round) {
        Value old_v = node.load(o.node_load);
        const Value lv = l0.load(o.child_load);
        const Value rv = l1.load(o.child_load);
        const Value nv = lv + rv;
        if (conditional && nv == old_v) break;  // no-change skip
        if (node.compare_exchange_strong(old_v, nv, o.cas_ok, o.cas_fail) &&
            conditional) {
          break;  // won CAS: inputs read after our update, node covers us
        }
      }
    };
  };
  k.program.thread(writer(l0));
  k.program.thread(writer(l1));
  k.invariant = [](const Graph& g) -> std::string {
    if (auto msg = check_monotone(g, 0); !msg.empty()) return msg;
    if (g.final_value(0) != 2) {
      std::ostringstream out;
      out << "lost increment: final node value " << g.final_value(0)
          << ", expected 2";
      return out.str();
    }
    return "";
  };
  return k;
}

Kernel make_propagate_snapshot_kernel(const PropagateOrders& o) {
  Kernel k;
  k.name = "propagate-snapshot";
  k.description =
      "propagation over pointer-carrying leaves: payload published "
      "before the leaf store, dereferenced behind the child load";
  auto node = k.program.atomic<Value>("node", 0);  // loc 0
  auto l0 = k.program.atomic<Value>("l0", 0);      // loc 1
  auto l1 = k.program.atomic<Value>("l1", 0);      // loc 2
  auto p0 = k.program.plain<Value>("p0", 0);       // loc 3
  auto p1 = k.program.plain<Value>("p1", 0);       // loc 4
  // Single refresh round: the publication property under test does not
  // need the double-refresh (that coverage is the counter kernel's).
  auto writer = [=](Plain<Value> pay, Atomic<Value> leaf) {
    return [=] {
      pay.store(1);               // the "snapshot view" behind the leaf
      leaf.store(1, o.leaf_store);
      Value old_v = node.load(o.node_load);
      const Value lv = l0.load(o.child_load);
      const Value rv = l1.load(o.child_load);
      if (lv == 1) observe(p0.load());  // dereference published views
      if (rv == 1) observe(p1.load());
      const Value nv = lv + rv;
      if (nv != old_v) {
        node.compare_exchange_strong(old_v, nv, o.cas_ok, o.cas_fail);
      }
    };
  };
  k.program.thread(writer(p0, l0));
  k.program.thread(writer(p1, l1));
  k.invariant = [](const Graph& g) -> std::string {
    if (auto msg = check_plain_reads(g, 3, 1); !msg.empty()) return msg;
    return check_plain_reads(g, 4, 1);
  };
  return k;
}

Kernel make_root_read_kernel(const PropagateOrders& o) {
  Kernel k;
  k.name = "root-read";
  k.description =
      "TreeMaxRegister read fast path: acquire root load justifies a "
      "plain read of data published before the install CAS";
  auto root = k.program.atomic<Value>("root", 0);  // loc 0
  auto leaf = k.program.atomic<Value>("leaf", 0);  // loc 1
  auto pay = k.program.plain<Value>("pay", 0);     // loc 2
  k.program.thread([=] {
    pay.store(1);
    leaf.store(1, o.leaf_store);
    Value old_v = root.load(o.node_load);
    const Value lv = leaf.load(o.child_load);
    if (lv != old_v) {
      root.compare_exchange_strong(old_v, lv, o.cas_ok, o.cas_fail);
    }
  });
  k.program.thread([=] {
    const Value v = root.load(o.root_read);
    observe(v);
    if (v == 1) observe(pay.load());
  });
  k.invariant = [](const Graph& g) -> std::string {
    return check_plain_reads(g, 2, 1);
  };
  return k;
}

Kernel make_leaf_handoff_kernel(const PropagateOrders& o) {
  Kernel k;
  k.name = "leaf-handoff";
  k.description =
      "leaf-store -> propagate handoff: a helper observes the released "
      "leaf and completes the propagation for the writer";
  auto root = k.program.atomic<Value>("root", 0);  // loc 0
  auto leaf = k.program.atomic<Value>("leaf", 0);  // loc 1
  auto pay = k.program.plain<Value>("pay", 0);     // loc 2
  k.program.thread([=] {
    pay.store(1);
    leaf.store(1, o.leaf_store);
  });
  k.program.thread([=] {
    const Value lv = leaf.load(o.child_load);
    observe(lv);
    if (lv == 1) {
      observe(pay.load());
      Value old_v = root.load(o.node_load);
      root.compare_exchange_strong(old_v, lv, o.cas_ok, o.cas_fail);
    }
  });
  k.invariant = [](const Graph& g) -> std::string {
    if (auto msg = check_plain_reads(g, 2, 1); !msg.empty()) return msg;
    // If the helper saw the leaf, the handoff must land: final root 1.
    for (const Event& e : g.events()) {
      if (e.thread == 1 && e.kind == EventKind::kLoad && e.loc == 1 &&
          e.value_read == 1 && g.final_value(0) != 1) {
        return "handoff dropped: helper saw the leaf but the root stayed " +
               std::to_string(g.final_value(0));
      }
    }
    return "";
  };
  return k;
}

Kernel make_mcas_publication_kernel(const McasOrders& o) {
  constexpr Value kDesc = 7;       // "pointer to" the descriptor
  constexpr Value kSucceeded = 1;  // status value
  Kernel k;
  k.name = "mcas-publication";
  k.description =
      "MCAS descriptor publication (kcas/mcas.cpp): plain descriptor "
      "fields published by the install CAS, helper result published "
      "back by the status decide CAS";
  auto cell = k.program.atomic<Value>("cell", 0);      // loc 0
  auto status = k.program.atomic<Value>("status", 0);  // loc 1
  auto field = k.program.plain<Value>("field", 0);     // loc 2: owner-written
  auto result = k.program.plain<Value>("result", 0);   // loc 3: helper-written
  k.program.thread([=] {
    // Owner: fill the descriptor, install it, then read the outcome.
    field.store(42);
    Value e = 0;
    cell.compare_exchange_strong(e, kDesc, o.install_ok, o.install_fail);
    const Value s = status.load(o.status_read);
    observe(s);
    if (s == kSucceeded) observe(result.load());
  });
  k.program.thread([=] {
    // Helper: sees the descriptor through the cell, reads its fields,
    // writes its contribution, then decides the status.
    const Value c = cell.load(o.cell_load);
    observe(c);
    if (c == kDesc) {
      observe(field.load());
      result.store(9);
      Value e = 0;
      status.compare_exchange_strong(e, kSucceeded, o.status_decide,
                                     o.status_decide_fail);
    }
  });
  k.invariant = [](const Graph& g) -> std::string {
    if (auto msg = check_plain_reads(g, 2, 42); !msg.empty()) return msg;
    return check_plain_reads(g, 3, 9);
  };
  return k;
}

std::vector<Kernel> protocol_kernels() {
  std::vector<Kernel> out;
  out.push_back(
      make_propagate_counter_kernel(maxreg::RefreshPolicy::kConditional));
  out.push_back(
      make_propagate_counter_kernel(maxreg::RefreshPolicy::kAlwaysTwice));
  out.push_back(make_propagate_snapshot_kernel());
  out.push_back(make_root_read_kernel());
  out.push_back(make_leaf_handoff_kernel());
  out.push_back(make_mcas_publication_kernel());
  return out;
}

ExploreResult check_kernel(const Kernel& kernel, std::size_t max_violations) {
  ExploreOptions opts;
  opts.invariant = kernel.invariant;
  opts.max_violations = max_violations;
  return explore(kernel.program, opts);
}

std::vector<MutationSite> mutation_sites() {
  using maxreg::RefreshPolicy;
  std::vector<MutationSite> out;

  auto add = [&](std::string id, std::string note, bool pr4,
                 std::function<Kernel()> make) {
    out.push_back(MutationSite{std::move(id), std::move(note), pr4,
                               std::move(make)});
  };

  for (const RefreshPolicy policy :
       {RefreshPolicy::kConditional, RefreshPolicy::kAlwaysTwice}) {
    const bool conditional = policy == RefreshPolicy::kConditional;
    const std::string kname = conditional
                                  ? "propagate-counter/conditional"
                                  : "propagate-counter/always-twice";
    add(kname + ":node_load acq->rlx",
        "the PR-4 bug: a fresh node beside stale child loads lets the "
        "no-change skip drop a sibling's increment or the CAS regress "
        "the monotone aggregate",
        /*pr4=*/conditional, [policy] {
          PropagateOrders o;
          o.node_load = std::memory_order_relaxed;
          return make_propagate_counter_kernel(policy, o);
        });
    add(kname + ":cas_ok rel->rlx",
        "without the release the installing CAS publishes nothing: the "
        "sibling's acquire node load gets no synchronizes-with edge and "
        "its child loads may be stale",
        /*pr4=*/false, [policy] {
          PropagateOrders o;
          o.cas_ok = std::memory_order_relaxed;
          return make_propagate_counter_kernel(policy, o);
        });
  }

  add("propagate-snapshot:child_load acq->rlx",
      "a relaxed child load sees the leaf but not the payload written "
      "before it: torn snapshot view (data race)",
      /*pr4=*/false, [] {
        PropagateOrders o;
        o.child_load = std::memory_order_relaxed;
        return make_propagate_snapshot_kernel(o);
      });
  add("propagate-snapshot:leaf_store rel->rlx",
      "a relaxed leaf store publishes nothing: the sibling dereferences "
      "an unpublished payload (data race)",
      /*pr4=*/false, [] {
        PropagateOrders o;
        o.leaf_store = std::memory_order_relaxed;
        return make_propagate_snapshot_kernel(o);
      });

  add("root-read:root_read acq->rlx",
      "the read fast path sees the installed root but races the data "
      "published before the install",
      /*pr4=*/false, [] {
        PropagateOrders o;
        o.root_read = std::memory_order_relaxed;
        return make_root_read_kernel(o);
      });
  add("root-read:cas_ok rel->rlx",
      "a relaxed install CAS gives the acquire fast-path load no "
      "release to synchronize with",
      /*pr4=*/false, [] {
        PropagateOrders o;
        o.cas_ok = std::memory_order_relaxed;
        return make_root_read_kernel(o);
      });

  add("leaf-handoff:leaf_store rel->rlx",
      "the helper observes the leaf but races the writer's payload",
      /*pr4=*/false, [] {
        PropagateOrders o;
        o.leaf_store = std::memory_order_relaxed;
        return make_leaf_handoff_kernel(o);
      });
  add("leaf-handoff:child_load acq->rlx",
      "a relaxed helper load discards the writer's release: payload race",
      /*pr4=*/false, [] {
        PropagateOrders o;
        o.child_load = std::memory_order_relaxed;
        return make_leaf_handoff_kernel(o);
      });

  add("mcas-publication:install_ok acq_rel->rlx",
      "a relaxed install CAS publishes no descriptor fields: helpers "
      "read a torn descriptor",
      /*pr4=*/false, [] {
        McasOrders o;
        o.install_ok = std::memory_order_relaxed;
        return make_mcas_publication_kernel(o);
      });
  add("mcas-publication:cell_load acq->rlx",
      "a relaxed helper cell load sees the descriptor pointer but races "
      "its fields",
      /*pr4=*/false, [] {
        McasOrders o;
        o.cell_load = std::memory_order_relaxed;
        return make_mcas_publication_kernel(o);
      });
  add("mcas-publication:status_decide acq_rel->rlx",
      "a relaxed decide CAS publishes no helper-side writes: the owner "
      "races the helper's result",
      /*pr4=*/false, [] {
        McasOrders o;
        o.status_decide = std::memory_order_relaxed;
        return make_mcas_publication_kernel(o);
      });
  add("mcas-publication:status_read acq->rlx",
      "a relaxed owner status load discards the decide CAS's release: "
      "result race",
      /*pr4=*/false, [] {
        McasOrders o;
        o.status_read = std::memory_order_relaxed;
        return make_mcas_publication_kernel(o);
      });

  return out;
}

std::vector<MutationOutcome> run_mutation_driver() {
  std::vector<MutationOutcome> out;
  for (const MutationSite& site : mutation_sites()) {
    const Kernel kernel = site.make();
    const ExploreResult res = check_kernel(kernel, /*max_violations=*/1);
    MutationOutcome mo;
    mo.id = site.id;
    mo.note = site.note;
    mo.pr4_regression = site.pr4_regression;
    mo.violation_count = res.violation_count;
    if (!res.violations.empty()) {
      mo.sample_kind = res.violations.front().kind;
      mo.sample_message = res.violations.front().message;
      mo.sample_dump = res.violations.front().dump;
    }
    out.push_back(std::move(mo));
  }
  return out;
}

}  // namespace ruco::wmm
