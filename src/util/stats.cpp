#include "ruco/util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ruco::util {

void Summary::add(std::uint64_t x) noexcept {
  ++n_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double dx = static_cast<double>(x) - mean_;
  mean_ += dx / static_cast<double>(n_);
  m2_ += dx * (static_cast<double>(x) - mean_);
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  const double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
  return sum / static_cast<double>(values_.size());
}

std::uint64_t Samples::min() const noexcept {
  if (values_.empty()) return 0;
  return *std::min_element(values_.begin(), values_.end());
}

std::uint64_t Samples::max() const noexcept {
  if (values_.empty()) return 0;
  return *std::max_element(values_.begin(), values_.end());
}

std::uint64_t Samples::percentile(double p) {
  if (values_.empty()) return 0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest value with at least ceil(p/100 * n) samples
  // at or below it.
  const auto n = values_.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return values_[rank - 1];
}

std::uint64_t Histogram::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

std::string Histogram::to_string() const {
  std::string out;
  for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!out.empty()) out += ' ';
    out += std::to_string(i) + ':' + std::to_string(counts_[i]);
  }
  if (overflow() != 0) {
    if (!out.empty()) out += ' ';
    out += ">=" + std::to_string(bucket_count()) + ':' +
           std::to_string(overflow());
  }
  return out;
}

}  // namespace ruco::util
