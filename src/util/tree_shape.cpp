#include "ruco/util/tree_shape.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ruco/util/bits.h"

namespace ruco::util {

std::uint32_t TreeShape::depth(NodeId n) const {
  std::uint32_t d = 0;
  while (nodes_[n].parent != kNil) {
    n = nodes_[n].parent;
    ++d;
  }
  return d;
}

TreeShape::NodeId TreeShape::sibling(NodeId n) const {
  const NodeId p = nodes_[n].parent;
  if (p == kNil) return kNil;
  return nodes_[p].left == n ? nodes_[p].right : nodes_[p].left;
}

TreeShape::NodeId TreeShape::add_leaf(std::uint32_t leaf_ordinal) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.leaf = leaf_ordinal;
  nodes_.push_back(node);
  if (leaf_ordinal >= leaves_.size()) leaves_.resize(leaf_ordinal + 1, kNil);
  leaves_[leaf_ordinal] = id;
  return id;
}

TreeShape::NodeId TreeShape::add_internal(NodeId left_child,
                                          NodeId right_child) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.left = left_child;
  node.right = right_child;
  nodes_.push_back(node);
  nodes_[left_child].parent = id;
  nodes_[right_child].parent = id;
  return id;
}

TreeShape::NodeId TreeShape::build_complete(std::uint32_t first,
                                            std::uint32_t count) {
  assert(count >= 1);
  if (count == 1) return add_leaf(first);
  // Left-complete split: the left subtree takes the largest power of two
  // strictly less than count, so every leaf depth is <= ceil(log2(count)).
  const std::uint32_t half =
      static_cast<std::uint32_t>(next_pow2(count) / 2);
  const std::uint32_t left_count = (half == count) ? count / 2 : half;
  const NodeId l = build_complete(first, left_count);
  const NodeId r = build_complete(first + left_count, count - left_count);
  return add_internal(l, r);
}

TreeShape::NodeId TreeShape::build_b1(std::uint32_t count) {
  assert(count >= 1);
  // Group g holds leaf ordinals [2^g - 1, min(2^{g+1} - 1, count)).  Each
  // group is a complete subtree; groups hang off a right-descending spine so
  // leaf v's depth is (its group index) + (depth inside the group subtree)
  // + 1 = O(log v).
  struct Group {
    std::uint32_t first;
    std::uint32_t size;
  };
  std::vector<Group> groups;
  for (std::uint32_t g = 0;; ++g) {
    const std::uint64_t lo = (std::uint64_t{1} << g) - 1;
    if (lo >= count) break;
    const std::uint64_t hi =
        std::min<std::uint64_t>((std::uint64_t{1} << (g + 1)) - 1, count);
    groups.push_back({static_cast<std::uint32_t>(lo),
                      static_cast<std::uint32_t>(hi - lo)});
  }
  NodeId chain = build_complete(groups.back().first, groups.back().size);
  for (std::size_t g = groups.size() - 1; g-- > 0;) {
    const NodeId sub = build_complete(groups[g].first, groups[g].size);
    chain = add_internal(sub, chain);
  }
  return chain;
}

TreeShape complete_shape(std::uint32_t leaves) {
  if (leaves == 0) throw std::invalid_argument{"complete_shape: 0 leaves"};
  TreeShape shape;
  shape.set_root(shape.build_complete(0, leaves));
  return shape;
}

TreeShape b1_shape(std::uint32_t leaves) {
  if (leaves == 0) throw std::invalid_argument{"b1_shape: 0 leaves"};
  TreeShape shape;
  shape.set_root(shape.build_b1(leaves));
  return shape;
}

AlgorithmATreeShape::AlgorithmATreeShape(std::uint32_t num_processes)
    : n_{num_processes} {
  if (num_processes == 0) {
    throw std::invalid_argument{"AlgorithmATreeShape: 0 processes"};
  }
  // Build both subtrees into one arena: TL leaves get ordinals [0, N) (value
  // leaves) and TR leaves get ordinals [N, 2N) (process leaves).
  const NodeId tl = shape_.build_b1(n_);
  const NodeId tr = shape_.build_complete(n_, n_);
  shape_.set_root(shape_.add_internal(tl, tr));
  value_leaves_.reserve(n_);
  process_leaves_.reserve(n_);
  for (std::uint32_t v = 0; v < n_; ++v) {
    value_leaves_.push_back(shape_.leaf(v));
  }
  for (std::uint32_t i = 0; i < n_; ++i) {
    process_leaves_.push_back(shape_.leaf(n_ + i));
  }
}

AlgorithmATreeShape::NodeId AlgorithmATreeShape::value_leaf(
    std::uint64_t v) const {
  assert(v < n_);
  return value_leaves_[static_cast<std::size_t>(v)];
}

AlgorithmATreeShape::NodeId AlgorithmATreeShape::process_leaf(
    std::uint32_t i) const {
  assert(i < n_);
  return process_leaves_[i];
}

}  // namespace ruco::util
