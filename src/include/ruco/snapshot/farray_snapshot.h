// Jayanti f-array single-writer snapshot (PODC'02, reference [14]; the
// paper's Section 3 notes the construction "can be made to work also using
// CAS instead" of LL/SC -- this is that CAS variant):
//
//   Scan   : O(1) steps  -- read one root pointer to an immutable view.
//   Update : O(log N) steps -- write own leaf, double-CAS-merge the path.
//
// Together with Corollary 1 this object witnesses that the snapshot
// tradeoff is tight at the f(N) = O(1) end: Scan O(1) forces Update
// Omega(log N), and the f-array meets it.
//
// Every node stores a pointer to an immutable View of its subtree's
// (value, seq) pairs.  Merging allocates a fresh View from the updating
// process's arena; pointers never repeat, so CAS is ABA-free, and views are
// componentwise seq-monotone, so the double-CAS propagation argument of
// Algorithm A (Lemmas 8-9) applies verbatim.  Views live until the object
// dies: the restricted-use memory model (bounded updates, no reclamation).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"
#include "ruco/util/tree_shape.h"

namespace ruco::snapshot {

class FArraySnapshot {
 public:
  explicit FArraySnapshot(std::uint32_t num_processes);

  /// Atomically sets segment `proc` to v >= 0.  O(log N) steps.
  void update(ProcId proc, Value v);

  /// All N segments at one instant.  One shared-memory step.
  [[nodiscard]] std::vector<Value> scan(ProcId proc) const;

  /// Scan returning (value, seq) pairs -- used by the monotonicity
  /// property tests.
  [[nodiscard]] std::vector<std::pair<Value, std::uint64_t>> scan_versions(
      ProcId proc) const;

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

 private:
  struct Entry {
    Value value = 0;
    std::uint64_t seq = 0;
  };
  struct View {
    std::vector<Entry> entries;  // one per leaf of the node's subtree,
                                 // ordered by leaf index
  };

  [[nodiscard]] const View* merge(ProcId proc, const View* l, const View* r);

  std::uint32_t n_;
  util::TreeShape shape_;
  std::vector<runtime::PaddedAtomic<const View*>> nodes_;
  std::deque<View> initial_views_;          // built at construction
  std::vector<std::deque<View>> arenas_;    // owner-only appenders
  std::vector<runtime::PaddedAtomic<std::uint64_t>> seq_;  // per-writer
};

}  // namespace ruco::snapshot
