// Wait-free single-writer atomic snapshot of Afek, Attiya, Dolev, Gafni,
// Merritt & Shavit (JACM'93) -- the classic helping construction referenced
// by the restricted-use snapshot line of work: each Update embeds a full
// Scan into the record it publishes; a Scan that sees the same segment move
// twice may safely borrow that updater's embedded scan (the updater started
// after the scan did).
//
//   Scan   : O(N^2) steps worst case (N+1 double collects of N reads).
//   Update : O(N^2) steps (it performs a Scan, then one write).
//
// Records are allocated from per-process arenas (std::deque gives stable
// addresses; only the owner appends) and live until the snapshot object is
// destroyed -- the restricted-use memory model: bounded updates, no
// reclamation protocol needed.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"

namespace ruco::snapshot {

class AfekSnapshot {
 public:
  explicit AfekSnapshot(std::uint32_t num_processes);

  /// Atomically sets segment `proc` to v >= 0.  Performs an embedded scan.
  void update(ProcId proc, Value v);

  /// Wait-free scan; returns all N segments at a single instant.
  [[nodiscard]] std::vector<Value> scan(ProcId proc) const;

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

 private:
  struct Record {
    Value value = 0;
    std::uint64_t seq = 0;
    std::vector<Value> view;  // embedded scan; empty only in the initial
                              // record, which is never borrowed
  };

  std::uint32_t n_;
  Record initial_;
  std::vector<runtime::PaddedAtomic<const Record*>> segments_;
  // Owner-only appenders; deque keeps published records' addresses stable.
  std::vector<std::deque<Record>> arenas_;
};

}  // namespace ruco::snapshot
