// Obstruction-free single-writer atomic snapshot by double collect: Scan
// repeatedly collects all N segments twice and returns when the two collects
// are identical (so the values coexisted at every instant between them).
// Update is a single write.
//
// Segments carry a per-writer sequence number packed with the value so the
// comparison is ABA-free; a same-value re-update still bumps the sequence.
// Obstruction-free only: a concurrent updater can starve Scan forever --
// this object sits at the (Scan = O(N) solo, Update = O(1)) end of
// Corollary 1's tradeoff, the mirror image of the f-array snapshot.
#pragma once

#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"

namespace ruco::snapshot {

class DoubleCollectSnapshot {
 public:
  /// Values must fit in 40 bits (packed with a 24-bit sequence number);
  /// each process may issue at most 2^24 - 1 updates -- both "restricted
  /// use" limits, checked with exceptions.
  explicit DoubleCollectSnapshot(std::uint32_t num_processes);

  /// Atomically sets segment `proc` to v >= 0.  One step.
  void update(ProcId proc, Value v);

  /// Returns all N segment values as of a single instant.  2N steps per
  /// attempt; may retry under concurrent updates (obstruction-free).
  [[nodiscard]] std::vector<Value> scan(ProcId proc) const;

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

  static constexpr Value kMaxValue = (Value{1} << 40) - 1;
  static constexpr std::uint64_t kMaxUpdatesPerProcess = (1u << 24) - 1;

 private:
  using Packed = std::uint64_t;  // [seq:24 | value:40]
  static constexpr Packed pack(Value v, std::uint64_t seq) noexcept {
    return (seq << 40) | static_cast<std::uint64_t>(v);
  }
  static constexpr Value unpack_value(Packed p) noexcept {
    return static_cast<Value>(p & ((std::uint64_t{1} << 40) - 1));
  }

  void collect(std::vector<Packed>& out) const;

  std::uint32_t n_;
  std::vector<runtime::PaddedAtomic<Packed>> segments_;
  std::vector<runtime::PaddedAtomic<std::uint64_t>> seq_;  // per-writer
};

}  // namespace ruco::snapshot
