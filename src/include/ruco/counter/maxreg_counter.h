// The Aspnes-Attiya-Censor-Hillel restricted-use counter (J.ACM 2012,
// reference [2]): a complete binary tree over the N processes where each
// internal node is an M-bounded AAC max register holding (a lower bound on)
// the number of increments in its subtree, built from reads and writes only.
//
//   CounterRead      : ReadMax(root)            = O(log U) = O(log N) steps
//   CounterIncrement : log N levels x (2 child reads + 1 WriteMax)
//                                               = O(log N * log U)
//                                               = O(log^2 N) steps,
// for U = poly(N) total increments ("restricted use").
//
// Against Theorem 1's frontier: reads cost f(N) = Theta(log N) (optimal per
// Aspnes et al.), so increments must cost Omega(log(N / log N)) =
// Omega(log N) -- this implementation pays Theta(log^2 N), a log N factor
// above the bound, and closing that gap is exactly the open question the
// paper's introduction poses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/maxreg/aac_max_register.h"
#include "ruco/runtime/padded.h"
#include "ruco/util/tree_shape.h"

namespace ruco::counter {

class MaxRegCounter {
 public:
  /// `max_increments` is the restricted-use bound U: behaviour is specified
  /// only while the total number of increments stays at or below it
  /// (increment throws std::length_error past the bound, making misuse loud
  /// rather than silently unspecified).
  MaxRegCounter(std::uint32_t num_processes, Value max_increments);

  /// Number of increments linearized so far.  O(log U) steps.
  [[nodiscard]] Value read(ProcId proc) const;

  /// O(log N * log U) steps.
  void increment(ProcId proc);

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }
  [[nodiscard]] Value max_increments() const noexcept { return bound_ - 1; }

 private:
  /// Reads the value a node contributes: leaf counts are plain registers,
  /// internal counts are max registers.
  [[nodiscard]] Value node_value(ProcId proc, util::TreeShape::NodeId n) const;

  std::uint32_t n_;
  Value bound_;  // max register bound: max_increments + 1
  util::TreeShape shape_;
  // Internal nodes: an AAC max register each (indexed by NodeId; leaf slots
  // stay null).  unique_ptr because AacMaxRegister is not movable (atomics).
  std::vector<std::unique_ptr<maxreg::AacMaxRegister>> nodes_;
  // Leaves: per-process increment counts (single-writer registers).
  std::vector<runtime::PaddedAtomic<Value>> leaf_counts_;
};

}  // namespace ruco::counter
