// Counter from software 2-CAS (kcas::McasArray): increment retries a
// double-word CAS over (own slot, shared total); read is one linearizable
// cell read.  The production twin of simalgos::SimKcasCounter.
//
// Where it sits against the paper: the 2-CAS is itself built from
// single-word CAS, so in base-object steps an uncontended increment costs
// ~9 (the MCAS machinery), and the worst case is *unbounded* -- the object
// is lock-free, not wait-free, and the Theorem 1 adversary starves it
// (see bench_thm1_adversary).  Theorem 1's Omega(log(N/f)) worst-case bound
// is therefore comfortably satisfied; what this object buys is the
// *uncontended* fast path, the tradeoff a practitioner actually weighs.
#pragma once

#include <cstdint>

#include "ruco/core/types.h"
#include "ruco/kcas/mcas.h"

namespace ruco::counter {

class KcasCounter {
 public:
  explicit KcasCounter(std::uint32_t num_processes);

  /// One (helping) linearizable read of the total cell.
  [[nodiscard]] Value read(ProcId proc);

  /// Retries a 2-CAS over (own slot, total) until it lands.  Lock-free.
  void increment(ProcId proc);

  /// This process's own contribution (single-writer slot).
  [[nodiscard]] Value mine(ProcId proc);

 private:
  std::uint32_t n_;
  kcas::McasArray cells_;  // [0] = total, [1 + p] = process p's slot
};

}  // namespace ruco::counter
