// The AAC counter with *value-sensitive* cost and no preset use bound:
// identical tree-of-max-registers structure to counter::MaxRegCounter, but
// the internal nodes are UnboundedAacMaxRegister (AAC composed along a
// Bentley-Yao spine) instead of M-bounded registers.  With C increments
// performed so far:
//
//   CounterRead      : O(log C) steps
//   CounterIncrement : O(log N * log C) steps
//
// -- "restricted use" becomes a property of the execution (costs grow with
// the count actually reached) rather than a constructor parameter.  Still
// reads and writes only.  The memory envelope of the unbounded registers
// (2^26-ish values) is the only hard limit, and it is loud.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/maxreg/unbounded_aac_max_register.h"
#include "ruco/runtime/padded.h"
#include "ruco/util/tree_shape.h"

namespace ruco::counter {

class UnboundedMaxRegCounter {
 public:
  explicit UnboundedMaxRegCounter(std::uint32_t num_processes,
                                  std::uint32_t max_groups = 20);

  /// Number of increments linearized so far.  O(log current-count) steps.
  [[nodiscard]] Value read(ProcId proc) const;

  /// O(log N * log current-count) steps.
  void increment(ProcId proc);

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

 private:
  [[nodiscard]] Value node_value(ProcId proc,
                                 util::TreeShape::NodeId node) const;

  std::uint32_t n_;
  util::TreeShape shape_;
  std::vector<std::unique_ptr<maxreg::UnboundedAacMaxRegister>> nodes_;
  std::vector<runtime::PaddedAtomic<Value>> leaf_counts_;
};

}  // namespace ruco::counter
