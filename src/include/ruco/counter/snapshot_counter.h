// The reduction behind Corollary 1: any N-component single-writer snapshot
// yields a counter -- CounterIncrement(i) bumps component i with one Update,
// CounterRead Scans and sums.  The reduction transports Theorem 1's counter
// tradeoff to snapshots: a Scan cheaper than f(N) would give a CounterRead
// cheaper than f(N), so Updates (= increments) inherit the
// Omega(log(N/f(N))) bound.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "ruco/core/types.h"

namespace ruco::counter {

template <typename Snapshot>
class SnapshotCounter {
 public:
  template <typename... Args>
  explicit SnapshotCounter(std::uint32_t num_processes, Args&&... args)
      : n_{num_processes},
        snapshot_{num_processes, std::forward<Args>(args)...},
        local_(num_processes, 0) {}

  [[nodiscard]] Value read(ProcId proc) {
    const std::vector<Value> view = snapshot_.scan(proc);
    return std::accumulate(view.begin(), view.end(), Value{0});
  }

  void increment(ProcId proc) {
    // local_[proc] mirrors this process's component (single writer).
    snapshot_.update(proc, ++local_[proc]);
  }

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }
  [[nodiscard]] Snapshot& snapshot() noexcept { return snapshot_; }

 private:
  std::uint32_t n_;
  Snapshot snapshot_;
  std::vector<Value> local_;
};

}  // namespace ruco::counter
