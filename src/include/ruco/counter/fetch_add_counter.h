// Hardware fetch_add counter: O(1) read, O(1) increment.  Outside the
// paper's read/write/CAS model (fetch_add is a stronger primitive), included
// to show on real hardware what the model forbids: Theorem 1 proves no
// read/write/CAS counter can match this point of the tradeoff space.
#pragma once

#include <atomic>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"

namespace ruco::counter {

class FetchAddCounter {
 public:
  [[nodiscard]] Value read(ProcId proc) const;
  void increment(ProcId proc);

 private:
  runtime::PaddedAtomic<Value> count_{0};
};

}  // namespace ruco::counter
