// Jayanti-style f-array counter (PODC'02 "f-arrays", reference [14] of
// Hendler & Khait), adapted from LL/SC to CAS with the same double-CAS
// propagation Algorithm A uses:
//   CounterRead      : O(1) steps (read the root sum), and
//   CounterIncrement : O(log N) steps (bump own leaf, re-aggregate the path).
//
// This is the read-optimal counter the paper's Theorem 1 shows is
// update-optimal too: with f(N) = O(1) reads, increments must cost
// Omega(log N) -- exactly what this object pays.  Sums of single-writer,
// non-decreasing leaves are monotone, so the CAS substitution is ABA-free
// (see propagate.h).
#pragma once

#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"
#include "ruco/util/tree_shape.h"

namespace ruco::counter {

class FArrayCounter {
 public:
  explicit FArrayCounter(std::uint32_t num_processes);

  /// Number of increments linearized so far.  One step.
  [[nodiscard]] Value read(ProcId proc) const;

  /// Adds one to the count on behalf of process `proc`.  O(log N) steps.
  void increment(ProcId proc);

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

 private:
  std::uint32_t n_;
  util::TreeShape shape_;
  std::vector<runtime::PaddedAtomic<Value>> values_;
  // Process-local mirror of the (single-writer) leaf: saves the leaf read.
  // Padded so neighbouring processes' mirrors do not false-share.
  std::vector<runtime::PaddedAtomic<Value>> local_count_;
};

}  // namespace ruco::counter
