// Static binary-tree shapes used by the tree-based objects.
//
// A TreeShape is an immutable arena of nodes with parent/child links and a
// leaf table.  Shapes are built once at object construction; the concurrent
// algorithms then index into flat value arrays using NodeId, so the *same*
// shape code drives both the std::atomic production layer and the
// deterministic simulation layer (guaranteeing identical step counts).
//
// Three shapes are provided:
//   * complete_shape(L)  -- a left-complete binary tree with L leaves, the
//     substrate for Jayanti-style f-arrays and the right subtree TR of
//     Algorithm A (Hendler & Khait, PODC'14, Section 5).
//   * b1_shape(L)        -- the Bentley-Yao B1 unbounded-search tree: leaf v
//     sits at depth O(log v), the left subtree TL of Algorithm A.
//   * AlgorithmATreeShape -- the composite tree T of Figure 4: a root whose
//     left child is b1_shape(N) (value leaves) and whose right child is
//     complete_shape(N) (per-process leaves).
#pragma once

#include <cstdint>
#include <vector>

namespace ruco::util {

class TreeShape {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNil = UINT32_MAX;

  TreeShape() = default;

  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] NodeId parent(NodeId n) const { return nodes_[n].parent; }
  [[nodiscard]] NodeId left(NodeId n) const { return nodes_[n].left; }
  [[nodiscard]] NodeId right(NodeId n) const { return nodes_[n].right; }
  [[nodiscard]] bool is_leaf(NodeId n) const {
    return nodes_[n].left == kNil && nodes_[n].right == kNil;
  }
  /// For leaf nodes: the leaf ordinal (0-based); kNil for internal nodes.
  [[nodiscard]] std::uint32_t leaf_index(NodeId n) const {
    return nodes_[n].leaf;
  }
  /// NodeId of the i-th leaf (0-based).
  [[nodiscard]] NodeId leaf(std::uint32_t i) const { return leaves_[i]; }
  [[nodiscard]] std::size_t leaf_count() const noexcept {
    return leaves_.size();
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  /// Number of edges from n up to the root.
  [[nodiscard]] std::uint32_t depth(NodeId n) const;
  /// The sibling of n, or kNil for the root.
  [[nodiscard]] NodeId sibling(NodeId n) const;

 private:
  friend TreeShape complete_shape(std::uint32_t leaves);
  friend TreeShape b1_shape(std::uint32_t leaves);
  friend class AlgorithmATreeShape;

  struct Node {
    NodeId parent = kNil;
    NodeId left = kNil;
    NodeId right = kNil;
    std::uint32_t leaf = kNil;  // leaf ordinal, kNil for internal nodes
  };

  NodeId add_leaf(std::uint32_t leaf_ordinal);
  NodeId add_internal(NodeId left_child, NodeId right_child);
  /// Left-complete tree over leaf ordinals [first, first+count).
  NodeId build_complete(std::uint32_t first, std::uint32_t count);
  /// Bentley-Yao B1 tree over leaf ordinals [0, count).
  NodeId build_b1(std::uint32_t count);
  void set_root(NodeId r) { root_ = r; }

  std::vector<Node> nodes_;
  std::vector<NodeId> leaves_;
  NodeId root_ = kNil;
};

/// A left-complete binary tree with `leaves` >= 1 leaves; leaf i at depth
/// <= ceil(log2(leaves)).
[[nodiscard]] TreeShape complete_shape(std::uint32_t leaves);

/// The Bentley-Yao B1 tree with `leaves` >= 1 leaves; leaf v at depth
/// <= 2*floor(log2(v+1)) + 2 = O(log v).  Small ordinals are near the root,
/// which is what makes Algorithm A's WriteMax(v) cost O(log v) for v < N.
[[nodiscard]] TreeShape b1_shape(std::uint32_t leaves);

/// The composite tree of Hendler & Khait Figure 4 for N processes:
/// root(left = B1 with N value leaves, right = complete with N process
/// leaves).  WriteMax(v) starts at value_leaf(v) when v < N and at
/// process_leaf(i) otherwise; ReadMax reads the root only.
class AlgorithmATreeShape {
 public:
  using NodeId = TreeShape::NodeId;
  static constexpr NodeId kNil = TreeShape::kNil;

  explicit AlgorithmATreeShape(std::uint32_t num_processes);

  [[nodiscard]] NodeId root() const noexcept { return shape_.root(); }
  [[nodiscard]] NodeId parent(NodeId n) const { return shape_.parent(n); }
  [[nodiscard]] NodeId left(NodeId n) const { return shape_.left(n); }
  [[nodiscard]] NodeId right(NodeId n) const { return shape_.right(n); }
  [[nodiscard]] NodeId sibling(NodeId n) const { return shape_.sibling(n); }
  [[nodiscard]] bool is_leaf(NodeId n) const { return shape_.is_leaf(n); }
  [[nodiscard]] std::uint32_t depth(NodeId n) const { return shape_.depth(n); }
  [[nodiscard]] std::size_t node_count() const { return shape_.node_count(); }
  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

  /// Leaf for WriteMax(v), v in [0, N): the v-th leaf of the B1 subtree.
  [[nodiscard]] NodeId value_leaf(std::uint64_t v) const;
  /// Leaf for WriteMax by process i when the operand is >= N: the i-th leaf
  /// of the complete subtree.
  [[nodiscard]] NodeId process_leaf(std::uint32_t i) const;

 private:
  std::uint32_t n_;
  TreeShape shape_;
  std::vector<NodeId> value_leaves_;    // leaves of TL, by value
  std::vector<NodeId> process_leaves_;  // leaves of TR, by process id
};

}  // namespace ruco::util
