// Bit-manipulation helpers shared by the tree-shaped data structures.
//
// All functions are constexpr and total: edge cases (zero, one, maximum
// values) are defined and unit-tested rather than left as preconditions.
#pragma once

#include <cstdint>

namespace ruco::util {

/// floor(log2(x)) for x >= 1; returns 0 for x == 0 (by convention, so the
/// function is total -- callers that care assert x != 0 themselves).
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  std::uint32_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

/// Smallest power of two >= x (x == 0 maps to 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::uint64_t{1} << ceil_log2(x);
}

/// True iff x is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace ruco::util
