// Streaming summary statistics and a fixed-width histogram, used by the
// benchmark harness to report step-count distributions (mean / max /
// percentiles) for each operation type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ruco::util {

/// Welford-style streaming accumulator over uint64 samples.
class Summary {
 public:
  void add(std::uint64_t x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return n_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact percentile support: keeps all samples.  Intended for step-count
/// series (tens of thousands of small integers), not nanosecond timings.
/// All accessors are total: on an empty series min/max/percentile return 0
/// and mean returns 0.0, so report-generation code never has to guard a
/// metric that happened to record nothing (an empty series used to throw,
/// which turned a missing data point into a crashed benchmark run).
class Samples {
 public:
  void add(std::uint64_t x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  /// p in [0, 100] (clamped); nearest-rank percentile.  Sorts lazily.
  [[nodiscard]] std::uint64_t percentile(double p);

 private:
  std::vector<std::uint64_t> values_;
  bool sorted_ = false;
};

/// Fixed-bucket histogram over [0, buckets); values >= buckets land in the
/// overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets) : counts_(buckets + 1, 0) {}

  void add(std::uint64_t x) noexcept {
    const std::size_t i =
        x < counts_.size() - 1 ? static_cast<std::size_t>(x)
                               : counts_.size() - 1;
    ++counts_[i];
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] std::uint64_t overflow() const { return counts_.back(); }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size() - 1;
  }
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// Compact one-line rendering "v0:c0 v1:c1 ..." skipping empty buckets.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace ruco::util
