// Deterministic, seedable PRNG used across tests, benchmarks and the
// simulator's random scheduler.  SplitMix64: tiny state, excellent quality
// for non-cryptographic use, and -- unlike std::mt19937 -- identical output
// on every platform, which keeps adversary traces and property tests
// reproducible byte-for-byte.
#pragma once

#include <cstdint>

namespace ruco::util {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return UINT64_MAX; }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be nonzero.  Uses rejection-free
  /// Lemire multiply-shift, biased by < 2^-32 for bound < 2^32 -- fine for
  /// scheduling and workload generation.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply-high.
    const std::uint64_t x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// True with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace ruco::util
