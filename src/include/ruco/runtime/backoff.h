// Bounded exponential backoff for CAS retry loops.
//
// A failed CAS means another thread succeeded, and an immediate retry mostly
// buys another coherence-traffic loss; spinning a few pause hints first lets
// the winner drain and roughly halves the failed-attempt rate under heavy
// contention.  The backoff is *bounded* (doubling up to a small cap, no
// sleeping, no yielding) so it never trades lock-freedom for latency: a
// retry is delayed by at most kMaxSpins pause instructions, which is
// nanoseconds, and the paper's step-complexity measure is untouched -- a
// pause is not a shared-memory event and is never step_tick()ed.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ruco::runtime {

/// One CPU relaxation hint: tells the core a spin-wait is in progress
/// (x86 `pause`, ARM `yield`), de-prioritizing the hyperthread and saving
/// power without giving up the timeslice.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No portable hint available; an empty spin iteration is still bounded.
#endif
}

/// Per-operation backoff state: construct at operation start, call pause()
/// after each lost CAS.  Spin count doubles from 1 up to max_spins and
/// stays there -- bounded, so the delay added to any single retry is O(1).
class Backoff {
 public:
  static constexpr std::uint32_t kMaxSpins = 64;

  constexpr explicit Backoff(std::uint32_t max_spins = kMaxSpins) noexcept
      : max_spins_{max_spins} {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_pause();
    if (spins_ < max_spins_) spins_ *= 2;
  }

  void reset() noexcept { spins_ = 1; }

 private:
  std::uint32_t spins_ = 1;
  std::uint32_t max_spins_;
};

}  // namespace ruco::runtime
