// Cache-line padded atomic cell.  Tree nodes that different processes CAS
// concurrently are padded to their own cache line to avoid false sharing;
// the shape classes keep trees small enough (O(N) nodes) that the space
// overhead is irrelevant next to the contention win.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

namespace ruco::runtime {

// Fixed at 64 (the value on every mainstream x86-64 / AArch64 part) rather
// than std::hardware_destructive_interference_size, whose value is not ABI
// stable across compiler flags (GCC warns on any ODR-relevant use).
inline constexpr std::size_t kCacheLine = 64;

/// A std::atomic<T> alone on its cache line.
template <typename T>
struct alignas(kCacheLine) PaddedAtomic {
  std::atomic<T> value;

  PaddedAtomic() noexcept : value{} {}
  explicit PaddedAtomic(T init) noexcept : value{init} {}

  // Vectors of nodes need copies only at construction time (single-threaded
  // setup); relaxed is fine there.
  PaddedAtomic(const PaddedAtomic& other) noexcept
      : value{other.value.load(std::memory_order_relaxed)} {}
  PaddedAtomic& operator=(const PaddedAtomic& other) noexcept {
    value.store(other.value.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }
};

}  // namespace ruco::runtime
