// Utilities for running N worker threads through a synchronized start:
// a sense-reversing spin barrier and a fleet runner that joins on scope
// exit (per C++ Core Guidelines CP.25: no detached threads anywhere).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace ruco::runtime {

/// Sense-reversing spin barrier for a fixed party count.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_{parties}, waiting_{0}, sense_{false} {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all parties arrive.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_acquire);
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> waiting_;
  std::atomic<bool> sense_;
};

/// Runs `body(thread_index)` on `count` threads, synchronizing their start
/// through a barrier, and joins them all before returning.  Exceptions from
/// worker bodies terminate (workers are expected to be noexcept in spirit);
/// tests use EXPECT_* result buffers instead of throwing across threads.
void run_threads(std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace ruco::runtime
