// Utilities for running N worker threads through a synchronized start:
// a sense-reversing spin barrier and a fleet runner that joins on scope
// exit (per C++ Core Guidelines CP.25: no detached threads anywhere).
// The fleet runner takes an optional watchdog so hardware stress tests
// fail loudly -- naming the stuck thread -- instead of hanging CI.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace ruco::runtime {

/// Sense-reversing spin barrier for a fixed party count.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_{parties}, waiting_{0}, sense_{false} {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all parties arrive.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_acquire);
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> waiting_;
  std::atomic<bool> sense_;
};

/// Diagnostic handed to the watchdog when workers miss the deadline.
struct HangReport {
  std::vector<std::size_t> stuck;  // thread indexes still running
  std::string diagnostic;          // human-readable, names every stuck index
};

/// Deadline supervision for run_threads.  A zero deadline disables the
/// watchdog (classic behavior: join unconditionally).  When the deadline
/// passes with workers still running, `on_hang` is called once from the
/// supervising thread with the stuck-thread report; the default (null)
/// handler prints the diagnostic to stderr and aborts -- a hung stress
/// test becomes a loud CI failure with the culprit named instead of a
/// silent timeout.  A custom handler must eventually unblock the workers:
/// run_threads still joins every thread before returning (CP.25).
struct WatchdogOptions {
  std::chrono::milliseconds deadline{0};
  std::function<void(const HangReport&)> on_hang;
};

struct RunThreadsResult {
  bool completed_in_time = true;
  HangReport hang;  // only populated when the watchdog fired
};

/// Runs `body(thread_index)` on `count` threads, synchronizing their start
/// through a barrier, and joins them all before returning.  Exceptions from
/// worker bodies terminate (workers are expected to be noexcept in spirit);
/// tests use EXPECT_* result buffers instead of throwing across threads.
void run_threads(std::size_t count,
                 const std::function<void(std::size_t)>& body);

/// Watchdog-supervised variant; see WatchdogOptions.
RunThreadsResult run_threads(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             const WatchdogOptions& watchdog);

}  // namespace ruco::runtime
