// Step accounting for the production (std::atomic) layer.
//
// The paper's complexity measure is the number of *shared-memory events*
// (read / write / CAS applications to base objects) an operation issues --
// not wall-clock time.  Every base-object access in ruco's production
// algorithms calls step_tick(); StepScope then measures the exact number of
// events a single operation issued, which is what the step-complexity
// benchmarks report.
//
// The counter is thread-local, so instrumentation is race-free and costs one
// TLS increment per event; that is cheap enough to leave enabled in release
// builds (throughput benchmarks measure it at well under a nanosecond).
#pragma once

#include <cstdint>

namespace ruco::runtime {

namespace detail {
inline thread_local std::uint64_t tls_steps = 0;
}  // namespace detail

/// Record one shared-memory event by the calling thread.
inline void step_tick() noexcept { ++detail::tls_steps; }

/// Total shared-memory events recorded by the calling thread so far.
[[nodiscard]] inline std::uint64_t thread_steps() noexcept {
  return detail::tls_steps;
}

/// Measures the number of shared-memory events issued between construction
/// and taken()/destruction on the current thread.
class StepScope {
 public:
  StepScope() noexcept : start_{detail::tls_steps} {}

  /// Events issued since construction.
  [[nodiscard]] std::uint64_t taken() const noexcept {
    return detail::tls_steps - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace ruco::runtime
