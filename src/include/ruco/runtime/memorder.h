// Memory-order constants for the hand-tuned production hot paths, with a
// seq_cst escape hatch for weakly-ordered targets.
//
// Every protocol atomic in the production algorithms (propagate_twice, the
// max registers, the f-array family, the software MCAS) names its order
// through these constants instead of the std::memory_order_* literals.  By
// default they are exactly the literals they are named after, so the
// default build is the weakest-order build whose per-site soundness
// arguments live in DESIGN.md ("Hot-path engineering") and the source
// comments.
//
// The sub-seq_cst orders are machine-verified by src/wmm (docs/WEAKMEM.md):
// an RC11 axiomatic model checker enumerates every weak-memory-consistent
// execution of the protocol kernels written against these constants, the
// kernel invariants hold over all of them at the shipped orders, and the
// mutation driver proves every load-bearing site minimal -- weakening any
// one of them to relaxed exhibits a concrete violating execution (run
// `rucosim wmm`; CI job `weakmem`).
//
// Configuring with -DRUCO_SEQCST_ATOMICS=ON collapses all four constants
// to seq_cst.  Rationale (DESIGN.md "What the certification covers"): the
// runtime certification legs validate the *protocol* -- the interleaving
// model checker explores sequentially consistent semantics, TSan proves
// data-race freedom (which any std::atomic order gives by construction),
// and CI hardware is x86/TSO -- so a deployment that wants the hot paths
// to run under exactly the semantics those legs explored can buy it for
// the last few percent of hot-path cost.  The collapse claim is itself
// machine-verified: under the flag the wmm litmus battery written against
// these constants loses exactly its designated weak outcomes.  CI compiles
// and runs the stress suites plus the wmm suite in this configuration so
// the fallback is always green.
//
// Collapsing to seq_cst is always sound: seq_cst is the strongest order,
// and a compare_exchange failure order of seq_cst is valid wherever
// relaxed/acquire is (the failure order may never be release/acq_rel,
// which these constants never produce for a failure operand).
//
// Deliberately NOT routed through these constants: process-private
// bookkeeping (per-process sequence numbers, local counts) and
// single-threaded construction-time stores, which are relaxed because they
// are not part of the cross-thread protocol at all; and the telemetry
// counters, which are racy-by-design monotone statistics.
#pragma once

#include <atomic>

namespace ruco::runtime {

#if defined(RUCO_SEQCST_ATOMICS)
inline constexpr std::memory_order mo_relaxed = std::memory_order_seq_cst;
inline constexpr std::memory_order mo_acquire = std::memory_order_seq_cst;
inline constexpr std::memory_order mo_release = std::memory_order_seq_cst;
inline constexpr std::memory_order mo_acq_rel = std::memory_order_seq_cst;
#else
inline constexpr std::memory_order mo_relaxed = std::memory_order_relaxed;
inline constexpr std::memory_order mo_acquire = std::memory_order_acquire;
inline constexpr std::memory_order mo_release = std::memory_order_release;
inline constexpr std::memory_order mo_acq_rel = std::memory_order_acq_rel;
#endif

}  // namespace ruco::runtime
