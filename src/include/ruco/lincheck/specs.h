// Sequential specifications of the three object families, consumed by the
// Wing-Gong checker.  A Spec provides:
//   State            -- value-semantic, hashable via Spec::hash, comparable;
//   initial()        -- the state before any operation;
//   apply(state, op) -- nullopt if the op's *recorded response* is
//                       impossible from `state`; otherwise the next state.
// Pending (unreturned) operations have unconstrained responses: apply
// validates only the state transition for them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ruco/lincheck/history.h"

namespace ruco::lincheck {

/// Max register: WriteMax(v) raises the maximum; ReadMax returns it
/// (kNoValue before any write) -- Section 2 of the paper.
struct MaxRegisterSpec {
  using State = Value;

  [[nodiscard]] State initial() const { return kNoValue; }

  [[nodiscard]] std::optional<State> apply(const State& s,
                                           const OpRecord& op) const {
    if (op.op == "WriteMax") return std::max(s, op.arg);
    if (op.op == "ReadMax") {
      if (!op.pending() && op.ret != s) return std::nullopt;
      return s;
    }
    return std::nullopt;  // unknown operation
  }

  [[nodiscard]] static std::size_t hash(const State& s) {
    return std::hash<Value>{}(s);
  }
};

/// Counter: CounterRead returns the number of preceding increments.
struct CounterSpec {
  using State = Value;

  [[nodiscard]] State initial() const { return 0; }

  [[nodiscard]] std::optional<State> apply(const State& s,
                                           const OpRecord& op) const {
    if (op.op == "CounterIncrement") return s + 1;
    if (op.op == "CounterRead") {
      if (!op.pending() && op.ret != s) return std::nullopt;
      return s;
    }
    return std::nullopt;
  }

  [[nodiscard]] static std::size_t hash(const State& s) {
    return std::hash<Value>{}(s);
  }
};

/// Single-writer snapshot: Update(proc, v) sets segment proc; Scan returns
/// the whole array.  Segments start at 0.
struct SnapshotSpec {
  using State = std::vector<Value>;

  explicit SnapshotSpec(std::size_t num_segments) : n_{num_segments} {}

  [[nodiscard]] State initial() const { return State(n_, 0); }

  [[nodiscard]] std::optional<State> apply(const State& s,
                                           const OpRecord& op) const {
    if (op.op == "Update") {
      State next = s;
      next[op.proc] = op.arg;
      return next;
    }
    if (op.op == "Scan") {
      if (!op.pending() && op.ret_vec != s) return std::nullopt;
      return s;
    }
    return std::nullopt;
  }

  [[nodiscard]] static std::size_t hash(const State& s) {
    std::size_t h = 1469598103934665603ull;
    for (const Value v : s) {
      h ^= std::hash<Value>{}(v);
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  std::size_t n_;
};

}  // namespace ruco::lincheck
