// Operation histories for linearizability checking (Herlihy & Wing, the
// paper's correctness criterion for Theorem 5).
//
// A History is a set of operation records with invocation/response
// timestamps; op A precedes op B iff A returned before B was invoked
// (partial real-time order).  Histories come from two sources:
//
//   * sim::System::history() -- deterministic simulated executions
//     (from_sim_history);
//   * lincheck::Recorder -- real threaded runs, stamped with a global
//     atomic clock (sound: the response stamp is taken after the operation
//     returned, the invocation stamp before it started, so every recorded
//     precedence really happened).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"
#include "ruco/sim/system.h"

namespace ruco::lincheck {

inline constexpr std::uint64_t kPendingTime = UINT64_MAX;

struct OpRecord {
  ProcId proc = 0;
  std::string op;  // e.g. "WriteMax", "ReadMax", "CounterIncrement", "Scan"
  Value arg = 0;
  Value ret = 0;
  std::vector<Value> ret_vec;  // Scan results; empty for scalar ops
  std::uint64_t invoked = 0;
  std::uint64_t returned = kPendingTime;  // kPendingTime: no response

  [[nodiscard]] bool pending() const noexcept {
    return returned == kPendingTime;
  }
  /// Real-time precedence.
  [[nodiscard]] bool precedes(const OpRecord& other) const noexcept {
    return !pending() && returned < other.invoked;
  }
};

struct History {
  std::vector<OpRecord> ops;

  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
  [[nodiscard]] std::size_t pending_count() const noexcept;
  /// Drops operations that never returned.  Only sound for read-like ops
  /// (an unreturned update may still have taken effect); the checker
  /// handles pending ops natively, so prefer leaving them in.
  [[nodiscard]] History without_pending() const;
};

/// Pairs the invoke/return annotations of a simulated execution (each
/// process's operations are sequential) into a History.
[[nodiscard]] History from_sim_history(
    const std::vector<sim::HistoryEvent>& events);

/// Thread-safe history recorder for real (std::thread) executions.
class Recorder {
 public:
  explicit Recorder(std::size_t num_threads);

  /// Call immediately before invoking the operation (from thread `t`).
  /// Returns a slot token to pass to end().
  std::size_t begin(ProcId t, std::string_view op, Value arg);
  /// Scalar-result completion.
  void end(ProcId t, std::size_t slot, Value ret);
  /// Vector-result completion (Scan).
  void end(ProcId t, std::size_t slot, std::vector<Value> ret_vec);

  /// Merge all threads' records (call after joining workers).
  [[nodiscard]] History harvest() const;

 private:
  std::atomic<std::uint64_t> clock_{0};
  struct alignas(runtime::kCacheLine) Lane {
    std::vector<OpRecord> records;
  };
  std::vector<Lane> lanes_;
};

}  // namespace ruco::lincheck
