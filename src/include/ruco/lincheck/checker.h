// Wing-Gong linearizability checker with memoization (the P-compositional
// refinement of the classic search): decide whether a concurrent history
// has a linearization legal under a sequential Spec.
//
// Search state = (set of linearized ops, spec state); at each step any
// operation whose every real-time predecessor is already linearized may be
// linearized next, provided its recorded response is legal.  Visited
// (set, state) pairs are memoized, which collapses the factorial search to
// the subset lattice for the scalar-state specs used here.
//
// Pending operations (invoked, never returned) are handled per Herlihy &
// Wing: each may be linearized (with unconstrained response) or omitted.
// The search succeeds when every *completed* operation is linearized.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "ruco/lincheck/history.h"

namespace ruco::lincheck {

struct LinCheckResult {
  bool linearizable = false;
  bool decided = true;  // false if the state budget was exhausted
  std::uint64_t states_explored = 0;
  std::string message;
  /// On success: indices into history.ops in a legal linearization order
  /// (pending operations appear only if the witness linearized them).
  std::vector<std::size_t> witness;
};

namespace detail {

/// Dynamic bitset over op indices with FNV hashing.
class OpSet {
 public:
  explicit OpSet(std::size_t n) : words_((n + 63) / 64, 0) {}
  void add(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void remove(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool contains(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  [[nodiscard]] std::size_t hash() const {
    std::size_t h = 1469598103934665603ull;
    for (const auto w : words_) {
      h ^= static_cast<std::size_t>(w);
      h *= 1099511628211ull;
    }
    return h;
  }
  friend bool operator==(const OpSet&, const OpSet&) = default;

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace detail

template <typename Spec>
[[nodiscard]] LinCheckResult check_linearizable(
    const History& history, const Spec& spec,
    std::uint64_t max_states = 5'000'000) {
  using State = typename Spec::State;
  const auto& ops = history.ops;
  const std::size_t n = ops.size();

  // preds_left[i]: how many unlinearized ops really precede op i.
  std::vector<std::uint32_t> preds_left(n, 0);
  std::vector<std::vector<std::uint32_t>> succs(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b && ops[a].precedes(ops[b])) {
        succs[a].push_back(static_cast<std::uint32_t>(b));
        ++preds_left[b];
      }
    }
  }
  std::size_t completed = 0;
  for (const auto& op : ops) completed += op.pending() ? 0 : 1;

  struct Key {
    detail::OpSet set;
    State state;
    std::size_t h;
    bool operator==(const Key& other) const {
      return h == other.h && set == other.set && state == other.state;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const { return k.h; }
  };
  std::unordered_set<Key, KeyHash> memo;
  LinCheckResult result;

  detail::OpSet done{n};
  // Recursive lambda via Y-combinator-ish struct to avoid std::function.
  struct Search {
    const std::vector<OpRecord>& ops;
    const Spec& spec;
    std::vector<std::uint32_t>& preds_left;
    const std::vector<std::vector<std::uint32_t>>& succs;
    std::unordered_set<Key, KeyHash>& memo;
    LinCheckResult& result;
    std::uint64_t max_states;

    bool run(detail::OpSet& done, const State& state,
             std::size_t remaining_completed) {
      if (remaining_completed == 0) return true;
      if (result.states_explored >= max_states) {
        result.decided = false;
        return false;
      }
      ++result.states_explored;
      Key key{done, state, 0};
      key.h = done.hash() * 31 + Spec::hash(state);
      if (!memo.insert(key).second) return false;

      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (done.contains(i) || preds_left[i] != 0) continue;
        const std::optional<State> next = spec.apply(state, ops[i]);
        if (!next) continue;
        done.add(i);
        result.witness.push_back(i);
        for (const auto s : succs[i]) --preds_left[s];
        const bool ok =
            run(done, *next,
                remaining_completed - (ops[i].pending() ? 0 : 1));
        for (const auto s : succs[i]) ++preds_left[s];
        done.remove(i);
        if (ok) return true;
        result.witness.pop_back();
      }
      return false;
    }
  };

  Search search{ops,  spec,   preds_left, succs,
                memo, result, max_states};
  result.linearizable = search.run(done, spec.initial(), completed);
  if (!result.linearizable) result.witness.clear();
  if (!result.decided) {
    result.message = "state budget exhausted before a decision";
  } else if (!result.linearizable) {
    result.message = "no legal linearization exists";
  }
  return result;
}

}  // namespace ruco::lincheck
