// The Theorem 3 construction, executable: an adversarial scheduler that
// maintains an i-step *essential set* E_i of hidden, supreme writer
// processes (Definitions 5-7) against any simulated max register, stretching
// each survivor's WriteMax to i steps while keeping every survivor unknown
// to everyone else.
//
// Per iteration (Lemma 4), given the active essential processes Ee and
// their enabled events grouped by base object:
//
//   Low contention  (every group <= sqrt(m)): keep one process per object,
//     drop those whose target object is familiar with another kept process
//     (greedy independent set; Turan guarantees >= k/3 survivors), erase the
//     rest, and let the survivors step on their pairwise-distinct objects.
//
//   High contention (some object o has > sqrt(m) processes): split o's
//     group by primitive --
//       value-changing CASes: the smallest-id process pl CASes first
//         (halted afterwards); everyone else's CAS is now trivial and
//         invisible;
//       writes: everyone writes, pl (smallest id) writes last, hiding all
//         earlier writes (Definition 1); pl is halted;
//       reads / trivial CASes: all step invisibly (after erasing the <=1
//         process o is familiar with).
//
// Erasure is real: the chosen processes' events are removed from the trace
// (legal by Claim 1 -- they are hidden) and the remainder is *replayed* on a
// fresh System, checking action-for-action, response-for-response
// indistinguishability.  All familiarity decisions use the offline literal
// Definition 1-4 recomputation, not the online conservative tracker.
//
// The run stops when at least half the essential processes completed
// (Lemma 6's regime), when m < 81 (Lemma 4's validity floor, relaxable for
// small-K demos via options), or at the iteration cap.  The report carries
// the per-iteration record the theorem's Equations 2-4 speak about:
// |E_i| decay, case taken, halted/erased counts, invariant checks -- plus a
// final Lemma 5/6-style probe: a fresh reader runs solo and must return one
// of the values whose write completed (linearizability sanity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/simalgos/programs.h"

namespace ruco::adversary {

struct MaxRegAdversaryOptions {
  std::uint64_t max_iterations = 64;
  /// Lemma 4 requires m >= 81; smaller floors still run the machinery (all
  /// invariants are still checked) and are useful for small-K exploration.
  std::size_t min_active = 81;
};

struct MaxRegIteration {
  enum class Case : std::uint8_t {
    kLowContention,
    kHighCas,
    kHighWrite,
    kHighRead,
  };
  std::uint64_t index = 0;       // i+1: steps each essential process has taken
  Case contention = Case::kLowContention;
  std::size_t active_before = 0;     // m = |Ee|
  std::size_t essential_after = 0;   // |E_{i+1}|
  std::size_t erased = 0;            // processes removed from the execution
  bool halted = false;               // a process was halted this iteration
  std::size_t completed_essential = 0;  // essential ops finished so far
  bool replay_ok = true;      // Claim 1 replay matched action+response
  bool invariants_ok = true;  // hidden + supreme + step-count (Def. 5-7)
  std::string diagnostic;
  /// Lemma 4's guarantee |E_{i+1}| >= sqrt(m)/3 - 2.
  [[nodiscard]] bool size_bound_held() const noexcept;
};

struct MaxRegAdversaryReport {
  std::uint32_t k = 0;  // processes (writers + reader)
  std::vector<MaxRegIteration> iterations;
  std::uint64_t iterations_completed = 0;  // i*
  std::size_t final_essential = 0;         // |E_{i*}|
  bool all_replays_ok = true;
  bool all_invariants_ok = true;
  bool all_size_bounds_ok = true;
  std::string stop_reason;
  /// Final probe: reader runs solo on the surviving execution.
  Value reader_value = kNoValue;
  std::uint64_t reader_steps = 0;
  bool reader_ok = true;  // response consistent with completed writes
};

[[nodiscard]] MaxRegAdversaryReport run_maxreg_adversary(
    const simalgos::MaxRegProgram& target,
    const MaxRegAdversaryOptions& options = {});

[[nodiscard]] const char* to_string(MaxRegIteration::Case c) noexcept;

}  // namespace ruco::adversary
