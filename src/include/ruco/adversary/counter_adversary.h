// The Theorem 1 construction, executable: starve N-1 concurrent
// CounterIncrement operations with Lemma 1 rounds, bounding how fast
// information spreads, then let a fresh process read the counter.
//
// The theorem:  if CounterRead takes O(f(N)) steps, CounterIncrement takes
// Omega(log(N / f(N))) steps.  The construction shows why: after j rounds
// every familiarity set has at most 3^j members; a reader touching at most
// f(N) objects can learn about at most f(N) * 3^j processes; but a correct
// CounterRead after all N-1 increments must (Lemma 3) become aware of all
// N processes -- so the increments cannot all finish before
// round log_3(N / f(N)).
//
// run_counter_adversary executes the rounds until every incrementer
// finishes, recording M(E_j) per round (checking M(E_j) <= 3^j), then runs
// the reader solo and reports its step count, response, awareness-set size
// and distinct objects touched -- everything the proof of Theorem 1 and
// Lemma 3 talks about, measured.
#pragma once

#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/simalgos/programs.h"

namespace ruco::adversary {

struct CounterAdversaryReport {
  std::uint32_t n = 0;        // processes (incrementers + reader)
  std::uint64_t rounds = 0;   // Lemma 1 rounds until all increments complete
  std::vector<std::size_t> knowledge_per_round;  // M(E_j), j = 1..rounds
  bool knowledge_bound_held = true;              // every M(E_j) <= 3^j
  std::uint64_t max_increment_steps = 0;  // steps of the slowest incrementer
  /// Reader (Lemma 3's p_N), run solo after all increments completed:
  std::uint64_t reader_steps = 0;
  Value reader_value = kNoValue;
  bool reader_correct = false;           // returned exactly N-1
  std::size_t reader_awareness = 0;      // |AW(p_N)| afterwards
  std::size_t reader_distinct_objects = 0;
};

CounterAdversaryReport run_counter_adversary(
    const simalgos::CounterProgram& target, std::uint64_t max_rounds = 1u
                                                                       << 20);

}  // namespace ruco::adversary
