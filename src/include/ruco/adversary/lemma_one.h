// The schedule sigma(E, S) of Lemma 1: given a set of enabled events, apply
// them in the order  (reads, trivial CASes, trivial writes) -> (writes) ->
// (CASes), which guarantees the maximum awareness/familiarity set size at
// most triples:  M(E sigma) <= 3 M(E).
//
// Within the write phase, only the last write per object stays visible
// (Definition 1); within the CAS phase, at most the first CAS per object is
// visible (it either hits an object freshened by the write phase -- all
// trivial -- or succeeds and trivializes the rest).  This is the engine of
// the Theorem 1 construction.
#pragma once

#include <cstddef>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/system.h"

namespace ruco::adversary {

struct LemmaOneRound {
  std::size_t scheduled = 0;         // events applied this round
  std::size_t knowledge_before = 0;  // M(E)
  std::size_t knowledge_after = 0;   // M(E sigma)
  /// The bound of Lemma 1 held for this round.
  [[nodiscard]] bool bound_held() const noexcept {
    return knowledge_after <= 3 * std::max<std::size_t>(knowledge_before, 1);
  }
};

/// Applies one enabled event of every process in `candidates` that has one,
/// in the Lemma 1 order.  Triviality is classified against the values
/// before the round (as in the lemma: all of sigma_1 is invisible, so the
/// classification stays valid while it runs).
LemmaOneRound lemma_one_round(sim::System& sys,
                              const std::vector<ProcId>& candidates);

}  // namespace ruco::adversary
