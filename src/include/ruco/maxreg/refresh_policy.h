// Refresh policy for the Jayanti-style double-refresh propagation loop
// (ruco/maxreg/propagate.h and its simulation-layer mirrors).
#pragma once

#include <cstdint>

namespace ruco::maxreg {

/// How many refresh rounds a propagation performs per tree level.
///
/// The classic protocol is "refresh; if it failed, refresh again": the
/// second round exists only to cover the CAS the first round *lost*.  When
/// the first CAS succeeds its combine inputs were read after our child
/// update, so the node already covers us -- the second round is pure
/// overhead.  kConditional prunes it (and skips the CAS entirely when the
/// combine produces the value the node already holds); kAlwaysTwice is the
/// unconditional variant the seed shipped, kept as the differential oracle
/// the model-checker equivalence tests and ablation benches compare
/// against.  See propagate.h for the soundness argument.
enum class RefreshPolicy : std::uint8_t {
  kConditional,  // skip round 2 after a won CAS; skip no-change CASes
  kAlwaysTwice,  // unconditional two CAS rounds per level (oracle)
};

}  // namespace ruco::maxreg
