// Mutex-protected max register: the blocking baseline.  Not in the paper's
// model (a lock is not a read/write/CAS step-bounded object) -- included so
// the throughput benchmarks can show where lock-free buys anything on real
// hardware, and as a trivially-correct oracle in stress tests.
#pragma once

#include <mutex>

#include "ruco/core/types.h"

namespace ruco::maxreg {

class LockMaxRegister {
 public:
  [[nodiscard]] Value read_max(ProcId proc) const;
  void write_max(ProcId proc, Value v);

 private:
  mutable std::mutex mutex_;
  Value value_ = kNoValue;
};

}  // namespace ruco::maxreg
