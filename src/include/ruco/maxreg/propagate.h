// The double-CAS propagation loop shared by Algorithm A's max register and
// the f-array counter / snapshot (Hendler & Khait Algorithm A lines 3-9;
// Jayanti's Tree Algorithm adapted from LL/SC to CAS).
//
// At every node on the path from `start` to the root, the caller's combine
// function is evaluated over the two children and CASed into the node --
// twice.  Two attempts suffice for linearizability of *monotone* aggregates
// (max, sums of single-writer counters, version-ordered views): if our CAS
// fails, a concurrent CAS succeeded, and its combine input was read after
// our child update; if the second also fails, the interfering CAS read the
// children after our first attempt, hence already covers our update (the
// paper's Lemma 9 / Invariant 1 argument).  Monotonicity is what rules out
// ABA, which is why the LL/SC -> CAS substitution is sound here.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/telemetry/metrics.h"
#include "ruco/util/tree_shape.h"

namespace ruco::maxreg {

/// Propagates from the *parent* of `start` up to the root of `shape`.
/// `values[n]` is the atomic cell of node n; `combine(l, r)` computes the
/// new aggregate from the two child values.  T must be trivially copyable
/// and the sequence of values at every cell monotone under `combine`
/// (see file comment).
template <typename Shape, typename T, typename Combine>
void propagate_twice(const Shape& shape,
                     std::vector<runtime::PaddedAtomic<T>>& values,
                     typename Shape::NodeId start, Combine&& combine) {
  using NodeId = typename Shape::NodeId;
  // Batched telemetry: tally in locals, publish once per propagation so the
  // per-level loop stays free of counter traffic.
  std::uint64_t levels = 0;
  std::uint64_t failures = 0;
  NodeId n = start;
  while (shape.parent(n) != Shape::kNil) {
    n = shape.parent(n);
    ++levels;
    const NodeId l = shape.left(n);
    const NodeId r = shape.right(n);
    for (int attempt = 0; attempt < 2; ++attempt) {
      runtime::step_tick();
      T old_value = values[n].value.load();
      runtime::step_tick();
      const T lv = values[l].value.load();
      runtime::step_tick();
      const T rv = values[r].value.load();
      const T new_value = combine(lv, rv);
      runtime::step_tick();
      if (!values[n].value.compare_exchange_strong(old_value, new_value)) {
        ++failures;
      }
    }
  }
  if (levels != 0) {
    const telemetry::ProdMetrics& tm = telemetry::prod();
    tm.propagate_levels.add(levels);
    tm.propagate_cas_attempts.add(levels * 2);  // two CAS per level, always
    if (failures != 0) tm.propagate_cas_failures.add(failures);
  }
}

}  // namespace ruco::maxreg
