// The double-refresh propagation loop shared by Algorithm A's max register
// and the f-array counter / snapshot (Hendler & Khait Algorithm A lines 3-9;
// Jayanti's Tree Algorithm adapted from LL/SC to CAS).
//
// At every node on the path from `start` to the root, the caller's combine
// function is evaluated over the two children and CASed into the node.
// Two refresh rounds suffice for linearizability of *monotone* aggregates
// (max, sums of single-writer counters, version-ordered views): if our CAS
// fails, a concurrent CAS succeeded, and its combine input was read after
// our child update; if the second also fails, the interfering CAS read the
// children after our first attempt, hence already covers our update (the
// paper's Lemma 9 / Invariant 1 argument).  Monotonicity is what rules out
// ABA, which is why the LL/SC -> CAS substitution is sound here.
//
// Conditional refresh (RefreshPolicy::kConditional, the default).  The
// argument above makes the second round *conditional* on losing the first:
// a won CAS installed a combine computed from child values read after our
// child update, so the node covers us and round two is pure overhead.
// Likewise, when the combine equals the value the node already holds there
// is nothing to install: the node held the covering value at our load, and
// node values are monotone under combine, so it covers us forever after --
// the level costs three loads and no CAS at all.  On the uncontended path
// this halves CAS traffic per level (one CAS instead of two); the model
// checker exhaustively verifies the pruned protocol against the
// kAlwaysTwice oracle at small N (tests/hotpath_test.cpp) and the ablation
// bench quantifies the step savings.
//
// Memory orders (per-site argument; DESIGN.md "Hot-path memory orders";
// constants from ruco/runtime/memorder.h, which RUCO_SEQCST_ATOMICS
// collapses to seq_cst for weak-memory targets):
//   * node load: acquire.  Required for more than publication: the value
//     feeds the CAS expected operand AND the decisions to skip (no-change
//     test) or stop (won-CAS break).  Both decisions reason "the node
//     already covers X because whoever installed this value read children
//     at least as new as X" -- an ordering claim, not just a value claim.
//     The acquire synchronizes-with the release CAS (or release leaf
//     store) that installed the node value, so the installer's child reads
//     happen-before our subsequent child loads; read-read coherence then
//     forces our child loads to return values no older than the ones the
//     installer combined.  That is exactly the interleaving ("combine
//     inputs are at least as new as the node value we observed") the SC
//     model checker exhaustively verified, so the pruning argument
//     transfers to weak-memory hardware.  A relaxed load here is NOT
//     sound on non-TSO machines: it may return a fresh node value while
//     the child loads still return stale values (nothing orders them),
//     making the no-change skip drop a sibling's contribution (e.g. a
//     counter increment that never reaches the root) or the CAS install
//     combine(stale children) over a newer aggregate, regressing the
//     monotone value.  Cost of the acquire: free on x86/TSO, one ldar on
//     ARM.
//   * child loads: acquire.  They synchronize with the release CAS (or
//     release leaf store) that published the child value; when T is a
//     pointer (f-array snapshot views) the referent is dereferenced by the
//     combine, so the acquire edge is what makes the published contents
//     visible.
//   * CAS: release on success -- publishes the combined value (and, for
//     pointer aggregates, everything the combine wrote) to the next
//     level's acquire node/child loads; relaxed on failure -- the
//     reloaded expected is discarded (round 2 re-reads everything fresh).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/maxreg/refresh_policy.h"
#include "ruco/runtime/memorder.h"
#include "ruco/runtime/padded.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/telemetry/metrics.h"
#include "ruco/util/tree_shape.h"

namespace ruco::maxreg {

/// Propagates from the *parent* of `start` up to the root of `shape`.
/// `values[n]` is the atomic cell of node n; `combine(l, r)` computes the
/// new aggregate from the two child values.  T must be trivially copyable,
/// equality-comparable, and the sequence of values at every cell monotone
/// under `combine` (see file comment).
template <typename Shape, typename T, typename Combine>
void propagate_twice(const Shape& shape,
                     std::vector<runtime::PaddedAtomic<T>>& values,
                     typename Shape::NodeId start, Combine&& combine,
                     RefreshPolicy policy = RefreshPolicy::kConditional) {
  using NodeId = typename Shape::NodeId;
  const bool conditional = policy == RefreshPolicy::kConditional;
  // Batched telemetry: tally in locals, publish once per propagation so the
  // per-level loop stays free of counter traffic.
  std::uint64_t levels = 0;
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  std::uint64_t second_rounds = 0;
  std::uint64_t skipped = 0;
  NodeId n = start;
  while (shape.parent(n) != Shape::kNil) {
    n = shape.parent(n);
    ++levels;
    const NodeId l = shape.left(n);
    const NodeId r = shape.right(n);
    for (int round = 0; round < 2; ++round) {
      runtime::step_tick();
      // Acquire, not relaxed: the skip/stop decisions below need the
      // installer's child reads to happen-before ours (see file comment).
      T old_value = values[n].value.load(runtime::mo_acquire);
      runtime::step_tick();
      const T lv = values[l].value.load(runtime::mo_acquire);
      runtime::step_tick();
      const T rv = values[r].value.load(runtime::mo_acquire);
      const T new_value = combine(lv, rv);
      if (conditional && new_value == old_value) {
        // Pure-load level: the node already holds the covering aggregate.
        ++skipped;
        break;
      }
      runtime::step_tick();
      ++attempts;
      if (values[n].value.compare_exchange_strong(old_value, new_value,
                                                  runtime::mo_release,
                                                  runtime::mo_relaxed)) {
        if (conditional) break;  // won: combine read after our child update
      } else {
        ++failures;
        if (round == 0) ++second_rounds;
      }
    }
  }
  if (levels != 0) {
    const telemetry::ProdMetrics& tm = telemetry::prod();
    tm.propagate_levels.add(levels);
    tm.propagate_cas_attempts.add(attempts);  // actual CASes, not levels * 2
    if (failures != 0) tm.propagate_cas_failures.add(failures);
    if (second_rounds != 0) tm.propagate_second_rounds.add(second_rounds);
    if (skipped != 0) tm.propagate_cas_skips.add(skipped);
  }
}

}  // namespace ruco::maxreg
