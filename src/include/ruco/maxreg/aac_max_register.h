// The Aspnes-Attiya-Censor-Hillel bounded max register (J.ACM 2012,
// "Polylogarithmic concurrent data structures from monotone circuits" --
// reference [2] of Hendler & Khait), built from reads and writes only:
// both ReadMax and WriteMax(v) take O(log M) steps on an M-bounded register.
//
// Structure: a complete binary tree of one-bit "switch" registers over the
// value domain [0, M).  A node splits its domain in half; switch == 1 means
// "some write went to the right (larger) half".  WriteMax descends by the
// operand's bits -- abandoning as soon as it would go left of a set switch
// (a larger value is already present) -- and then sets the switches of its
// right turns bottom-up, so a switch is only raised after the value below it
// is fully recorded.  ReadMax follows set switches right / unset switches
// left, reconstructing the maximum from its path.
//
// This is the read-optimal implementation whose WriteMax the paper's
// Theorem 3 lower-bounds: f(K) = O(log M) reads, Theta(log M) writes.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "ruco/core/types.h"

namespace ruco::maxreg {

class AacMaxRegister {
 public:
  /// An M-bounded register: operands must lie in [0, bound).  The switch
  /// tree has next_pow2(bound) - 1 internal one-bit registers.
  explicit AacMaxRegister(Value bound);

  /// Largest value written so far, or kNoValue.  Exactly
  /// ceil(log2(bound)) read steps.
  [[nodiscard]] Value read_max(ProcId proc) const;

  /// Writes v in [0, bound).  At most 2*ceil(log2(bound)) steps.
  void write_max(ProcId proc, Value v);

  [[nodiscard]] Value bound() const noexcept { return bound_; }

 private:
  Value bound_;
  std::uint32_t levels_;  // ceil(log2(next_pow2(bound)))
  // Heap-ordered switch bits: node 1 is the root, node k has children 2k and
  // 2k+1.  Plain one-byte registers (the algorithm uses only read/write).
  std::vector<std::atomic<std::uint8_t>> switches_;
  // Has any write completed?  The original algorithm assumes domain [0, M)
  // with 0 as the implicit initial value; one extra "written" bit lets
  // ReadMax report kNoValue on a fresh register instead of 0, aligning all
  // our max registers on the same specification.
  std::atomic<std::uint8_t> any_write_;
};

}  // namespace ruco::maxreg
