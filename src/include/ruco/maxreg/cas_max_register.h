// Single-word CAS-retry max register: the natural baseline every systems
// programmer writes first.  ReadMax is one step; WriteMax retries a CAS
// until the register holds a value >= the operand.
//
// Lock-free but *not* wait-free: under contention a WriteMax can retry
// unboundedly (each failure is caused by another write succeeding).  Solo
// (and per the paper's obstruction-free measure) WriteMax is O(1), which
// makes this object the canonical f(K) = O(1) read-side target for the
// Theorem 3 adversary: the lower bound says some execution must stretch
// writes to Omega(log log K / log f(K)) steps -- the adversary bench shows
// the retry chains the construction manufactures.
#pragma once

#include <atomic>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"

namespace ruco::maxreg {

class CasMaxRegister {
 public:
  CasMaxRegister() noexcept : cell_{kNoValue} {}

  /// One read step.
  [[nodiscard]] Value read_max(ProcId proc) const;

  /// CAS loop; lock-free, O(1) solo.
  void write_max(ProcId proc, Value v);

 private:
  runtime::PaddedAtomic<Value> cell_;
};

}  // namespace ruco::maxreg
