// Unbounded max register from reads and writes only, with value-sensitive
// cost: both ReadMax and WriteMax(v) run in O(log v) steps (v the operand /
// current maximum).  This is the read/write-only counterpart of Algorithm A:
// it marries the AAC switch-tree composition (reference [2]) with the
// Bentley-Yao B1 layout that Algorithm A uses for its left subtree.
//
// Construction.  Values are split into doubling groups: group g holds
// [2^g - 1, 2^{g+1} - 1).  A rightward spine of one-bit switches hangs one
// AAC-style complete switch subtree per group off its left side; spine
// switch s_g = 1 means "some write reached group > g".  This is exactly the
// AAC composition MaxReg(a+b) = (MaxReg(a), switch, MaxReg(b)) applied
// recursively along the spine, so correctness follows from their
// composition lemma:
//   WriteMax(v): walk the spine to v's group, abandoning if a *later* spine
//     switch is already set (a larger group value exists); do a bounded AAC
//     write inside the group subtree; then raise the spine switches of the
//     groups *below* v's bottom-up.  O(log v) switch accesses.
//   ReadMax: walk the spine to the last set switch, then descend that
//     group's subtree by its switches.  O(log max-so-far).
//
// Capacity and memory.  A group-g subtree needs 2^g one-byte switches
// (that is the inherent space cost of AAC switch trees: an M-bounded
// register stores Theta(M) switches).  Group subtrees are therefore
// allocated *lazily*, on the first write into the group, with a
// CAS-installed pointer (an engineering concern outside the step model --
// the shared-memory algorithm itself stays read/write only).  max_groups
// caps the envelope: writes beyond it throw, loud by design, and the cap
// itself is limited to 26 (a fully-written register then holds at most
// 2^27 switch bytes).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/maxreg/aac_max_register.h"

namespace ruco::maxreg {

class UnboundedAacMaxRegister {
 public:
  /// Supports operands below 2^(max_groups) - 1.  Each group g costs
  /// 2^g one-byte switches, so max_groups = 20 (the default, values up to
  /// ~10^6) allocates about 2 MiB; raise it if you need bigger operands.
  explicit UnboundedAacMaxRegister(std::uint32_t max_groups = 20);
  ~UnboundedAacMaxRegister();
  UnboundedAacMaxRegister(const UnboundedAacMaxRegister&) = delete;
  UnboundedAacMaxRegister& operator=(const UnboundedAacMaxRegister&) = delete;

  /// O(log v) steps: spine walk + one bounded AAC read inside a group.
  [[nodiscard]] Value read_max(ProcId proc) const;

  /// O(log v) steps.  Throws std::out_of_range if v exceeds the configured
  /// group envelope.
  void write_max(ProcId proc, Value v);

  [[nodiscard]] Value max_value() const noexcept;

 private:
  /// Group of value v: floor(log2(v + 1)); group g spans
  /// [2^g - 1, 2^{g+1} - 1).
  static std::uint32_t group_of(Value v) noexcept;

  /// The group's bounded register, allocating it on first use.
  AacMaxRegister& group(std::uint32_t g);
  /// nullptr if the group has never been written.
  [[nodiscard]] const AacMaxRegister* group_if_present(std::uint32_t g) const;

  std::uint32_t max_groups_;
  // Spine switches: spine_[g] = 1 means a write reached a group > g.
  std::vector<std::atomic<std::uint8_t>> spine_;
  // Bounded register over group g's 2^g values, lazily installed.
  std::vector<std::atomic<AacMaxRegister*>> groups_;
};

}  // namespace ruco::maxreg
