// Algorithm A of Hendler & Khait (PODC'14 Section 5): a wait-free,
// linearizable max register from read / write / CAS with
//   ReadMax  : O(1) steps (a single read of the root), and
//   WriteMax(v) : O(min(log N, log v)) steps.
//
// The register is a binary tree T (Figure 4): the left subtree TL is a
// Bentley-Yao B1 tree whose v-th leaf (depth O(log v)) receives writes of
// small operands v < N; the right subtree TR is a complete binary tree whose
// i-th leaf (depth O(log N)) receives process i's writes of large operands
// v >= N.  A write stores its operand at the chosen leaf and propagates the
// max up to the root with the double-CAS loop.
//
// Deviation from the paper's pseudocode (documented in EXPERIMENTS.md, and
// demonstrated by the simulation-layer model checker): the printed
// Algorithm A returns from WriteMax *without propagating* when the leaf
// already holds a value >= the operand (lines 15-16).  When two processes
// race to write the same operand v < N to the same TL leaf, the second may
// early-return while the first has not yet propagated, after which a
// completed WriteMax(v) can be followed by a ReadMax < v -- a linearizability
// violation.  With help_on_duplicate (the default) the early-return path
// still propagates, restoring linearizability at no asymptotic cost
// (propagation is O(depth) -- the bound WriteMax already pays).  Construct
// with Faithfulness::kAsPrinted to get the paper's literal pseudocode (used
// by the tests that reproduce the violation).
#pragma once

#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"
#include "ruco/util/tree_shape.h"

namespace ruco::maxreg {

enum class Faithfulness {
  kAsPrinted,        // paper's literal lines 10-18
  kHelpOnDuplicate,  // propagate before early return (default)
};

class TreeMaxRegister {
 public:
  /// A register shared by `num_processes` processes.  Operands are
  /// unbounded (the paper's Theorem 5 covers the unbounded object); the
  /// min(log N, log v) write bound comes from the tree shape alone.
  explicit TreeMaxRegister(
      std::uint32_t num_processes,
      Faithfulness mode = Faithfulness::kHelpOnDuplicate);

  /// Largest value written by any linearized WriteMax, or kNoValue.
  /// Exactly one shared-memory step.
  [[nodiscard]] Value read_max(ProcId proc) const;

  /// Writes v >= 0 (negative operands throw std::out_of_range in every
  /// build).  Caller must pass its own process id in [0, N).  In
  /// kHelpOnDuplicate mode a root-check fast path returns in O(1) when the
  /// root already covers v (sound: ReadMax only looks at the root, which is
  /// monotone).
  void write_max(ProcId proc, Value v);

  [[nodiscard]] std::uint32_t num_processes() const noexcept {
    return shape_.num_processes();
  }
  /// Depth of the leaf WriteMax(v) by `proc` would start from -- the step
  /// bound's driver; exposed for the structure tests and benchmarks.
  [[nodiscard]] std::uint32_t write_leaf_depth(ProcId proc, Value v) const;

 private:
  util::AlgorithmATreeShape shape_;
  std::vector<runtime::PaddedAtomic<Value>> values_;
  Faithfulness mode_;
};

}  // namespace ruco::maxreg
