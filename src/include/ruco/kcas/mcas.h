// Multi-word compare-and-swap from single-word CAS: the classic
// Harris-Fraser-Pratt construction (DISC'02, "A practical multi-word
// compare-and-swap operation") -- the primitive family of the paper's
// reference [6] (Attiya & Hendler study lower bounds for implementations
// *using* k-CAS; this is how one builds k-CAS when the hardware only has
// CAS).
//
// Layered exactly as in the paper that introduced it:
//   RDCSS  -- restricted double-compare single-swap: CAS word a2 from o2 to
//             n2 only if control word a1 still holds o1.  Implemented by
//             parking a descriptor in a2; any reader that stumbles on the
//             descriptor helps complete it.
//   MCAS   -- acquire every target word with RDCSS (control = the MCAS
//             status, so acquisition stops the instant the MCAS is
//             decided), then decide SUCCEEDED/FAILED with one CAS on the
//             status, then release every word to its new/old value.
//             Lock-free: any thread that meets a descriptor helps that
//             operation to completion before retrying its own.
//
// Tagging: cells are std::uintptr_t; values are stored shifted left by 2,
// descriptors carry tag 01 (RDCSS) or 10 (MCAS) in the low bits.  Values
// must therefore fit 61 bits plus sign -- checked, loud.
//
// Memory: descriptors are allocated from per-process arenas and never
// reclaimed while the McasArray lives -- the restricted-use memory model
// used across ruco (bounded operations, no reclamation protocol), which
// also kills descriptor ABA by construction.
//
// Step accounting counts every CAS/load on the cells (helping included),
// so the benchmarks show the true base-object cost of a software k-CAS:
// ~3k+1 CAS-object steps per uncontended k-word operation -- the
// constant-factor price of strengthening the primitive in software.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/runtime/padded.h"

namespace ruco::kcas {

/// One word of an MCAS: index into the array, expected and desired values.
struct McasWord {
  std::uint32_t index = 0;
  Value expected = 0;
  Value desired = 0;
};

class McasArray {
 public:
  /// n cells, all initialized to `init`.  `num_processes` sizes the
  /// per-process descriptor arenas; every operation takes the caller's
  /// ProcId like the rest of ruco.
  McasArray(std::uint32_t num_cells, Value init, std::uint32_t num_processes);
  McasArray(const McasArray&) = delete;
  McasArray& operator=(const McasArray&) = delete;

  /// Linearizable read of one cell (helps any parked operation first).
  [[nodiscard]] Value read(ProcId proc, std::uint32_t index);

  /// Atomically: if every word still holds its expected value, install all
  /// desired values and return true; otherwise change nothing and return
  /// false.  Words are deduplicated/validated (same index twice throws).
  bool mcas(ProcId proc, std::vector<McasWord> words);

  /// Convenience 2-CAS.
  bool dcas(ProcId proc, const McasWord& a, const McasWord& b) {
    return mcas(proc, std::vector<McasWord>{a, b});
  }

  [[nodiscard]] std::uint32_t num_cells() const noexcept {
    return static_cast<std::uint32_t>(cells_.size());
  }

  static constexpr Value kMaxValue = (Value{1} << 60) - 1;
  static constexpr Value kMinValue = -(Value{1} << 60);

 private:
  using Word = std::uintptr_t;

  enum class Status : std::uintptr_t { kUndecided = 0, kSucceeded, kFailed };

  struct McasDescriptor;

  struct RdcssDescriptor {
    std::atomic<std::uintptr_t>* control = nullptr;  // MCAS status cell
    std::uintptr_t expected_control = 0;             // kUndecided
    std::atomic<Word>* cell = nullptr;
    Word expected = 0;  // value-tagged
    Word desired = 0;   // MCAS-descriptor-tagged
  };

  struct McasDescriptor {
    std::atomic<std::uintptr_t> status{
        static_cast<std::uintptr_t>(Status::kUndecided)};
    std::vector<McasWord> words;  // sorted by index
  };

  static constexpr Word kTagMask = 3;
  static constexpr Word kRdcssTag = 1;
  static constexpr Word kMcasTag = 2;

  static Word pack_value(Value v);
  static Value unpack_value(Word w) noexcept;
  static bool is_rdcss(Word w) noexcept { return (w & kTagMask) == kRdcssTag; }
  static bool is_mcas(Word w) noexcept { return (w & kTagMask) == kMcasTag; }

  [[nodiscard]] RdcssDescriptor* as_rdcss(Word w) const noexcept {
    return reinterpret_cast<RdcssDescriptor*>(w & ~kTagMask);
  }
  [[nodiscard]] McasDescriptor* as_mcas(Word w) const noexcept {
    return reinterpret_cast<McasDescriptor*>(w & ~kTagMask);
  }
  static Word tag_rdcss(RdcssDescriptor* d) noexcept {
    return reinterpret_cast<Word>(d) | kRdcssTag;
  }
  static Word tag_mcas(McasDescriptor* d) noexcept {
    return reinterpret_cast<Word>(d) | kMcasTag;
  }

  /// HFP Figure 2: returns the prior content of d->cell (a value-tagged
  /// word or an MCAS descriptor tag -- never an RDCSS tag).
  Word rdcss(RdcssDescriptor* d);
  void rdcss_complete(RdcssDescriptor* d);
  /// HFP Figure 3: drives `d` to completion (possibly helping); returns
  /// whether it succeeded.
  bool mcas_help(ProcId proc, McasDescriptor* d);

  std::vector<runtime::PaddedAtomic<Word>> cells_;
  // Owner-only appenders; deque keeps descriptor addresses stable.
  struct alignas(runtime::kCacheLine) Arena {
    std::deque<McasDescriptor> mcas;
    std::deque<RdcssDescriptor> rdcss;
  };
  std::vector<Arena> arenas_;
};

}  // namespace ruco::kcas
