// Op: the coroutine type of simulated operations.
//
// A process in the simulated shared-memory system is a coroutine that
// suspends at every shared-memory primitive (read / write / CAS awaitables
// on sim::Ctx).  While suspended, the primitive it is about to apply is the
// process's *enabled event* (Section 2 of the paper) -- visible to
// schedulers and adversaries before it executes.  System::step applies the
// primitive and resumes the coroutine until its next suspension.
//
// Ops compose: an Op may `co_await` another Op (e.g. a counter increment
// awaiting WriteMax on an internal max register).  Suspension always
// propagates to the scheduler from the innermost primitive; completion of an
// inner Op transfers control back to its awaiter symmetrically.
//
// Coroutine frames cannot be copied or rewound, which shapes the model
// checker: interior states are reconstructed by replay, and System::reset
// restores a System to its initial state by destroying every process's Op
// chain and respawning it (the exploration engine's backtrack primitive --
// see ruco/sim/model_checker.h).  The enabled event, by contrast, IS
// inspectable before a step runs; the engine's independence relation is
// computed entirely from pairs of enabled events.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "ruco/core/types.h"

namespace ruco::sim {

class [[nodiscard]] Op {
 public:
  struct promise_type {
    Value result = 0;
    std::exception_ptr error;
    std::coroutine_handle<> continuation;  // awaiting outer op, if any

    Op get_return_object() {
      return Op{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // Lazily started: the System (or an awaiting outer op) resumes us.
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Hand control back to the awaiting op, or to System::step's
        // resume() call for a top-level op.
        const auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(Value v) noexcept { result = v; }
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  Op() = default;
  Op(Op&& other) noexcept : handle_{std::exchange(other.handle_, {})} {}
  Op& operator=(Op&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;
  ~Op() {
    if (handle_) handle_.destroy();
  }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] bool done() const noexcept { return handle_.done(); }

  /// Starts or continues the coroutine (top-level use by System only).
  void resume_from_system() { handle_.resume(); }

  /// co_return value; rethrows if the op ended with an exception.
  [[nodiscard]] Value result() const {
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    return handle_.promise().result;
  }

  /// Awaiting an Op runs it as a sub-operation of the current coroutine.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> inner;
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> outer) noexcept {
        inner.promise().continuation = outer;
        return inner;  // symmetric transfer: start the sub-op
      }
      Value await_resume() {
        if (inner.promise().error) {
          std::rethrow_exception(inner.promise().error);
        }
        return inner.promise().result;
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Op(std::coroutine_handle<promise_type> h) noexcept : handle_{h} {}

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace ruco::sim
