// Wait-freedom certification under crash faults.  The paper's bounds are
// wait-free: every surviving process finishes its operation in a bounded
// number of its own steps regardless of how the others are scheduled --
// including being crashed mid-operation.  The certifier makes that an
// executable check: it subjects a sim::Program to
//
//   (1) a deterministic *crash sweep* -- for every process p and every
//       prefix length k of p's fault-free execution, one schedule in which
//       p crashes after exactly k of its own steps, and
//
//   (2) seeded random *crash storms* -- up to f < N crashes placed by a
//       FaultPlan under a randomized scheduler,
//
// and asserts that in every resulting schedule all surviving processes
// complete within the per-process step bound.  A blocking algorithm fails
// loudly: crash the lock holder and the survivors spin past any bound
// (LockMaxRegister's sim twin is the negative control in the tests).
//
// Certification is a *refutation* check, not a proof: it certifies the
// bound over the generated crash schedules (deterministic and replayable
// for fixed options), the way the adversary drivers certify the lower
// bounds over their constructed executions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ruco/sim/fault.h"
#include "ruco/sim/system.h"

namespace ruco::sim {

/// Heartbeat sample for long certification runs (rucosim certify
/// --progress).  schedules_done counts completed fault schedules across all
/// workers; schedules_total is fixed once the job list is built.
struct CertifyProgress {
  std::uint64_t schedules_done = 0;
  std::uint64_t schedules_total = 0;
  double wall_ms = 0.0;
  double schedules_per_sec = 0.0;
};

struct WaitFreedomOptions {
  /// Per-process step bound the survivors must meet.  0 = auto-calibrate:
  /// run the program fault-free under round-robin and use
  /// `slack * max_p steps(p)` -- sound for the wait-free algorithms here,
  /// whose contended step counts are within a small factor of fair-run
  /// counts, and still failed by blocking algorithms, which spin
  /// unboundedly once the lock holder crashes.
  std::uint64_t step_bound = 0;
  std::uint64_t slack = 4;

  /// Crash sweep: for each process p, crash p after k own steps for every
  /// k in [0, min(sweep_steps, p's fault-free step count)].
  std::uint64_t sweep_steps = 16;

  /// Random crash storms: this many seeds (0 disables), each crashing up
  /// to `max_crashes` processes (capped at N-1) with the given per-step
  /// probability.
  std::uint64_t storm_seeds = 8;
  std::uint32_t max_crashes = UINT32_MAX;
  std::uint32_t crash_per_mille = 100;

  /// Backstop schedule budget; exhausting it with survivors still active
  /// is itself a certification failure (a blocked survivor).
  std::uint64_t max_schedule_steps = 1u << 20;

  /// Worker threads for the sweep and storm phases (each schedule is an
  /// independent job on its own System).  The report is deterministic for
  /// any value: jobs are claimed in ascending order through
  /// ruco/sim/parallel.h, so the first failure, the schedule count and the
  /// worst-survivor aggregate match the sequential run.  1 = sequential.
  std::uint32_t jobs = 1;

  /// Progress heartbeat: fires (serialized, from worker threads) every
  /// `progress_interval` completed schedules.  Purely observational -- the
  /// report is byte-identical with or without it.  Null = silent.
  std::function<void(const CertifyProgress&)> on_progress;
  std::uint64_t progress_interval = 64;
};

struct WaitFreedomReport {
  bool certified = true;
  std::uint64_t schedules = 0;
  std::uint64_t step_bound = 0;  // the bound certified against
  /// Largest per-process step count any survivor needed, over all
  /// schedules (the quantity bench_crash_storm plots against crash count).
  std::uint64_t worst_survivor_steps = 0;
  /// First violation: which schedule, which process, what went wrong.
  std::string message;
};

[[nodiscard]] WaitFreedomReport certify_wait_freedom(
    const Program& program, const WaitFreedomOptions& options = {});

}  // namespace ruco::sim
