// The paper's asynchronous shared-memory system, executable (Section 2):
// N processes apply read / write / CAS primitives to base objects; each
// suspended process exposes its single enabled event; a scheduler (or
// adversary) decides who steps next.  The system maintains, online, the
// paper's information-flow bookkeeping:
//
//   * invisible events (Definition 1) -- a value-preserving event, or a
//     write immediately overwritten before anyone (including its issuer)
//     observes it;
//   * awareness sets AW(p, E) (Definitions 2-3) -- who p has (transitively)
//     heard of through visible events;
//   * familiarity sets F(o, E) (Definition 4) -- whose existence is recorded
//     in o through events currently visible on it.
//
// The update rules are exactly those used in the proof of Lemma 1:
//   read / any CAS by p on o:    AW(p) |= F(o)
//   visible write / CAS by p on o: F(o) |= AW(p)   (a contribution that is
//     retracted if a write is immediately overwritten per Definition 1)
// making the tracked sets a (tight) superset of the definitional ones; the
// tests cross-check them against an offline recomputation from the trace.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/event.h"
#include "ruco/sim/op.h"
#include "ruco/sim/proc_set.h"

namespace ruco::sim {

class System;

/// Per-process capability object handed to operation coroutines.  All
/// shared-memory access of a simulated algorithm flows through its Ctx.
class Ctx {
 public:
  [[nodiscard]] ProcId id() const noexcept { return id_; }

  /// Awaitables: each one is a single step (shared-memory event).
  [[nodiscard]] auto read(ObjectId o) noexcept;
  [[nodiscard]] auto write(ObjectId o, Value v) noexcept;
  /// Resolves to 1 if the CAS succeeded, 0 otherwise (the CAS primitive of
  /// Section 2 returns only true/false).
  [[nodiscard]] auto cas(ObjectId o, Value expected, Value desired) noexcept;
  /// k-word CAS (reference [6]'s stronger primitive): succeeds -- resolving
  /// to 1 -- iff every entry matches its expected value, atomically
  /// installing all desired values.  One step.  Throws
  /// std::invalid_argument on an empty entry list (a 0-CAS is not an event
  /// on any object and would otherwise silently target object 0).
  [[nodiscard]] auto kcas(std::vector<KcasEntry> entries);

  /// History annotations for the linearizability checker; not steps.
  /// mark_invoke is *deferred*: the invocation is timestamped when this
  /// process takes its next step, because an operation's interval in the
  /// model begins with its first shared-memory event (processes are
  /// spawned with their first operation already pending, and stamping at
  /// spawn time would make every first operation look concurrent with the
  /// entire execution).  mark_return stamps immediately (it runs in the
  /// same resume as the operation's last step).
  void mark_invoke(std::string_view op, Value arg);
  void mark_return(Value ret);
  /// Vector-result return (Scan operations).
  void mark_return_vec(std::vector<Value> ret);

 private:
  friend class System;
  friend struct PrimAwaiter;
  System* sys_ = nullptr;
  ProcId id_ = 0;
};

/// Operation-boundary records interleaved with the step trace, consumed by
/// lincheck.  `time` is a position in the system-wide sequence of steps and
/// annotations, so invocation/response order reflects real precedence.
struct HistoryEvent {
  enum class Kind : std::uint8_t { kInvoke, kReturn };
  ProcId proc = 0;
  Kind kind = Kind::kInvoke;
  std::string op;   // operation name at kInvoke; empty at kReturn
  Value value = 0;  // argument at kInvoke; return value at kReturn
  std::vector<Value> vec;  // vector return value (Scan), else empty
  std::uint64_t time = 0;
};

/// An immutable description of a finite system: base objects with initial
/// values and process bodies.  A Program can be instantiated into many
/// Systems (replay after erasure, model checking) -- bodies must therefore
/// be pure: all cross-operation state lives in base objects.
class Program {
 public:
  ObjectId add_object(Value initial);
  /// Adds a process; returns its id (dense, in spawn order).
  ProcId add_process(std::function<Op(Ctx&)> body);
  /// Footprint-declaring overload for the model checker's persistent-set
  /// filter.  The declaration is a *promise* about the body under every
  /// schedule: (1) it only ever accesses base objects in `footprint`, and
  /// (2) it performs at most one history-annotated operation (one
  /// mark_invoke).  The System enforces both at runtime (std::logic_error
  /// on violation), so a wrong declaration fails loudly instead of letting
  /// the checker prune unsoundly.  `footprint` must be non-empty.
  ProcId add_process(std::function<Op(Ctx&)> body,
                     std::vector<ObjectId> footprint);

  /// True iff p was added with a declared footprint.
  [[nodiscard]] bool has_footprint(ProcId p) const noexcept {
    return !footprints_[p].empty();
  }
  /// Sorted, deduplicated declared footprint (empty = undeclared).
  [[nodiscard]] const std::vector<ObjectId>& footprint(ProcId p) const {
    return footprints_[p];
  }

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return object_init_.size();
  }
  [[nodiscard]] std::size_t num_processes() const noexcept {
    return bodies_.size();
  }

 private:
  friend class System;
  std::vector<Value> object_init_;
  std::vector<std::function<Op(Ctx&)>> bodies_;
  std::vector<std::vector<ObjectId>> footprints_;  // empty = undeclared
};

/// One scheduler decision, recorded (in order) when the decision log is
/// enabled: which process was driven, and how.  Telemetry for rucosim and
/// the trace exporters -- the model checker never enables it.
struct SchedDecision {
  enum class Kind : std::uint8_t { kStep, kCrash, kSpurious };
  Kind kind = Kind::kStep;
  ProcId proc = 0;
};

class System {
 public:
  /// `program` must outlive the System (reset() respawns from it).
  explicit System(const Program& program);
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Rewinds to the initial state of the same Program, reusing every
  /// allocation it can (object table, process table, trace/history
  /// capacity, ProcSet words).  Coroutine frames cannot be rewound, so the
  /// process bodies are destroyed and respawned -- but that is the *only*
  /// unavoidable per-reset allocation, which makes reset() much cheaper
  /// than constructing a fresh System.  The replay-light model checker
  /// calls this on every backtrack, so it is on the hot path.
  void reset();

  /// Applies the enabled event of process p and runs p to its next
  /// suspension (or completion).  Returns false iff p has no enabled event
  /// (already completed or crashed).
  bool step(ProcId p);

  /// Crash fault: permanently halts p.  Its coroutine chain is destroyed,
  /// its enabled event is discarded (never applied), and its in-flight
  /// operation becomes a Herlihy-Wing *pending* operation in the recorded
  /// history -- the linearizability search may linearize it (its effect may
  /// have landed) or drop it (it may never have become visible).  An
  /// operation that crashed before its first step never appears in the
  /// history at all (its deferred mark_invoke is discarded): in the model
  /// an operation's interval begins at its first shared-memory event.
  /// No trace event is recorded -- a crash is not a shared-memory step, and
  /// the surviving prefix replays unchanged (Lemma 2 discipline).
  /// Returns false iff p had no enabled event (completed or crashed).
  bool crash(ProcId p);

  /// Spurious weak-CAS fault: applies p's enabled event -- which must be a
  /// single-word CAS -- as a *failure* regardless of the object's current
  /// value, the way an LL/SC-backed compare_exchange_weak may fail.  One
  /// step: the event is recorded (with Event::spurious set), the CAS still
  /// counts as an observation of the object for the knowledge tracker, and
  /// p resumes with result 0.  Returns false iff p has no enabled event or
  /// its enabled event is not a kCas.
  bool step_spurious(ProcId p);

  /// p has an enabled event.
  [[nodiscard]] bool active(ProcId p) const {
    return procs_[p].has_pending;
  }
  /// The enabled event of p, or nullptr if p completed.
  [[nodiscard]] const Pending* enabled(ProcId p) const {
    return procs_[p].has_pending ? &procs_[p].pending : nullptr;
  }
  /// Would p's enabled event change its target object's value right now?
  /// (Triviality pre-classification used by Lemma 1 and Lemma 4 case 2.)
  [[nodiscard]] bool pending_would_change(ProcId p) const;

  /// p's next step would stamp a deferred mark_invoke into the history.
  /// Knowable *before* the step -- the model checker's independence
  /// relation treats such steps as dependent with everything, because the
  /// invoke timestamp orders p's operation against every other operation's
  /// response (see docs/MODEL.md, "Independence and the history").
  [[nodiscard]] bool will_flush_invoke(ProcId p) const noexcept {
    return procs_[p].invoke_buffered;
  }

  /// Cached set of active processes (those with an enabled event),
  /// maintained incrementally by the constructor, step, step_spurious and
  /// crash.  Lets schedulers and the model checker scan the ready set in
  /// O(live/64) instead of O(N) per node.
  [[nodiscard]] const ProcSet& active_set() const noexcept { return active_; }
  /// |active_set()| in O(1).
  [[nodiscard]] std::uint32_t live_count() const noexcept {
    return live_count_;
  }
  /// Every process completed or crashed, in O(1).
  [[nodiscard]] bool all_done() const noexcept { return live_count_ == 0; }

  /// p will never step again: completed *or* crashed (check crashed(p) to
  /// tell the two apart).
  [[nodiscard]] bool done(ProcId p) const { return !procs_[p].has_pending; }
  /// p was halted by a crash fault.
  [[nodiscard]] bool crashed(ProcId p) const { return procs_[p].crashed; }
  /// Number of crash faults injected so far.
  [[nodiscard]] std::uint32_t crash_count() const noexcept {
    return crash_count_;
  }
  /// Result of p's (completed) top-level op; rethrows its exception.
  /// Throws std::logic_error for a crashed process (its op never returned).
  [[nodiscard]] Value result(ProcId p) const;

  [[nodiscard]] Value value(ObjectId o) const { return objects_[o].value; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const std::vector<HistoryEvent>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] const ProcSet& awareness(ProcId p) const {
    return procs_[p].aw;
  }
  [[nodiscard]] const ProcSet& familiarity(ObjectId o) const {
    return objects_[o].fam;
  }
  [[nodiscard]] std::uint64_t steps_taken(ProcId p) const {
    return procs_[p].steps;
  }
  [[nodiscard]] std::size_t num_processes() const noexcept {
    return procs_.size();
  }
  [[nodiscard]] std::size_t num_objects() const noexcept {
    return objects_.size();
  }
  /// M(E) of Lemma 1: the maximum size over all awareness and familiarity
  /// sets, recomputed exactly (O(processes + objects) set counts).
  [[nodiscard]] std::size_t max_knowledge() const;

  /// Opt-in scheduler-decision log: when enabled, every successful step,
  /// crash and spurious-CAS records a SchedDecision.  Off by default (and
  /// cleared by reset()) so the model checker's hot path stays untouched.
  void enable_decision_log(bool on) noexcept {
    decision_log_enabled_ = on;
  }
  [[nodiscard]] const std::vector<SchedDecision>& decision_log()
      const noexcept {
    return decisions_;
  }

  /// High-water mark of M over the whole run, maintained incrementally in
  /// O(1) per step.  Since knowledge sets only ever grow (familiarity
  /// retraction can shrink one object's set, but never above the mark),
  /// the mark equals max over prefixes of M(E_prefix) -- the quantity
  /// Lemma 1's 3^j invariant bounds.  Preferred by the large-N adversary
  /// benchmarks, where exact recomputation per round would dominate.
  [[nodiscard]] std::size_t max_knowledge_seen() const noexcept {
    return knowledge_high_water_;
  }

 private:
  friend class Ctx;

  static constexpr std::uint64_t kNoEvent = UINT64_MAX;

  struct ObjectState {
    Value value = 0;
    ProcSet fam;  // cached union of contributions
    struct Contribution {
      std::uint64_t event_index;
      ProcId proc;
      ProcSet aw;  // AW(issuer) at event time (Definition 4's E1e prefix)
    };
    std::vector<Contribution> contribs;
    std::uint64_t last_access = kNoEvent;  // trace index of last event on o
  };

  struct ProcState {
    Ctx ctx;
    Op op;
    std::coroutine_handle<> resume_point;  // innermost suspended coroutine
    Pending pending;
    bool has_pending = false;
    bool crashed = false;
    Value prim_result = 0;
    ProcSet aw;
    std::uint64_t steps = 0;
    std::uint64_t last_step = kNoEvent;  // trace index of p's last event
    // Deferred mark_invoke, flushed at this process's next step.
    bool invoke_buffered = false;
    std::string buffered_op;
    Value buffered_arg = 0;
    // mark_invoke calls so far; footprint-declared processes promise <= 1.
    std::uint32_t invokes = 0;
  };

  void flush_invoke(ProcId p);

  void post_pending(ProcId p, const Pending& pending,
                    std::coroutine_handle<> resume_point);
  [[nodiscard]] Value take_result(ProcId p) const {
    return procs_[p].prim_result;
  }
  void apply(ProcId p, const Pending& pending);
  void retract_overwritten(ObjectState& os);
  void rebuild_familiarity(ObjectState& os);

  void check_footprint(ProcId p, const Pending& pending) const;

  const Program* program_ = nullptr;
  std::vector<ObjectState> objects_;
  std::vector<ProcState> procs_;
  ProcSet active_;  // cached {p : has_pending}; see active_set()
  std::uint32_t live_count_ = 0;
  Trace trace_;
  std::vector<HistoryEvent> history_;
  std::uint64_t clock_ = 0;  // advances on every step and annotation
  std::size_t knowledge_high_water_ = 1;  // every AW starts at {self}
  std::uint32_t crash_count_ = 0;
  bool decision_log_enabled_ = false;
  std::vector<SchedDecision> decisions_;

  friend struct PrimAwaiter;
};

/// Awaitable for one shared-memory primitive.
struct PrimAwaiter {
  Ctx* ctx;
  Pending pending;

  bool await_ready() noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    ctx->sys_->post_pending(ctx->id_, pending, h);
  }
  [[nodiscard]] Value await_resume() noexcept {
    return ctx->sys_->take_result(ctx->id_);
  }
};

inline auto Ctx::read(ObjectId o) noexcept {
  return PrimAwaiter{this, Pending{o, Prim::kRead, 0, 0, {}}};
}
inline auto Ctx::write(ObjectId o, Value v) noexcept {
  return PrimAwaiter{this, Pending{o, Prim::kWrite, v, 0, {}}};
}
inline auto Ctx::cas(ObjectId o, Value expected, Value desired) noexcept {
  return PrimAwaiter{this, Pending{o, Prim::kCas, desired, expected, {}}};
}
inline auto Ctx::kcas(std::vector<KcasEntry> entries) {
  if (entries.empty()) {
    throw std::invalid_argument{"Ctx::kcas: empty entry list"};
  }
  Pending pending;
  pending.prim = Prim::kKcas;
  pending.obj = entries.front().obj;
  pending.kcas = std::move(entries);
  return PrimAwaiter{this, std::move(pending)};
}

/// Re-executes `script` on a fresh system by stepping each event's process
/// in order, checking that every process performs the same actions -- and,
/// with `check_responses`, receives the same responses -- as recorded.
/// This is the executable form of Lemma 2 / Claim 1: a trace with hidden
/// processes removed must replay as a legal execution indistinguishable to
/// the survivors.
struct ReplayResult {
  bool ok = true;
  std::size_t mismatch_index = 0;
  std::string message;
};
ReplayResult replay_trace(System& fresh, const Trace& script,
                          bool check_responses);

}  // namespace ruco::sim
