// Deterministic ordered job pool for the exploration engine and the
// certification sweeps.
//
// Jobs are identified by a dense index [0, count).  Workers *steal work by
// claiming*: each idle worker grabs the next unclaimed index from a shared
// atomic counter, so load balances itself without per-thread deques (the
// jobs are coarse -- whole DFS subtrees or whole fault schedules -- which
// makes a single counter contention-free in practice).
//
// The protocol is designed so that results can be merged deterministically
// regardless of thread count or timing:
//
//   * indexes are claimed in ascending order;
//   * when fn(i) returns false ("stop"), no index > i is started afterwards,
//     while already-started lower indexes run to completion;
//   * therefore the smallest stopping index w is deterministic, and every
//     index <= w is guaranteed to have run -- a merge that scans results in
//     index order and stops at the first recorded failure sees exactly what
//     a sequential loop would have seen.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace ruco::sim {

/// Runs fn(i) for i in [0, count) across up to `threads` workers (1 =
/// inline sequential loop, bit-identical to `for (...) if (!fn(i)) break`).
/// `fn` must be safe to call concurrently on distinct indexes.
template <typename Fn>
void run_ordered_jobs(std::size_t count, std::uint32_t threads, Fn&& fn) {
  if (count == 0) return;
  threads = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(threads,
                                 static_cast<std::uint32_t>(
                                     std::min<std::size_t>(count, UINT32_MAX))));
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (!fn(i)) break;
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> stop_at{count};  // no index >= stop_at may start
  auto worker = [&next, &stop_at, &fn] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= stop_at.load(std::memory_order_acquire)) break;
      if (!fn(i)) {
        // Clamp the start horizon to i+1.  stop_at only ever decreases, so
        // any index claimed before the clamp and below the final horizon
        // still runs -- exactly the determinism guarantee above.
        std::size_t cur = stop_at.load(std::memory_order_relaxed);
        while (cur > i + 1 &&
               !stop_at.compare_exchange_weak(cur, i + 1,
                                              std::memory_order_release)) {
        }
        break;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
}

}  // namespace ruco::sim
