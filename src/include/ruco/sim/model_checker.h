// Exhaustive (and budgeted) interleaving exploration over a sim::Program:
// a small stateless model checker.  Every schedule of the program's
// processes is enumerated by depth-first search; after each complete
// execution a user predicate checks the final system (typically:
// linearizability of the recorded history, via ruco::lincheck).
//
// Exploration replays prefixes on fresh Systems (coroutine state cannot be
// snapshotted), so cost is O(paths * length^2) -- intended for the
// paper-sized configurations (2-4 processes, a handful of steps each) where
// it is exhaustive within milliseconds.  For bigger programs, set
// `max_executions` to sample the first k schedules in DFS order, or use the
// random scheduler with many seeds instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/system.h"

namespace ruco::sim {

struct ModelCheckOptions {
  /// Stop after this many complete executions (0 = unlimited).
  std::uint64_t max_executions = 0;
  /// Safety valve: abort any single execution longer than this many steps
  /// (catches accidental non-termination under some schedule).
  std::uint64_t max_depth = 10'000;
  /// Iterative context bounding (Musuvathi & Qadeer, PLDI'07): explore only
  /// schedules with at most this many *preemptions* (switching away from a
  /// process that could still run).  Switching at completion is free.
  /// Most concurrency bugs manifest within 1-2 preemptions -- Algorithm A's
  /// early-return gap needs exactly 1 -- while the schedule count drops
  /// from exponential to polynomial, letting programs far beyond the
  /// exhaustive checker's reach be covered systematically.
  /// kUnbounded = classic full exploration.
  static constexpr std::uint32_t kUnbounded = UINT32_MAX;
  std::uint32_t preemption_bound = kUnbounded;
  /// Crash-fault exploration: "crash process p here" becomes an additional
  /// nondeterministic choice at every scheduling point, for every active
  /// process, up to this many crashes per execution (the paper's f < N,
  /// bounded like the preemption bound above).  A crash permanently halts
  /// the process and leaves its in-flight operation pending in the history
  /// -- the linearizability verdict must accept it committed-or-dropped
  /// (Herlihy & Wing).  Crash choices never consume preemption budget: a
  /// crash is the adversary failing a process, not scheduling it, and the
  /// bounded search must stay a superset of the crash-free one.  0 = no
  /// crashes (classic behavior).
  std::uint32_t max_crashes = 0;
};

/// Schedules (and counterexamples) encode a crash of process p as
/// `p | kCrashChoice`; plain entries are ordinary steps.
inline constexpr ProcId kCrashChoice = 0x8000'0000u;
[[nodiscard]] constexpr bool is_crash_choice(ProcId choice) noexcept {
  return (choice & kCrashChoice) != 0;
}
[[nodiscard]] constexpr ProcId choice_proc(ProcId choice) noexcept {
  return choice & ~kCrashChoice;
}

struct ModelCheckResult {
  bool ok = true;
  bool exhaustive = true;  // false if max_executions cut exploration short
  std::uint64_t executions = 0;
  /// On failure: the offending schedule (crash choices encoded per
  /// kCrashChoice) and a rendering of its trace.
  std::vector<ProcId> counterexample;
  std::string message;
};

/// `verdict(sys)` returns an empty string to accept the completed execution
/// or a diagnostic to reject it (recorded in the result).
using Verdict = std::function<std::string(const System&)>;

[[nodiscard]] ModelCheckResult model_check(const Program& program,
                                           const Verdict& verdict,
                                           const ModelCheckOptions& options);

[[nodiscard]] inline ModelCheckResult model_check(const Program& program,
                                                  const Verdict& verdict) {
  return model_check(program, verdict, ModelCheckOptions{});
}

/// Renders a schedule's full trace by replaying it -- used to print
/// counterexamples.
[[nodiscard]] std::string render_schedule(const Program& program,
                                          const std::vector<ProcId>& schedule);

}  // namespace ruco::sim
