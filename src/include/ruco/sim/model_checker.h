// Exhaustive (and budgeted) interleaving exploration over a sim::Program:
// a small stateless model checker, rearchitected as an exploration engine.
//
// Every schedule of the program's processes is enumerated by depth-first
// search; after each complete execution a user predicate checks the final
// system (typically: linearizability of the recorded history, via
// ruco::lincheck).  Three independent mechanisms keep it fast:
//
//   * Replay-light DFS.  Coroutine state cannot be snapshotted, so a
//     stateless checker must reconstruct interior states by replay -- but
//     it need not do so per node.  The engine keeps ONE live System per
//     worker, walks forward along the current branch for free, and
//     replays (System::reset + prefix) only when backtracking to take a
//     sibling.  Amortized cost drops from O(paths * length^2) -- the old
//     fresh-System-per-node recursion -- to O(paths * length), with the
//     per-node System construction eliminated entirely.
//
//   * Partial-order reduction (opts.por): Godefroid-style sleep sets over
//     a conditional independence relation computed from each process's
//     *enabled* event (object footprint + would-it-change-a-value), plus a
//     conservative persistent-set filter for programs whose processes
//     declare object footprints (Program::add_process overload).  Two
//     enabled steps commute iff they touch disjoint objects, or share
//     objects but neither would change a value; a step that will stamp a
//     deferred operation invocation is dependent with everything (the
//     stamp orders that operation against every response -- see
//     docs/MODEL.md); crash choices commute with everything except their
//     own process's steps.  Sound for verdicts that depend only on the
//     linearization-relevant view of the run (recorded history up to
//     commuting reorders, per-process results, final object values) --
//     true of every lincheck-based verdict in this repo.  POR is applied
//     only when preemption_bound == kUnbounded: sleep sets prune a
//     schedule in favor of an equivalent one with a possibly *different*
//     preemption count, which could push the kept representative outside
//     the bound and silently lose coverage.
//
//   * Parallel exploration (opts.jobs): a fixed-depth frontier split.  The
//     engine expands the DFS tree breadth-first to a small frontier, then
//     distributes the subtree roots (in DFS order) across worker threads
//     via ruco/sim/parallel.h.  Verdicts, counterexample traces and -- for
//     runs that complete -- execution counts are identical for every jobs
//     value: workers claim roots in ascending order and a failure at root
//     r prevents roots beyond r from starting, so the winning
//     counterexample is the DFS-first one regardless of timing.
//
// With jobs == 1 and por == false (the defaults) the engine visits the
// exact node sequence of the classic recursive checker.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/system.h"

namespace ruco::sim {

struct ModelCheckOptions {
  /// Stop after this many complete executions (0 = unlimited).
  std::uint64_t max_executions = 0;
  /// Safety valve: abort any single execution longer than this many steps
  /// (catches accidental non-termination under some schedule).
  std::uint64_t max_depth = 10'000;
  /// Iterative context bounding (Musuvathi & Qadeer, PLDI'07): explore only
  /// schedules with at most this many *preemptions* (switching away from a
  /// process that could still run).  Switching at completion is free.
  /// Most concurrency bugs manifest within 1-2 preemptions -- Algorithm A's
  /// early-return gap needs exactly 1 -- while the schedule count drops
  /// from exponential to polynomial, letting programs far beyond the
  /// exhaustive checker's reach be covered systematically.
  /// kUnbounded = classic full exploration.
  static constexpr std::uint32_t kUnbounded = UINT32_MAX;
  std::uint32_t preemption_bound = kUnbounded;
  /// Crash-fault exploration: "crash process p here" becomes an additional
  /// nondeterministic choice at every scheduling point, for every active
  /// process, up to this many crashes per execution (the paper's f < N,
  /// bounded like the preemption bound above).  A crash permanently halts
  /// the process and leaves its in-flight operation pending in the history
  /// -- the linearizability verdict must accept it committed-or-dropped
  /// (Herlihy & Wing).  Crash choices never consume preemption budget: a
  /// crash is the adversary failing a process, not scheduling it, and the
  /// bounded search must stay a superset of the crash-free one.  0 = no
  /// crashes (classic behavior).
  std::uint32_t max_crashes = 0;
  /// Partial-order reduction (header comment above).  Ignored -- with
  /// ModelCheckStats::por_effective reporting false -- unless
  /// preemption_bound == kUnbounded.
  bool por = false;
  /// Worker threads.  1 = sequential exploration in legacy DFS order.
  /// With > 1, verdicts and counterexamples stay deterministic; execution
  /// counts are deterministic whenever the run completes or is cut by
  /// max_executions (the budget is reserved from a shared counter), while
  /// per-worker stats like node counts may vary run to run.
  std::uint32_t jobs = 1;
  /// Parallel frontier split depth; 0 = auto (scaled to jobs).  Exposed
  /// for tests that pin the split.
  std::uint32_t frontier_depth = 0;
  /// kIterative is the replay-light engine above; kLegacyRecursive is the
  /// original fresh-System-per-node recursion, kept as a differential
  /// oracle for tests and benchmarks (it ignores por/jobs).
  enum class Engine : std::uint8_t { kIterative, kLegacyRecursive };
  Engine engine = Engine::kIterative;
  /// Exploration telemetry hook (heartbeat); nullptr = zero overhead.
  /// The pointed-to struct must outlive the model_check call.
  const struct ModelCheckTelemetry* telemetry = nullptr;
};

/// A progress sample delivered to ModelCheckTelemetry::on_progress.
/// `executions` and `wall_ms` are global (shared across workers);
/// the remaining counters are the *calling worker's* local view -- exact
/// with jobs == 1, a representative sample with jobs > 1.
struct ModelCheckProgress {
  std::uint64_t executions = 0;  // complete executions so far (global)
  double wall_ms = 0.0;          // since model_check started
  double executions_per_sec = 0.0;
  std::uint64_t nodes = 0;
  std::uint64_t sleep_pruned = 0;
  std::uint64_t persistent_pruned = 0;
  std::uint64_t replays = 0;
  std::uint64_t current_depth = 0;  // depth of the execution just completed
};

/// Periodic exploration heartbeat: on_progress fires (serialized under an
/// internal mutex, from whichever worker completes the triggering
/// execution) every `interval_executions` complete executions.  The hook
/// adds one shared atomic increment per complete execution and nothing per
/// node, so it does not perturb exploration determinism -- executions and
/// prune counts are byte-identical with and without it (telemetry_test
/// asserts this).
struct ModelCheckTelemetry {
  std::uint64_t interval_executions = 10'000;
  std::function<void(const ModelCheckProgress&)> on_progress;
};

/// Schedules (and counterexamples) encode a crash of process p as
/// `p | kCrashChoice`; plain entries are ordinary steps.
inline constexpr ProcId kCrashChoice = 0x8000'0000u;
[[nodiscard]] constexpr bool is_crash_choice(ProcId choice) noexcept {
  return (choice & kCrashChoice) != 0;
}
[[nodiscard]] constexpr ProcId choice_proc(ProcId choice) noexcept {
  return choice & ~kCrashChoice;
}

/// Why exploration stopped -- set in exactly one place per engine, so
/// budget exhaustion can never be confused with a genuine failure (the two
/// used to share a bare `return false`).
enum class StopReason : std::uint8_t {
  kComplete,        // explored the whole (possibly reduced) schedule space
  kBudget,          // max_executions reached
  kCounterexample,  // verdict rejected an execution, or max_depth exceeded
};

/// Exploration counters, summed across workers.
struct ModelCheckStats {
  std::uint64_t nodes = 0;           // scheduling points visited
  std::uint64_t applied_steps = 0;   // forward steps/crashes applied
  std::uint64_t replays = 0;         // System resets on backtrack
  std::uint64_t replayed_steps = 0;  // steps re-applied by those replays
  std::uint64_t sleep_pruned = 0;    // choices skipped by sleep sets
  std::uint64_t persistent_pruned = 0;  // choices deferred by the filter
  std::uint64_t frontier_roots = 0;  // parallel subtree roots (0 = no split)
  bool por_effective = false;        // por requested AND applicable
  std::uint32_t jobs_used = 1;
  double wall_ms = 0.0;
  /// Final-depth histogram over complete executions: bucket d counts
  /// executions that ended after exactly d choices, d in [0, kDepthBuckets);
  /// deeper ones land in the last (overflow) slot.  Size kDepthBuckets + 1
  /// once any execution completed; deterministic whenever `executions` is
  /// (the set of complete executions does not depend on worker timing).
  static constexpr std::size_t kDepthBuckets = 64;
  std::vector<std::uint64_t> depth_hist;
  /// Execution-count balance across the explorer pool (one entry per
  /// explorer; explorers map ~1:1 to worker threads).  Timing-dependent
  /// with jobs > 1, by nature; {executions} with jobs == 1.
  std::vector<std::uint64_t> worker_executions;
};

struct ModelCheckResult {
  /// Derived from `stop` in model_check's epilogue: ok iff no
  /// counterexample; exhaustive iff the run completed (kComplete) without a
  /// preemption bound -- budgeted and context-bounded runs cover a subset
  /// of schedules by design.  POR-reduced complete runs ARE exhaustive:
  /// every pruned schedule is equivalent to an explored one.
  bool ok = true;
  bool exhaustive = true;
  StopReason stop = StopReason::kComplete;
  std::uint64_t executions = 0;
  /// On failure: the offending schedule (crash choices encoded per
  /// kCrashChoice) and a rendering of its trace.
  std::vector<ProcId> counterexample;
  std::string message;
  ModelCheckStats stats;
};

/// `verdict(sys)` returns an empty string to accept the completed execution
/// or a diagnostic to reject it (recorded in the result).  With jobs > 1 it
/// is called concurrently from worker threads (on distinct Systems) and
/// must be thread-safe; the lincheck verdicts are.
using Verdict = std::function<std::string(const System&)>;

[[nodiscard]] ModelCheckResult model_check(const Program& program,
                                           const Verdict& verdict,
                                           const ModelCheckOptions& options);

[[nodiscard]] inline ModelCheckResult model_check(const Program& program,
                                                  const Verdict& verdict) {
  return model_check(program, verdict, ModelCheckOptions{});
}

/// Renders a schedule's full trace by replaying it -- used to print
/// counterexamples.
[[nodiscard]] std::string render_schedule(const Program& program,
                                          const std::vector<ProcId>& schedule);

}  // namespace ruco::sim
