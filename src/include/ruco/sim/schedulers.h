// Generic schedulers over a sim::System: round-robin, seeded-random, solo
// (the obstruction-free completion mode the paper's bounds are stated for)
// and scripted replacement.  The lower-bound *adversarial* schedulers live
// in ruco/adversary.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/system.h"

namespace ruco::sim {

class FaultInjector;

/// Steps processes 0..N-1 cyclically, skipping completed ones, until all
/// complete or `max_steps` total steps were taken.  Returns steps taken.
std::uint64_t run_round_robin(System& sys, std::uint64_t max_steps);

/// Steps a uniformly random active process each time.  Deterministic for a
/// fixed seed.  Returns steps taken.
std::uint64_t run_random(System& sys, std::uint64_t seed,
                         std::uint64_t max_steps);

/// Runs process p alone until it completes (the paper's obstruction-free
/// solo measure) or `max_steps` is hit.  Returns steps taken by p.
std::uint64_t run_solo(System& sys, ProcId p, std::uint64_t max_steps);

/// Steps exactly the given process sequence; returns how many were applied
/// (stops early at the first non-steppable process).
std::uint64_t run_script(System& sys, std::span<const ProcId> script);

/// True iff every process of the system has completed.
[[nodiscard]] bool all_done(const System& sys);

/// PCT — probabilistic concurrency testing (Burckhardt et al., ASPLOS'10):
/// a randomized scheduler with a *guaranteed* probability of exposing any
/// bug of depth d.  Each process gets a random priority; the highest-
/// priority active process runs, except at `depth - 1` pre-chosen random
/// step indices where the running process's priority is demoted below
/// everyone.  For a bug requiring d ordering constraints, one run finds it
/// with probability >= 1/(n * k^(d-1)) -- far better than uniform random
/// for rendezvous bugs like Algorithm A's propagation races, which is what
/// the property tests use it for.
struct PctOptions {
  std::uint64_t seed = 1;
  std::uint32_t depth = 3;            // d: bug depth to target
  std::uint64_t max_steps = 1u << 22;  // k estimate / safety budget
  /// If non-empty, only these processes are scheduled (e.g. racing writers,
  /// with a verifying reader run separately afterwards).
  std::vector<ProcId> only;
};
std::uint64_t run_pct(System& sys, const PctOptions& options);

/// Fault-aware decorations of the three generic schedulers: every step
/// goes through `faults` (see ruco/sim/fault.h), which may crash the
/// selected process or spuriously fail its pending CAS according to its
/// FaultPlan.  A crash consumes the scheduling slot but is NOT a step: it
/// does not count toward `max_steps` / the returned step tally, and -- for
/// run_pct -- does not advance the priority-change-point clock (crashed
/// processes must not burn demotion points).  Crashed processes become
/// inactive and are skipped exactly like completed ones.  Deterministic
/// for fixed scheduler seed + fault plan.
std::uint64_t run_round_robin(System& sys, std::uint64_t max_steps,
                              FaultInjector& faults);
std::uint64_t run_random(System& sys, std::uint64_t seed,
                         std::uint64_t max_steps, FaultInjector& faults);
std::uint64_t run_pct(System& sys, const PctOptions& options,
                      FaultInjector& faults);

}  // namespace ruco::sim
