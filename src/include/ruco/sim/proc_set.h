// Dense process-id set over a fixed universe [0, N): the representation of
// the paper's awareness sets AW(p, E) and familiarity sets F(o, E)
// (Definitions 3-4).  A flat bitset: union and intersection are word-wise,
// which keeps the online awareness tracker cheap even at N = 4096.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ruco/core/types.h"

namespace ruco::sim {

class ProcSet {
 public:
  /// Sentinel returned by next() when no member >= `from` exists.
  static constexpr ProcId kNone = UINT32_MAX;

  ProcSet() = default;
  explicit ProcSet(std::size_t universe)
      : universe_{universe}, words_((universe + 63) / 64, 0) {}

  void add(ProcId p) { words_[p >> 6] |= std::uint64_t{1} << (p & 63); }
  void remove(ProcId p) { words_[p >> 6] &= ~(std::uint64_t{1} << (p & 63)); }
  [[nodiscard]] bool contains(ProcId p) const {
    return (words_[p >> 6] >> (p & 63)) & 1;
  }

  void unite(const ProcSet& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// First member >= `from`, or kNone.  Allocation-free iteration:
  ///   for (ProcId p = s.next(0); p != ProcSet::kNone; p = s.next(p + 1))
  /// Word-wise scan with a countr_zero on the first non-empty word, so a
  /// full sweep costs O(N/64) even when the set is sparse -- this is what
  /// the model checker's per-node ready scans use.
  [[nodiscard]] ProcId next(ProcId from) const noexcept {
    std::size_t w = from >> 6;
    if (w >= words_.size()) return kNone;
    std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (bits != 0) {
        return static_cast<ProcId>((w << 6) + std::countr_zero(bits));
      }
      if (++w >= words_.size()) return kNone;
      bits = words_[w];
    }
  }

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool empty() const;
  [[nodiscard]] bool intersects(const ProcSet& other) const;
  /// Members of this-set intersected with `other`, ascending.
  [[nodiscard]] std::vector<ProcId> intersection(const ProcSet& other) const;
  [[nodiscard]] std::vector<ProcId> members() const;
  [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

  friend bool operator==(const ProcSet&, const ProcSet&) = default;

 private:
  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ruco::sim
