// Offline recomputation of the paper's knowledge sets from a recorded
// trace, independent of the System's online tracker:
//
//   * recompute_knowledge -- final AW(p, E) and F(o, E) per Definitions 1-4,
//     applying the *literal* Definition 1 (any write, trivial or not, hides
//     an immediately-preceding unobserved event on the same object).  The
//     online tracker in sim::System retracts only on value-changing writes,
//     so online sets are a superset; the property tests assert exactly that
//     containment.
//
//   * first_aware_index -- for a target process pi, the index in the trace
//     of each process's first event at or after which pi entered its
//     awareness set.  This is the cut point of Theorem 1's erasure step:
//     "remove all the events of pk starting from the first event of pk that
//     is aware of pi" (proof of Lemma 3).
#pragma once

#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/event.h"
#include "ruco/sim/proc_set.h"

namespace ruco::sim {

struct KnowledgeSets {
  std::vector<ProcSet> awareness;    // per process
  std::vector<ProcSet> familiarity;  // per object
};

[[nodiscard]] KnowledgeSets recompute_knowledge(const Trace& trace,
                                                std::size_t num_processes,
                                                std::size_t num_objects);

inline constexpr std::uint64_t kNeverAware = UINT64_MAX;

/// result[p] = trace index of p's first event after which target is in
/// AW(p), or kNeverAware.  result[target] = index of target's first event
/// (a process is aware of itself from its first step; kNeverAware if it
/// never steps).
[[nodiscard]] std::vector<std::uint64_t> first_aware_index(
    const Trace& trace, std::size_t num_processes, std::size_t num_objects,
    ProcId target);

/// Theorem 1's erased execution: drop all events of `target`, and for every
/// other process drop its events from the first one aware of `target`
/// onwards.  (The survivors are, by Lemma 2, still a legal execution --
/// validated by replay_trace in the tests.)
[[nodiscard]] Trace erase_aware_of(const Trace& trace,
                                   std::size_t num_processes,
                                   std::size_t num_objects, ProcId target);

}  // namespace ruco::sim
