// Human-oriented views of executions: a per-process columnar rendering of
// a trace (the format used in the paper's Figures 1-3 walkthroughs) and a
// Graphviz DOT export of the information-flow (awareness) graph -- which
// processes learned of which, through which objects.
#pragma once

#include <string>

#include "ruco/sim/event.h"
#include "ruco/sim/system.h"

namespace ruco::sim {

struct TraceRenderOptions {
  /// Render at most this many events (0 = all).
  std::size_t max_events = 0;
  /// Mark trivial (invisible) events with a trailing '.'.
  bool mark_trivial = true;
};

/// One line per event, one column per process:
///
///     p0               p1               p2
///     read o3 -> -1
///                      write o5 := 2
///     cas o1(−1->4) ok
///
/// Adversary traces become readable: erased processes simply have empty
/// columns, halted ones stop early.
[[nodiscard]] std::string render_trace(const Trace& trace,
                                       std::size_t num_processes,
                                       const TraceRenderOptions& options = {});

/// DOT digraph of process-level information flow in the execution: an edge
/// q -> p labelled with the object through which p first became aware of q
/// (per the literal Definitions 1-4 recomputation).  Feed to `dot -Tsvg`.
[[nodiscard]] std::string knowledge_dot(const Trace& trace,
                                        std::size_t num_processes,
                                        std::size_t num_objects);

}  // namespace ruco::sim
