// Events and enabled events ("pending" primitives) of the paper's execution
// model (Section 2): a step is one application of read, write or CAS to a
// base object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ruco/core/types.h"

namespace ruco::sim {

using ObjectId = std::uint32_t;

enum class Prim : std::uint8_t { kRead, kWrite, kCas, kKcas };

[[nodiscard]] const char* to_string(Prim p) noexcept;

/// One word of a k-CAS: succeed iff every word matches its expected value,
/// then install every desired value atomically.  k-CAS is the stronger
/// primitive of Attiya & Hendler (reference [6] of the paper), whose
/// generalized Lemma 1 the sim reproduces; it is NOT available to the
/// paper's own theorems (which assume k = 1).
struct KcasEntry {
  ObjectId obj = 0;
  Value expected = 0;
  Value desired = 0;

  friend bool operator==(const KcasEntry&, const KcasEntry&) = default;
};

/// The one enabled event of an active process (Section 2: "it has exactly
/// one enabled event").  The adversary schedulers inspect these *before*
/// deciding whom to run -- e.g. to tell which CAS events would succeed.
struct Pending {
  ObjectId obj = 0;
  Prim prim = Prim::kRead;
  Value arg = 0;       // write value / CAS desired
  Value expected = 0;  // CAS expected
  std::vector<KcasEntry> kcas;  // kKcas only; obj mirrors kcas[0].obj
};

/// An applied event, as recorded in the execution trace.
struct Event {
  ProcId proc = 0;
  ObjectId obj = 0;
  Prim prim = Prim::kRead;
  Value arg = 0;       // write value / CAS desired
  Value expected = 0;  // CAS expected
  Value observed = 0;  // read: value returned; CAS/k-CAS: 1 if succeeded
  bool changed = false;  // non-trivial: the event changed a value
  /// Weak-CAS fault mode (System::step_spurious): the CAS failed without
  /// regard to the object's value, as an LL/SC-style CAS may.  Only ever
  /// true for kCas events with observed == 0.  replay_trace honors the
  /// flag so faulty executions replay exactly.
  bool spurious = false;
  std::vector<KcasEntry> kcas;  // kKcas only

  /// Same process, object(s), primitive and arguments (not response).
  [[nodiscard]] bool same_action(const Event& other) const noexcept {
    return proc == other.proc && obj == other.obj && prim == other.prim &&
           arg == other.arg && expected == other.expected &&
           kcas == other.kcas;
  }

  [[nodiscard]] std::string to_string() const;
};

/// An execution is a sequence of events (Section 2).
using Trace = std::vector<Event>;

/// E^{-P}: the trace with every event of the given processes removed
/// (the notation of Lemma 2 / Claim 1).  `erase[p]` true means drop p.
[[nodiscard]] Trace erase_processes(const Trace& trace,
                                    const std::vector<bool>& erase);

}  // namespace ruco::sim
