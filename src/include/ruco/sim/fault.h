// Crash-fault injection for the simulated system.  The paper's headline
// results are *wait-free*: Algorithm A's bounds must hold no matter how
// many processes crash mid-operation.  A FaultPlan describes, fully
// deterministically (fixed seed => fixed faults for a fixed schedule),
// which faults to inject:
//
//   * explicit placements -- crash process p the first time it is selected
//     to step at or past its k-th own step (or the k-th global step);
//   * a seeded random crash storm -- up to `max_random_crashes < N`
//     crashes, never dropping below `min_survivors` live processes;
//   * a spurious weak-CAS mode -- a pending single-word CAS fails without
//     being applied, as an LL/SC-backed compare_exchange_weak may.
//
// A FaultInjector layers the plan over a System as a stepping decorator:
// schedulers call `injector.step(p)` where they would call `sys.step(p)`.
// Crashes consume the scheduling slot but no step (the enabled event is
// discarded, not applied); spurious failures are ordinary steps.  The
// fault-aware scheduler overloads live in ruco/sim/schedulers.h.
#pragma once

#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/system.h"
#include "ruco/util/rng.h"

namespace ruco::sim {

/// One explicit crash placement.  The crash fires the first time `proc` is
/// selected to step with the relevant step counter >= `step`: its own
/// applied-step count (kOwnSteps) or the system-wide trace length
/// (kGlobalSteps).  Threshold semantics keep placements meaningful under
/// any scheduler -- the process need not be selected at exactly step k.
struct CrashPoint {
  enum class Basis : std::uint8_t { kOwnSteps, kGlobalSteps };

  ProcId proc = 0;
  std::uint64_t step = 0;
  Basis basis = Basis::kOwnSteps;
};

struct FaultPlan {
  /// Seed for the injector's private RNG (random crashes and spurious CAS
  /// draws).  Independent of any scheduler seed.
  std::uint64_t seed = 1;

  /// Explicit crash placements; each fires at most once.  Placements
  /// ignore `min_survivors` (the caller asked for them by name).
  std::vector<CrashPoint> crash_at;

  /// Random crash storm: every time a process is selected to step, it
  /// crashes with probability `crash_per_mille / 1000`, while the quota
  /// lasts.  Keep the quota below N: the paper's fault model is f < N.
  std::uint32_t max_random_crashes = 0;
  std::uint32_t crash_per_mille = 0;

  /// Random crashes never reduce the live (active, non-crashed) process
  /// count below this.  At least one survivor keeps every crash-extended
  /// schedule a legal execution with someone left to certify.
  std::uint32_t min_survivors = 1;

  /// Spurious weak-CAS mode: when the selected process's enabled event is
  /// a single-word CAS, it fails spuriously (System::step_spurious) with
  /// probability `spurious_cas_per_mille / 1000`.
  std::uint32_t spurious_cas_per_mille = 0;
};

/// One injected crash, for reports and replay cross-checks.
struct CrashRecord {
  ProcId proc = 0;
  std::uint64_t at_trace_size = 0;  // system step count when the crash fired
  std::uint64_t own_steps = 0;      // steps the process had taken
};

class FaultInjector {
 public:
  enum class Outcome : std::uint8_t {
    kStepped,   // a step was applied (possibly a spurious CAS failure)
    kCrashed,   // the process was crashed instead of stepping
    kInactive,  // the process had no enabled event
  };

  FaultInjector(System& sys, FaultPlan plan);

  /// Scheduler entry point, in place of sys.step(p).
  Outcome step(ProcId p);

  [[nodiscard]] const std::vector<CrashRecord>& crashes() const noexcept {
    return log_;
  }
  [[nodiscard]] std::uint32_t crash_count() const noexcept {
    return static_cast<std::uint32_t>(log_.size());
  }
  [[nodiscard]] std::uint32_t spurious_count() const noexcept {
    return spurious_;
  }
  /// Explicit crash_at placements that never fired -- typically because the
  /// process completed before reaching its threshold.  Callers that demand
  /// a specific crash should check this after the run.
  [[nodiscard]] std::size_t unfired_placements() const noexcept {
    std::size_t unfired = 0;
    for (const bool fired : fired_) unfired += fired ? 0 : 1;
    return unfired;
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  [[nodiscard]] bool should_crash(ProcId p);
  [[nodiscard]] std::size_t live_count() const;

  System& sys_;
  FaultPlan plan_;
  util::SplitMix64 rng_;
  std::vector<bool> fired_;  // crash_at entries already consumed
  std::vector<CrashRecord> log_;
  std::uint32_t random_crashes_ = 0;
  std::uint32_t spurious_ = 0;
};

}  // namespace ruco::sim
