// Generic f-array (Jayanti, PODC'02 -- reference [14] of Hendler & Khait),
// CAS variant: a wait-free aggregate over an N-slot single-writer array
// with
//   read_aggregate : O(1) steps (one root load), and
//   update         : O(log N) steps (write own slot, double-CAS-merge the
//                    root path).
//
// The aggregate function is a template parameter.  Soundness of the
// LL/SC -> CAS substitution requires *monotonicity*: under the updates the
// program performs, every tree node's value sequence must be
// non-decreasing in some partial order (max: total order; sum of
// non-decreasing slots; componentwise orders...).  Monotonicity is what
// rules out CAS/ABA -- see ruco/maxreg/propagate.h for the argument and
// DESIGN.md for the ablation.  Non-monotone updates (e.g. writing a
// *smaller* value to a slot under Max) are not linearizable through this
// construction; the tests demonstrate the failure mode.
//
// FArrayCounter, FArraySnapshot and Algorithm A's propagation are the three
// specializations the paper's storyline needs; this template is the
// general component a downstream user would reach for (e.g. min/max
// watermarks, monotone bitmask unions).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/maxreg/propagate.h"
#include "ruco/runtime/memorder.h"
#include "ruco/runtime/padded.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/util/tree_shape.h"

namespace ruco::farray {

template <typename Combine>
class FArray {
 public:
  /// N slots, all initialized to `identity` (which must satisfy
  /// combine(identity, x) == x).
  FArray(std::uint32_t num_slots, Value identity, Combine combine = {})
      : n_{num_slots},
        identity_{identity},
        combine_{combine},
        shape_{util::complete_shape(num_slots)},
        values_(shape_.node_count(), runtime::PaddedAtomic<Value>{identity}) {
    if (num_slots == 0) throw std::invalid_argument{"FArray: 0 slots"};
  }

  /// Sets slot `slot` (single writer per slot) and refreshes the path.
  /// O(log N) steps.
  void update(ProcId slot, Value v) {
    telemetry::prod().farray_updates.inc();
    const auto leaf = shape_.leaf(slot);
    runtime::step_tick();
    // Release pairs with the acquire child loads in propagate_twice (ours
    // and every concurrent refresher's).
    values_[leaf].value.store(v, runtime::mo_release);
    maxreg::propagate_twice(shape_, values_, leaf, combine_);
  }

  /// The aggregate over all slots.  One step.
  [[nodiscard]] Value read_aggregate(ProcId /*proc*/) const {
    telemetry::prod().farray_reads.inc();
    runtime::step_tick();
    return values_[shape_.root()].value.load(runtime::mo_acquire);
  }

  /// Direct read of one slot.  One step.
  [[nodiscard]] Value read_slot(ProcId /*proc*/, std::uint32_t slot) const {
    runtime::step_tick();
    return values_[shape_.leaf(slot)].value.load(runtime::mo_acquire);
  }

  [[nodiscard]] std::uint32_t num_slots() const noexcept { return n_; }
  [[nodiscard]] Value identity() const noexcept { return identity_; }

 private:
  std::uint32_t n_;
  Value identity_;
  Combine combine_;
  util::TreeShape shape_;
  std::vector<runtime::PaddedAtomic<Value>> values_;
};

struct MaxCombine {
  Value operator()(Value l, Value r) const noexcept {
    return l > r ? l : r;
  }
};
struct MinCombine {
  Value operator()(Value l, Value r) const noexcept {
    return l < r ? l : r;
  }
};
struct SumCombine {
  Value operator()(Value l, Value r) const noexcept { return l + r; }
};
struct OrCombine {  // monotone bitmask union
  Value operator()(Value l, Value r) const noexcept { return l | r; }
};

/// Max over slots: slot updates must be non-decreasing.
using MaxFArray = FArray<MaxCombine>;
/// Min over slots: slot updates must be non-increasing (identity = +inf).
using MinFArray = FArray<MinCombine>;
/// Sum over slots: slot updates must be non-decreasing.
using SumFArray = FArray<SumCombine>;
/// Bitwise-or over slots: slot updates may only add bits.
using OrFArray = FArray<OrCombine>;

}  // namespace ruco::farray
