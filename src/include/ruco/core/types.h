// Common value and identifier types for all implemented objects.
#pragma once

#include <cstdint>

namespace ruco {

/// The value domain of every implemented object.  Max registers only accept
/// non-negative operands; kNoValue plays the role of the paper's initial
/// value "-inf".
using Value = std::int64_t;

/// Process (thread) identifier in [0, N).
using ProcId = std::uint32_t;

/// Initial value of a max register before any WriteMax ("-inf" in the
/// paper).  ReadMax on a fresh register returns kNoValue.
inline constexpr Value kNoValue = -1;

}  // namespace ruco
