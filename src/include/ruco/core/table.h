// Minimal fixed-column table printer for the figure benchmarks and
// examples: prints GitHub-flavoured markdown so bench output can be pasted
// straight into EXPERIMENTS.md.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ruco {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Convenience: stream any mix of printables as one row.
  template <typename... Ts>
  Table& add(const Ts&... cells) {
    std::vector<std::string> out;
    (out.push_back(to_cell(cells)), ...);
    return row(std::move(out));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    print_row(os, headers_, width);
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (const auto w : width) rule.push_back(std::string(w, '-'));
    print_row(os, rule, width);
    for (const auto& r : rows_) print_row(os, r, width);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string{v};
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream ss;
      ss << std::fixed << std::setprecision(2) << v;
      return ss.str();
    } else {
      std::ostringstream ss;
      ss << v;
      return ss.str();
    }
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& r,
                        const std::vector<std::size_t>& width) {
    os << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ruco
