// Concepts describing the three restricted-use object families, used by the
// generic benchmarks, the linearizability test harness and user code that
// wants to be implementation-agnostic.
#pragma once

#include <concepts>
#include <vector>

#include "ruco/core/types.h"

namespace ruco {

/// WriteMax(v) / ReadMax per Hendler & Khait Section 2.  All operations take
/// the caller's process id; implementations that do not need it ignore it.
template <typename T>
concept MaxRegisterLike = requires(T t, const T ct, ProcId p, Value v) {
  t.write_max(p, v);
  { ct.read_max(p) } -> std::same_as<Value>;
};

/// CounterIncrement / CounterRead per Section 2.
template <typename T>
concept CounterLike = requires(T t, ProcId p) {
  t.increment(p);
  { t.read(p) } -> std::same_as<Value>;
};

/// Single-writer snapshot: Update own segment / Scan all segments.
template <typename T>
concept SnapshotLike = requires(T t, ProcId p, Value v) {
  t.update(p, v);
  { t.scan(p) } -> std::same_as<std::vector<Value>>;
};

}  // namespace ruco
