// Canned sim programs in the exact shape of the paper's lower-bound
// constructions:
//
//   * max register programs (Theorem 3): processes p_0..p_{K-2} each perform
//     a single WriteMax(i+1) -- operand order aligned with process ids, as
//     in the proof -- and one extra process p_{K-1} performs a single
//     ReadMax (the Lemma 5/6 reader).
//
//   * counter programs (Theorem 1): processes p_0..p_{N-2} each perform a
//     single CounterIncrement and p_{N-1} performs a CounterRead (Lemma 3's
//     p_N).
//
// The returned bundle owns the algorithm instance; the Program's bodies are
// pure (all cross-operation state in base objects), so any number of
// Systems can be instantiated from one bundle -- which is what erasure
// replay and model checking need.
#pragma once

#include <cstdint>
#include <memory>

#include "ruco/core/types.h"
#include "ruco/maxreg/refresh_policy.h"
#include "ruco/maxreg/tree_max_register.h"  // Faithfulness
#include "ruco/sim/system.h"

namespace ruco::simalgos {

struct MaxRegProgram {
  sim::Program program;
  std::uint32_t num_writers = 0;  // procs [0, num_writers); writer i writes i+1
  ProcId reader = 0;         // performs one ReadMax; result() = value
  std::shared_ptr<void> algo;     // keepalive for the algorithm instance
};

/// Algorithm A target: K-1 writers + 1 reader sharing a SimTreeMaxRegister
/// for K processes.  `policy` selects the conditional-refresh pruning
/// (default, mirrors production) or the paper-literal double refresh.
[[nodiscard]] MaxRegProgram make_tree_maxreg_program(
    std::uint32_t k,
    maxreg::Faithfulness mode = maxreg::Faithfulness::kHelpOnDuplicate,
    maxreg::RefreshPolicy policy = maxreg::RefreshPolicy::kConditional);

/// CAS-retry-loop target (f(K) = O(1) reads; the adversary's best victim).
[[nodiscard]] MaxRegProgram make_cas_maxreg_program(std::uint32_t k);

/// AAC read/write target with bound M >= K.
[[nodiscard]] MaxRegProgram make_aac_maxreg_program(std::uint32_t k,
                                                    Value bound);

/// Unbounded rw-only target (O(log v) both ops); envelope sized to K.
[[nodiscard]] MaxRegProgram make_unbounded_aac_maxreg_program(
    std::uint32_t k);

/// Spinlock-protected target: blocking, the wait-freedom certifier's
/// negative control (crash the lock holder and the survivors spin).
[[nodiscard]] MaxRegProgram make_lock_maxreg_program(std::uint32_t k);

struct CounterProgram {
  sim::Program program;
  std::uint32_t num_incrementers = 0;  // procs [0, num_incrementers)
  ProcId reader = 0;              // performs one CounterRead
  std::shared_ptr<void> algo;
};

/// f-array counter target (read O(1): Theorem 1 forces increments to
/// Omega(log N) -- which the f-array pays).
[[nodiscard]] CounterProgram make_farray_counter_program(std::uint32_t n);

/// AAC read/write counter target (read O(log N)).
[[nodiscard]] CounterProgram make_maxreg_counter_program(std::uint32_t n,
                                                         Value max_increments);

/// 2-CAS counter (reference [6]'s primitive; outside the paper's model):
/// lock-free, not wait-free -- the adversary starves it to Theta(N) rounds.
[[nodiscard]] CounterProgram make_kcas_counter_program(std::uint32_t n);

}  // namespace ruco::simalgos
