// Simulation-layer counters: the Theorem 1 adversary's targets.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/op.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/sim_max_registers.h"
#include "ruco/util/tree_shape.h"

namespace ruco::simalgos {

/// Jayanti f-array counter over simulated memory (CAS variant): read O(1),
/// increment O(log N).  See counter::FArrayCounter.  Unlike the production
/// twin, the increment re-reads its own leaf (one extra step) because
/// simulated operations may not carry state between operations (replay
/// after erasure re-runs coroutines from scratch).
///
/// `policy` mirrors the production conditional-refresh pruning in
/// ruco/maxreg/propagate.h (skip round 2 after a won CAS; skip the CAS when
/// the recomputed sum equals the node value); kAlwaysTwice is the
/// paper-literal double refresh.
class SimFArrayCounter {
 public:
  SimFArrayCounter(
      sim::Program& program, std::uint32_t num_processes,
      maxreg::RefreshPolicy policy = maxreg::RefreshPolicy::kConditional);

  [[nodiscard]] sim::Op read(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op increment(sim::Ctx& ctx) const;

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }
  [[nodiscard]] sim::ObjectId root_object() const {
    return objects_[shape_.root()];
  }

 private:
  std::uint32_t n_;
  util::TreeShape shape_;
  std::vector<sim::ObjectId> objects_;
  maxreg::RefreshPolicy policy_;
};

/// Aspnes-Attiya-Censor-Hillel counter over simulated memory: read
/// O(log U), increment O(log N log U), reads and writes only.  See
/// counter::MaxRegCounter.
class SimMaxRegCounter {
 public:
  SimMaxRegCounter(sim::Program& program, std::uint32_t num_processes,
                   Value max_increments);

  [[nodiscard]] sim::Op read(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op increment(sim::Ctx& ctx) const;

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

 private:
  [[nodiscard]] sim::Op node_value(sim::Ctx& ctx,
                                   util::TreeShape::NodeId node) const;

  std::uint32_t n_;
  Value bound_;
  util::TreeShape shape_;
  std::vector<std::unique_ptr<SimAacMaxRegister>> nodes_;  // internal only
  std::vector<sim::ObjectId> leaf_counts_;
};

/// Counter from 2-CAS (the k-CAS primitive of Attiya & Hendler, the
/// paper's reference [6] -- *outside* the read/write/CAS model of
/// Theorems 1-2): increment retries a double-word CAS over (own leaf,
/// shared root); read is one root load.
///
/// Solo this sits below Theorem 1's frontier -- (read 1, increment 3) --
/// which is legal only because 2-CAS is a stronger primitive.  It is
/// lock-free but NOT wait-free: under the Theorem 1 adversary one process
/// wins per round and the rest retry, so increments stretch to Theta(N)
/// rounds (the adversary bench shows it), versus the f-array's wait-free
/// Theta(log N).  Strength of primitive and worst-case step complexity are
/// different axes -- the comparison this object exists to make.
class SimKcasCounter {
 public:
  SimKcasCounter(sim::Program& program, std::uint32_t num_processes);

  [[nodiscard]] sim::Op read(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op increment(sim::Ctx& ctx) const;

  [[nodiscard]] sim::ObjectId root_object() const noexcept { return root_; }

 private:
  std::uint32_t n_;
  sim::ObjectId root_;
  std::vector<sim::ObjectId> leaves_;
};

}  // namespace ruco::simalgos
