// Simulation-layer twins of the max register implementations: the same
// algorithms expressed as sim::Op coroutines over sim base objects, so the
// adversary constructions and the model checker can drive them step by
// step.  All cross-operation state lives in base objects (a requirement for
// replay after erasure); solo step counts match the production layer and
// the tests assert it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/maxreg/refresh_policy.h"
#include "ruco/maxreg/tree_max_register.h"  // Faithfulness
#include "ruco/sim/op.h"
#include "ruco/sim/system.h"
#include "ruco/util/tree_shape.h"

namespace ruco::simalgos {

/// Algorithm A over simulated memory.  See maxreg::TreeMaxRegister.
///
/// `propagate_attempts` is an ablation knob: the paper performs the
/// compute-max-and-CAS *twice* per level (lines 6-9) and proves that is
/// enough; with 1 attempt a failed CAS abandons the level and a completed
/// WriteMax can be missed by later reads (the ablation bench and tests
/// exhibit the violation), with 2 (the default) the algorithm is correct.
///
/// `policy` mirrors the production conditional-refresh pruning (see
/// ruco/maxreg/propagate.h): kConditional skips the second round when the
/// first CAS wins and skips the CAS entirely when the recomputed max equals
/// the node's current value; kAlwaysTwice is the paper-literal shape.  The
/// model checker verifies both reach the same linearizations
/// (hotpath_test).
class SimTreeMaxRegister {
 public:
  SimTreeMaxRegister(
      sim::Program& program, std::uint32_t num_processes,
      maxreg::Faithfulness mode, int propagate_attempts = 2,
      maxreg::RefreshPolicy policy = maxreg::RefreshPolicy::kConditional);

  [[nodiscard]] sim::Op read_max(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op write_max(sim::Ctx& ctx, Value v) const;

  [[nodiscard]] std::uint32_t num_processes() const noexcept {
    return shape_.num_processes();
  }
  /// Base object backing the tree root (the one ReadMax reads).
  [[nodiscard]] sim::ObjectId root_object() const {
    return objects_[shape_.root()];
  }

 private:
  [[nodiscard]] sim::Op propagate(sim::Ctx& ctx,
                                  util::TreeShape::NodeId leaf) const;

  util::AlgorithmATreeShape shape_;
  std::vector<sim::ObjectId> objects_;  // one base object per tree node
  maxreg::Faithfulness mode_;
  int propagate_attempts_;
  maxreg::RefreshPolicy policy_;
};

/// Single-word CAS-retry max register over simulated memory.  The model's
/// CAS returns only success/failure (Section 2), so each failed attempt
/// costs one extra read to refresh the expected value.
class SimCasMaxRegister {
 public:
  explicit SimCasMaxRegister(sim::Program& program);

  [[nodiscard]] sim::Op read_max(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op write_max(sim::Ctx& ctx, Value v) const;

  [[nodiscard]] sim::ObjectId cell() const noexcept { return cell_; }

 private:
  sim::ObjectId cell_;
};

/// AAC bounded max register over simulated memory (read/write only).  See
/// maxreg::AacMaxRegister.
class SimAacMaxRegister {
 public:
  SimAacMaxRegister(sim::Program& program, Value bound);

  [[nodiscard]] sim::Op read_max(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op write_max(sim::Ctx& ctx, Value v) const;

  [[nodiscard]] Value bound() const noexcept { return bound_; }

 private:
  Value bound_;
  std::uint32_t levels_;
  std::vector<sim::ObjectId> switches_;  // heap-ordered; index 0 unused
  sim::ObjectId any_write_;
};

/// Spinlock-protected max register over simulated memory: the *blocking*
/// baseline (maxreg::LockMaxRegister's sim twin, the mutex modeled as a
/// CAS-acquired test-and-set lock).  Deliberately NOT wait-free: if the
/// lock holder crashes mid-operation the lock is never released and every
/// other process spins forever -- the negative control that
/// certify_wait_freedom must fail.
class SimLockMaxRegister {
 public:
  explicit SimLockMaxRegister(sim::Program& program);

  [[nodiscard]] sim::Op read_max(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op write_max(sim::Ctx& ctx, Value v) const;

  [[nodiscard]] sim::ObjectId lock_object() const noexcept { return lock_; }

 private:
  sim::ObjectId lock_;  // 0 free, 1 held
  sim::ObjectId cell_;
};

/// Unbounded rw-only max register over simulated memory (AAC composition
/// along a Bentley-Yao spine).  See maxreg::UnboundedAacMaxRegister.
/// Groups are allocated eagerly up to max_groups (sim programs have a fixed
/// object set), so keep max_groups modest (values < 2^max_groups - 1).
class SimUnboundedAacMaxRegister {
 public:
  SimUnboundedAacMaxRegister(sim::Program& program, std::uint32_t max_groups);

  [[nodiscard]] sim::Op read_max(sim::Ctx& ctx) const;
  [[nodiscard]] sim::Op write_max(sim::Ctx& ctx, Value v) const;

 private:
  std::uint32_t max_groups_;
  std::vector<sim::ObjectId> spine_;
  std::vector<std::unique_ptr<SimAacMaxRegister>> groups_;
};

}  // namespace ruco::simalgos
