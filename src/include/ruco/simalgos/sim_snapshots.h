// Simulation-layer single-writer snapshot (double collect) and the
// counter-from-snapshot reduction of Corollary 1, as adversary targets.
//
// Segments pack (sequence, value) into one base-object word -- the model's
// registers hold arbitrary values, but the sim's Value is int64, so values
// are bounded to 30 bits and per-segment updates to 2^32 (restricted use,
// checked).  Scan double-collects; obstruction-free only: a concurrent
// updater starves it, which the tests demonstrate (this is the
// "obstruction-free is the right granularity for the lower bounds" point
// of Section 2).
#pragma once

#include <cstdint>
#include <vector>

#include "ruco/core/types.h"
#include "ruco/sim/op.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"

namespace ruco::simalgos {

class SimDoubleCollectSnapshot {
 public:
  SimDoubleCollectSnapshot(sim::Program& program,
                           std::uint32_t num_processes);

  /// Sets segment ctx.id() to v (re-reading its own segment for the
  /// sequence number: 2 steps; the production twin caches it locally).
  [[nodiscard]] sim::Op update(sim::Ctx& ctx, Value v) const;

  /// Double collect until clean; returns through mark_return_vec-style
  /// side channel: the Op's scalar result is the SUM of the view (which is
  /// what the Corollary 1 counter needs); use scan_into for the vector.
  [[nodiscard]] sim::Op scan_sum(sim::Ctx& ctx) const;

  /// Full-view scan: writes the view into *out (caller-owned) and returns
  /// 0.  The vector never touches shared memory -- it is the operation's
  /// local result.
  [[nodiscard]] sim::Op scan_into(sim::Ctx& ctx,
                                  std::vector<Value>* out) const;

  /// Adds one to own segment's value (the Corollary 1 increment).  2 steps.
  [[nodiscard]] sim::Op increment_own(sim::Ctx& ctx) const;

  [[nodiscard]] std::uint32_t num_processes() const noexcept { return n_; }

  static constexpr Value kMaxValue = (Value{1} << 30) - 1;

 private:
  static constexpr Value pack(Value v, Value seq) noexcept {
    return seq * (Value{1} << 30) + v;
  }
  static constexpr Value unpack_value(Value w) noexcept {
    return w % (Value{1} << 30);
  }
  static constexpr Value unpack_seq(Value w) noexcept {
    return w / (Value{1} << 30);
  }

  std::uint32_t n_;
  std::vector<sim::ObjectId> segments_;
};

/// Corollary 1's counter: increment bumps own segment, read scans and sums.
/// CounterRead costs f(N) = 2N steps solo -- the frontier log3(N/f)
/// collapses to zero, which is why its O(1)-ish increments do not
/// contradict Theorem 1.
class SimDcSnapshotCounter {
 public:
  SimDcSnapshotCounter(sim::Program& program, std::uint32_t num_processes)
      : snapshot_{program, num_processes} {}

  [[nodiscard]] sim::Op read(sim::Ctx& ctx) const {
    return snapshot_.scan_sum(ctx);
  }
  /// Read own segment, write it back +1.  2 steps.
  [[nodiscard]] sim::Op increment(sim::Ctx& ctx) const {
    return snapshot_.increment_own(ctx);
  }

  [[nodiscard]] const SimDoubleCollectSnapshot& snapshot() const noexcept {
    return snapshot_;
  }

 private:
  SimDoubleCollectSnapshot snapshot_;
};

/// Factory in the Theorem 1 shape (see programs.h).
[[nodiscard]] CounterProgram make_dc_snapshot_counter_program(
    std::uint32_t n);

}  // namespace ruco::simalgos
