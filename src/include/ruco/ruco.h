// Umbrella header for the ruco library: restricted-use concurrent objects
// from Hendler & Khait, "Complexity Tradeoffs for Read and Update
// Operations", PODC 2014, plus the substrates the paper builds on.
//
// Quick tour:
//   maxreg::TreeMaxRegister   Algorithm A  (read O(1), write O(min(lgN,lgv)))
//   maxreg::AacMaxRegister    read/write only, both ops O(log M)
//   maxreg::UnboundedAacMaxRegister  rw-only, both ops O(log v)
//   farray::FArray<Combine>   Jayanti f-array: aggregate O(1), update O(lgN)
//   counter::FArrayCounter    read O(1), increment O(log N)
//   counter::MaxRegCounter    read O(log N), increment O(log^2 N), rw-only
//   snapshot::FArraySnapshot  scan O(1), update O(log N)
//   snapshot::AfekSnapshot    wait-free from rw-only, O(N^2)
//   sim::*                    the paper's execution model, executable
//   adversary::*              the Theorem 1 / Theorem 3 lower-bound
//                             constructions as runnable schedulers
#pragma once

#include "ruco/core/concepts.h"
#include "ruco/core/types.h"
#include "ruco/counter/farray_counter.h"
#include "ruco/counter/fetch_add_counter.h"
#include "ruco/counter/kcas_counter.h"
#include "ruco/counter/maxreg_counter.h"
#include "ruco/counter/snapshot_counter.h"
#include "ruco/counter/unbounded_maxreg_counter.h"
#include "ruco/farray/farray.h"
#include "ruco/kcas/mcas.h"
#include "ruco/maxreg/aac_max_register.h"
#include "ruco/maxreg/cas_max_register.h"
#include "ruco/maxreg/lock_max_register.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/maxreg/unbounded_aac_max_register.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/snapshot/afek_snapshot.h"
#include "ruco/snapshot/double_collect_snapshot.h"
#include "ruco/snapshot/farray_snapshot.h"
#include "ruco/util/stats.h"
#include "ruco/util/tree_shape.h"
