// Process-wide metric handles for the production (hardware) layer.
//
// Every hot-path instrumentation site in maxreg/kcas/farray/runtime pulls
// its handle from this struct instead of registering by name inline, so
//   * registration cost is paid once, at first use, and
//   * the full metric namespace is visible in one place.
//
// All handles live in Registry::global().  With RUCO_NO_TELEMETRY the
// handle mutators are empty inline functions (ruco/telemetry/registry.h),
// so call sites need no #ifdefs of their own.
#pragma once

#include "ruco/telemetry/registry.h"

namespace ruco::telemetry {

struct ProdMetrics {
  // maxreg: CAS-loop behavior of the max register family.
  Counter maxreg_cas_attempts;   // CAS issued by CasMaxRegister::write_max
  Counter maxreg_cas_failures;   // ... that lost the race
  Counter propagate_cas_attempts;  // CASes actually issued by propagate_twice
  Counter propagate_cas_failures;
  Counter propagate_levels;        // tree levels walked by propagate_twice
  Counter propagate_second_rounds;  // levels whose first refresh lost its CAS
  Counter propagate_cas_skips;      // pure-load levels (combine == node value)
  Histogram tree_descent_depth;    // B1-tree leaf depth per write_max
  Counter tree_duplicate_writes;   // write_max early-returns (value present)
  Counter tree_root_fastpath;      // write_max early-returns (root >= v)
  Counter aac_write_abandons;      // AAC writes abandoned by a larger writer
  Counter aac_switches_set;        // AAC switch nodes flipped

  // kcas: helping economy of HFP MCAS.
  Counter mcas_ops;            // top-level mcas() calls
  Counter mcas_helps;          // mcas_help entered on behalf of another op
  Counter mcas_rdcss_helps;    // rdcss_complete invoked by a reader
  Counter mcas_cas_failures;   // failed phase-1 rdcss acquisitions

  // farray: Write-and-f-array operations.
  Counter farray_updates;
  Counter farray_reads;

  // runtime: thread-harness phase accounting.
  Counter harness_runs;      // run_threads invocations
  Counter harness_threads;   // threads launched in total
  Counter harness_wall_us;   // wall time of whole run_threads calls
  Counter harness_body_us;   // wall time inside the post-barrier body
};

namespace detail {
[[nodiscard]] ProdMetrics make_prod_metrics();
}  // namespace detail

/// The lazily-registered singleton.  First call registers everything in
/// Registry::global(); later calls cost one inlined init-guard check --
/// hot instrumentation sites call this per operation, so it must not be a
/// function call.
[[nodiscard]] inline const ProdMetrics& prod() {
  static const ProdMetrics m = detail::make_prod_metrics();
  return m;
}

}  // namespace ruco::telemetry
