// Simulator-side telemetry: contention accounting and Perfetto export for
// recorded executions.
//
// Everything here is computed *offline* from a finished System's trace and
// history, so the simulator's step loop (which the model checker drives
// millions of times) pays nothing for it.
//
//   * contention_report -- per-object read/write/CAS-fail counts and
//     per-process step/op counts, the simulator analogue of the hardware
//     registry's maxreg/mcas counters.  This is the paper's currency:
//     shared-memory events per object and per process.
//   * sim_timeline -- renders a System's execution as a Perfetto trace:
//     one track per process, ts = global step index, crash and spurious-CAS
//     instants, and awareness flow arrows (process q's first event aware of
//     process p, computed by first_aware_index -- the same cut points
//     Theorem 1's erasure uses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ruco/sim/system.h"
#include "ruco/telemetry/timeline.h"

namespace ruco::telemetry {

struct ObjectContention {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cas_ok = 0;
  std::uint64_t cas_fail = 0;  // includes spurious failures
  std::uint64_t spurious = 0;
  std::uint64_t kcas = 0;  // k-CAS events whose first word targets this obj

  [[nodiscard]] std::uint64_t total() const noexcept {
    return reads + writes + cas_ok + cas_fail + kcas;
  }
};

struct ProcContention {
  std::uint64_t steps = 0;
  std::uint64_t ops_invoked = 0;
  std::uint64_t ops_returned = 0;
  std::uint64_t cas_fail = 0;
  bool crashed = false;
};

struct ContentionReport {
  std::vector<ObjectContention> objects;  // indexed by ObjectId
  std::vector<ProcContention> procs;      // indexed by ProcId
  std::uint64_t total_steps = 0;

  /// Steps per completed operation, the simulator's throughput-cost metric
  /// (0 when no operation returned).
  [[nodiscard]] double steps_per_op() const noexcept;
  /// Failed fraction of all single-word CAS events (0 when none issued).
  [[nodiscard]] double cas_fail_rate() const noexcept;

  [[nodiscard]] std::string to_json() const;
};

/// Accounts a finished (or paused) System's trace and history.
[[nodiscard]] ContentionReport contention_report(const sim::System& sys);

/// Options for sim_timeline.  Awareness edges cost one first_aware_index
/// pass per process (O(processes * trace)), so they can be switched off for
/// very long traces.
struct SimTimelineOptions {
  bool awareness_edges = true;
};

/// Renders the execution recorded in `sys` into `out` as one Perfetto
/// process ("simulator", pid 0) with one thread track per simulated
/// process; ts = global trace index in microseconds-as-steps.  Adds crash
/// instants (after the crashed process's last step), spurious-CAS instants,
/// and awareness flow arrows.
void sim_timeline(const sim::System& sys, TimelineWriter& out,
                  const SimTimelineOptions& opts = {});

}  // namespace ruco::telemetry
