// Chrome-trace-event / Perfetto JSON timeline writer.
//
// Emits the JSON object form of the Trace Event Format
// ({"traceEvents":[...]}), which both chrome://tracing and ui.perfetto.dev
// load directly.  Used to render simulator traces (one track per process,
// ts = shared-memory step index) and hardware-harness runs (one track per
// thread, ts = microseconds) -- see ruco/telemetry/sim_export.h and
// bench/bench_hw_throughput.cpp.
//
// Only the event phases ruco needs are supported:
//   B/E  nested duration slices        X  complete slice (ts + dur)
//   i    instant marker                s/f  flow edge (arrow between tracks)
//   M    metadata (process/thread names), emitted from the name setters
//
// validate() structurally checks what the acceptance tests rely on: every
// referenced track is named, timestamps are monotone per track, and B/E
// pairs nest and match.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ruco::telemetry {

/// Builder for one trace file.  Not thread-safe: collect per-thread events
/// first (e.g. OpRecorder lanes), then serialize from one thread.
class TimelineWriter {
 public:
  /// Metadata: names shown on the track list in the viewer.
  void set_process_name(std::uint32_t pid, std::string_view name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       std::string_view name);

  /// Nested duration slice (ph=B ... ph=E).
  void begin(std::uint32_t pid, std::uint32_t tid, std::string_view name,
             std::uint64_t ts_us, std::string_view args_json = {});
  void end(std::uint32_t pid, std::uint32_t tid, std::uint64_t ts_us);

  /// Complete slice (ph=X): one event carrying its own duration.
  void complete(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                std::uint64_t ts_us, std::uint64_t dur_us,
                std::string_view args_json = {});

  /// Instant marker (ph=i, thread scope).
  void instant(std::uint32_t pid, std::uint32_t tid, std::string_view name,
               std::uint64_t ts_us, std::string_view args_json = {});

  /// Flow edge: an arrow from (flow_start) to (flow_end) with a shared id.
  void flow_start(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                  std::uint64_t ts_us, std::uint64_t flow_id);
  void flow_end(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                std::uint64_t ts_us, std::uint64_t flow_id);

  [[nodiscard]] std::size_t num_events() const { return events_.size(); }

  /// Serializes {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string json() const;

  /// json() to a file; returns false on I/O error.
  bool write_file(const std::string& path) const;

  /// Structural validation of the event stream:
  ///   * every (pid, tid) with slice/instant events has a thread name and
  ///     its pid a process name (so the viewer shows one labeled track per
  ///     process/thread),
  ///   * per-track timestamps are monotone non-decreasing,
  ///   * B/E events nest properly and every B is closed.
  /// Returns an empty string when valid, else a description of the first
  /// violation.  Unit tests assert validate().empty().
  [[nodiscard]] std::string validate() const;

 private:
  struct Event {
    char phase = 'X';  // B E X i s f
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;      // X only
    std::uint64_t flow_id = 0;  // s/f only
    std::string name;
    std::string args_json;  // pre-rendered {"k":v} or empty
  };
  struct TrackName {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;  // unused for process names
    bool is_process = false;
    std::string name;
  };

  std::vector<Event> events_;
  std::vector<TrackName> names_;
};

/// Per-thread op-slice recorder for hardware-harness runs.  Each thread
/// writes only its own pre-sized lane (no synchronization, no allocation
/// after reserve), so recording costs two steady_clock reads and a
/// vector push.  After the run, export_to() renders one named track per
/// thread into a TimelineWriter.
class OpRecorder {
 public:
  /// `capacity_per_thread` bounds recorded ops per lane; later ops are
  /// counted but dropped (bench traces only need a representative window).
  OpRecorder(std::uint32_t num_threads, std::size_t capacity_per_thread);

  /// Interns an op name; call once per op kind before the timed region.
  [[nodiscard]] std::uint32_t intern(std::string_view name);

  /// Records one op slice on `thread`'s lane.  Thread-safe across distinct
  /// threads, wait-free, never allocates.
  void record(std::uint32_t thread, std::uint32_t name_id,
              std::uint64_t start_us, std::uint64_t dur_us) noexcept;

  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// One track per thread (pid fixed, tid = thread index), slices sorted
  /// by start within each lane (they already are: one writer per lane).
  void export_to(TimelineWriter& out, std::uint32_t pid,
                 std::string_view process_name) const;

 private:
  struct Slice {
    std::uint32_t name_id = 0;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
  };
  std::vector<std::vector<Slice>> lanes_;
  std::vector<std::uint64_t> dropped_per_lane_;
  std::vector<std::string> names_;
};

}  // namespace ruco::telemetry
