// Cross-layer metric registry: the observability substrate of ruco.
//
// The paper's whole evaluation is *counting shared-memory events*, yet until
// this subsystem the repo could only observe one number (the thread-local
// step total in runtime/stepcount.h).  The registry generalizes that idea:
// named counters, gauges and fixed-bucket histograms, grouped into labeled
// domains ("maxreg", "mcas", "runtime", ...), cheap enough to leave enabled
// on production hot paths.
//
// Design for low overhead:
//   * Counter / histogram cells are *per-thread sharded*: every thread gets
//     its own slab of cache-line-isolated cells, so no two threads ever
//     write the same cell -- no contention, no false sharing (the same
//     trick as stepcount.h's TLS counter, made multi-metric).  Snapshots
//     sum across slabs.
//   * Single-writer cells need no read-modify-write: an increment is a
//     relaxed load + relaxed store of the thread's own cell, which on x86
//     is two plain MOVs -- no lock prefix.  A fetch_add would be ~10x the
//     cost and buys nothing when the only concurrent access is a snapshot
//     read, which tolerates a momentarily stale cell by design.
//   * The slab lookup is a single thread_local pointer compare on the fast
//     path (an inline cache of the last registry used by this thread).
//   * Relaxed atomics make snapshots racy-but-coherent per cell: a snapshot
//     taken while threads run sees each cell at some recent value, which is
//     exactly the semantics of sampling a live system.
//   * Compiling with -DRUCO_NO_TELEMETRY turns every hot-path mutation
//     (Counter::add, Histogram::record, Gauge::set) into an empty inline
//     function, so the instrumentation can be proven free (the overhead
//     comparison is recorded in docs/OBSERVABILITY.md).
//
// Registration is idempotent -- registering (domain, name) twice returns a
// handle to the same metric -- so function-local-static handle accessors
// (ruco/telemetry/metrics.h) are safe and cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ruco/runtime/padded.h"

namespace ruco::telemetry {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(Kind k) noexcept;

/// One metric's merged view at snapshot time.
struct MetricSnapshot {
  std::string domain;
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter: total.  Histogram: total samples (incl. overflow).
  std::uint64_t value = 0;
  /// Gauge: last set value (gauges are signed).
  std::int64_t gauge = 0;
  /// Histogram only: per-bucket counts, then the overflow count.
  std::vector<std::uint64_t> buckets;
  std::uint64_t overflow = 0;
};

/// A coherent-per-cell copy of a registry's metrics; mergeable (for
/// combining registries or accumulating across phases) and exportable as
/// JSON for benches, rucosim --telemetry and CI artifacts.
struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  /// Sums `other` into this: matching (domain, name, kind) entries add
  /// cell-wise; unmatched entries are appended.
  void merge(const Snapshot& other);

  [[nodiscard]] const MetricSnapshot* find(std::string_view domain,
                                           std::string_view name) const;

  /// {"metrics": [{"domain": ..., "name": ..., "kind": ..., ...}, ...]}
  [[nodiscard]] std::string to_json() const;
};

class Registry;

namespace detail {
/// Sentinel registry id carried by inert (default-constructed) handles.
/// Real ids count up from 1 and the TLS cache starts at 0, so an inert
/// handle can never match the cache and always takes the slow path, which
/// null-checks the registry pointer.
inline constexpr std::uint64_t kInertRegistryId = ~std::uint64_t{0};
}  // namespace detail

/// Monotone event counter handle.  Cheap to copy; valid as long as its
/// registry lives.  A default-constructed handle is inert.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n) const noexcept;
  void inc() const noexcept { add(1); }

 private:
  friend class Registry;
  void add_slow(std::uint64_t n) const noexcept;
  Registry* reg_ = nullptr;
  // Copied from the registry: the fast path compares TLS state against the
  // handle alone (no registry dereference, no null check).
  std::uint64_t reg_id_ = detail::kInertRegistryId;
  std::uint32_t cell_ = 0;
};

/// Last-writer-wins signed gauge (not sharded: gauges are low-rate).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const noexcept;
  void add(std::int64_t d) const noexcept;

 private:
  friend class Registry;
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Fixed-bucket histogram handle over [0, buckets); larger samples land in
/// the overflow bucket (same convention as util::Histogram, which the
/// snapshot mirrors).
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t x) const noexcept;

 private:
  friend class Registry;
  void record_slow(std::uint32_t cell) const noexcept;
  Registry* reg_ = nullptr;
  std::uint64_t reg_id_ = detail::kInertRegistryId;
  std::uint32_t first_cell_ = 0;
  std::uint32_t buckets_ = 0;
};

class Registry {
 public:
  /// `cell_capacity` bounds the total sharded cells (one per counter,
  /// buckets+1 per histogram); fixing it at construction keeps slabs
  /// fixed-size, so snapshot readers never race a slab reallocation.
  explicit Registry(std::uint32_t cell_capacity = kDefaultCellCapacity);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Idempotent registration: same (domain, name) -> same metric.
  /// Throws std::invalid_argument on a kind/shape mismatch with a previous
  /// registration, std::length_error when out of cell capacity.
  [[nodiscard]] Counter counter(std::string_view domain,
                                std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view domain, std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view domain,
                                    std::string_view name,
                                    std::uint32_t buckets);

  /// Metrics in registration order, cells summed across all thread slabs.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every cell and gauge (metric definitions stay registered).
  /// Phase-scoped measurements snapshot, then reset.
  void reset() noexcept;

  [[nodiscard]] std::size_t num_metrics() const;

  /// The process-wide registry every production-layer metric lives in
  /// (ruco/telemetry/metrics.h).  Never destroyed (leaked singleton), so
  /// thread-exit and static-destruction order can't invalidate handles.
  [[nodiscard]] static Registry& global() noexcept;

  static constexpr std::uint32_t kDefaultCellCapacity = 1024;

 private:
  friend class Counter;
  friend class Histogram;

  struct Slab {
    explicit Slab(std::uint32_t capacity) : cells(capacity) {}
    // Padded: adjacent metrics hit by different threads stay independent.
    std::vector<runtime::PaddedAtomic<std::uint64_t>> cells;
  };

  struct MetricDef {
    std::string domain;
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint32_t first_cell = 0;  // sharded cell range (counter/histogram)
    std::uint32_t cells = 0;
    std::uint32_t gauge_index = 0;  // gauges only
  };

  [[nodiscard]] runtime::PaddedAtomic<std::uint64_t>* local_cells();
  [[nodiscard]] runtime::PaddedAtomic<std::uint64_t>* local_cells_slow();
  [[nodiscard]] std::uint32_t register_metric(std::string_view domain,
                                              std::string_view name,
                                              Kind kind,
                                              std::uint32_t cells);

  const std::uint32_t capacity_;
  const std::uint64_t id_;  // process-unique; basis of the TLS inline cache
  mutable std::mutex mu_;   // guards defs_, slabs_, gauges_ structure
  std::vector<MetricDef> defs_;
  std::uint32_t next_cell_ = 0;
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::deque<std::atomic<std::int64_t>> gauges_;  // stable addresses
};

// ---------------------------------------------------------------------------
// Hot-path inline bodies.  With RUCO_NO_TELEMETRY they compile to nothing.
// ---------------------------------------------------------------------------

namespace detail {
/// One-entry inline cache: the last (registry id -> slab) pair this thread
/// resolved.  Registry ids are process-unique and never reused, so a stale
/// entry can never match a new registry at a recycled address.
struct SlabCache {
  std::uint64_t registry_id = 0;  // 0 = empty
  runtime::PaddedAtomic<std::uint64_t>* cells = nullptr;
};
inline thread_local SlabCache tls_slab_cache;
}  // namespace detail

/// Fast path inline: one TLS compare, then the cell array pointer itself
/// (cached directly so an increment does no slab indirection).  Slab
/// creation is out of line.
inline runtime::PaddedAtomic<std::uint64_t>* Registry::local_cells() {
  auto& cache = detail::tls_slab_cache;
  if (cache.registry_id == id_) [[likely]] {
    return cache.cells;
  }
  return local_cells_slow();
}

#ifdef RUCO_NO_TELEMETRY

inline void Counter::add(std::uint64_t) const noexcept {}
inline void Gauge::set(std::int64_t) const noexcept {}
inline void Gauge::add(std::int64_t) const noexcept {}
inline void Histogram::record(std::uint64_t) const noexcept {}

#else

inline void Counter::add(std::uint64_t n) const noexcept {
  // Fast path touches only the handle and TLS -- no registry dereference,
  // and no null check (inert handles carry kInertRegistryId, which can
  // never match the cache).  Single writer per slab cell: plain load +
  // store, never an RMW.
  auto& cache = detail::tls_slab_cache;
  if (cache.registry_id == reg_id_) [[likely]] {
    auto& cell = cache.cells[cell_].value;
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
    return;
  }
  add_slow(n);
}

inline void Gauge::set(std::int64_t v) const noexcept {
  if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
}

inline void Gauge::add(std::int64_t d) const noexcept {
  if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_relaxed);
}

inline void Histogram::record(std::uint64_t x) const noexcept {
  const std::uint32_t i =
      x < buckets_ ? static_cast<std::uint32_t>(x) : buckets_;
  auto& cache = detail::tls_slab_cache;
  if (cache.registry_id == reg_id_) [[likely]] {
    auto& cell = cache.cells[first_cell_ + i].value;
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    return;
  }
  record_slow(first_cell_ + i);
}

#endif  // RUCO_NO_TELEMETRY

}  // namespace ruco::telemetry
