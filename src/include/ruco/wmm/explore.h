// Exhaustive RC11 exploration of a wmm::Program.
//
// The explorer is a DFS over partial execution graphs.  At each state it
// re-runs every unfinished thread body against its replay script to get
// that thread's next operation, then branches over the operation's
// axiomatically-possible results:
//
//   atomic load   -- one branch per store of the location (rf choice);
//   CAS           -- per store: success branch when the value matches
//                    (write placed mo-adjacent to the source, skipped if
//                    another RMW already reads it -- ATOMICITY), failure
//                    branch otherwise (a load at the failure order);
//   atomic store  -- one branch per modification-order insertion point;
//   fence / plain -- deterministic, single branch.
//
// Children that violate an RC11 axiom are pruned (sound: the derived
// relations only grow under extension).  States are memoised by the
// graph's canonical signature, so schedules that reach the same graph
// are merged and "executions" counts *distinct consistent executions*,
// not interleavings.  Restricting loads to already-created stores is
// complete for RC11 because consistent graphs are (sb u rf)-acyclic --
// see execution.h.
//
// Two violation classes are reported, each with a rendered execution:
//   DataRace  -- conflicting unordered plain accesses (found mid-search);
//   Invariant -- a user predicate failed on a complete consistent
//                execution (lost increment, monotonicity regression, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "ruco/wmm/program.h"

namespace ruco::wmm {

struct Violation {
  std::string kind;     // "data-race" | "invariant"
  std::string message;  // what failed
  std::string dump;     // rendered execution graph
};

/// Checked on every complete consistent execution; return a non-empty
/// message to report a violation.
using Invariant = std::function<std::string(const Graph&)>;

struct ExploreOptions {
  Invariant invariant;
  std::size_t max_violations = 4;   // stop the search after this many
  std::uint64_t max_states = 2'000'000;  // safety valve
};

struct ExploreResult {
  std::uint64_t executions = 0;  // distinct complete consistent executions
  std::uint64_t states = 0;      // distinct partial graphs visited
  std::set<std::vector<Value>> outcomes;      // observe() tuples
  std::set<std::vector<Value>> final_states;  // final value per location
  std::set<std::vector<Value>> joint;         // outcomes ++ final_states
  std::vector<Violation> violations;
  std::uint64_t violation_count = 0;  // including ones past max_violations
  bool complete = true;               // state-space fully explored

  bool ok() const { return violation_count == 0; }
};

ExploreResult explore(const Program& program, const ExploreOptions& options);
inline ExploreResult explore(const Program& program) {
  return explore(program, ExploreOptions{});
}

/// Reference executor: the same Program under *interleaving* sequential
/// consistency (one global memory, operations atomic, no reordering).
/// Used by the cross-validation tests: for all-seq_cst programs the RC11
/// explorer must produce exactly this outcome set.
struct ScResult {
  std::uint64_t executions = 0;  // deduplicated complete runs
  std::set<std::vector<Value>> outcomes;
  std::set<std::vector<Value>> final_states;
  std::set<std::vector<Value>> joint;
};

ScResult explore_sc(const Program& program);

}  // namespace ruco::wmm
