// Litmus-program builder and the wmm::Atomic<T> shim.
//
// A Program is a set of shared locations plus thread bodies written as
// ordinary C++ lambdas against Atomic<T>/Plain<T> handles -- the same
// shape as the production code, so protocol kernels can be transcribed
// line-for-line against the real `runtime::mo_*` constants.
//
// The explorer needs to run a thread up to its Nth shared-memory
// operation with *chosen* results for the first N-1.  Bodies are plain
// functions, so this is done by re-execution: each step re-runs the body
// from the top against a per-thread script of previously decided
// operation results; the first operation past the script is captured and
// a PauseSignal unwinds the stack.  Bodies must therefore be
// deterministic functions of the values their shared-memory reads
// return (the shim verifies this by replaying the script's op
// descriptors and rejecting divergence).
//
// observe(v) records a value into the execution's outcome tuple -- the
// litmus analogue of "r1 = ...; exists (r1 = 0 /\ ...)".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ruco/wmm/execution.h"

namespace ruco::wmm {

/// One shared-memory operation as the body requests it (before the
/// explorer decides its result).
struct OpDesc {
  EventKind kind = EventKind::kFence;
  LocId loc = 0;
  std::memory_order order = std::memory_order_seq_cst;
  std::memory_order fail_order = std::memory_order_seq_cst;  // CAS only
  Value store_value = 0;  // stores; CAS desired
  Value expected = 0;     // CAS
  bool operator==(const OpDesc&) const = default;
};

/// The explorer's decision for one operation.
struct OpResult {
  Value value = 0;  // load result / CAS observed value
  bool cas_ok = false;
};

struct OpRecord {
  OpDesc desc;
  OpResult result;
};

/// Thrown by the shim to unwind a body at its first undecided operation.
/// Never escapes Program::run_thread.
struct PauseSignal {};

namespace detail {

struct ThreadCtx {
  const std::vector<OpRecord>* script = nullptr;
  std::size_t cursor = 0;
  OpDesc pending;
  bool paused = false;
  std::vector<Value>* observations = nullptr;

  /// Replay-or-pause: returns the scripted result for this op, or
  /// records it as pending and throws PauseSignal.
  OpResult issue(const OpDesc& desc);
};

ThreadCtx*& current_ctx();

OpResult issue_op(const OpDesc& desc);
void record_observation(Value v);

}  // namespace detail

template <typename T>
class Atomic {
 public:
  Atomic() = default;

  T load(std::memory_order order) const {
    OpDesc d;
    d.kind = EventKind::kLoad;
    d.loc = loc_;
    d.order = order;
    return static_cast<T>(detail::issue_op(d).value);
  }

  void store(T v, std::memory_order order) const {
    OpDesc d;
    d.kind = EventKind::kStore;
    d.loc = loc_;
    d.order = order;
    d.store_value = static_cast<Value>(v);
    detail::issue_op(d);
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order ok,
                               std::memory_order fail) const {
    OpDesc d;
    d.kind = EventKind::kRmw;
    d.loc = loc_;
    d.order = ok;
    d.fail_order = fail;
    d.expected = static_cast<Value>(expected);
    d.store_value = static_cast<Value>(desired);
    const OpResult r = detail::issue_op(d);
    if (!r.cas_ok) expected = static_cast<T>(r.value);
    return r.cas_ok;
  }

 private:
  friend class Program;
  explicit Atomic(LocId loc) : loc_{loc} {}
  LocId loc_ = 0;
};

/// Non-atomic shared location: accesses are race-checked, not ordered.
template <typename T>
class Plain {
 public:
  Plain() = default;

  T load() const {
    OpDesc d;
    d.kind = EventKind::kPlainLoad;
    d.loc = loc_;
    return static_cast<T>(detail::issue_op(d).value);
  }

  void store(T v) const {
    OpDesc d;
    d.kind = EventKind::kPlainStore;
    d.loc = loc_;
    d.store_value = static_cast<Value>(v);
    detail::issue_op(d);
  }

 private:
  friend class Program;
  explicit Plain(LocId loc) : loc_{loc} {}
  LocId loc_ = 0;
};

inline void fence(std::memory_order order) {
  OpDesc d;
  d.kind = EventKind::kFence;
  d.order = order;
  detail::issue_op(d);
}

/// Record a local result into the execution's outcome tuple.
inline void observe(Value v) { detail::record_observation(v); }

class Program {
 public:
  template <typename T>
  Atomic<T> atomic(std::string name, T init) {
    return Atomic<T>{add_location(std::move(name),
                                  static_cast<Value>(init), true)};
  }

  template <typename T>
  Plain<T> plain(std::string name, T init) {
    return Plain<T>{add_location(std::move(name),
                                 static_cast<Value>(init), false)};
  }

  ThreadId thread(std::function<void()> body) {
    bodies_.push_back(std::move(body));
    return static_cast<ThreadId>(bodies_.size() - 1);
  }

  const std::vector<LocInfo>& locations() const { return locs_; }
  std::size_t num_threads() const { return bodies_.size(); }

  struct ThreadStep {
    bool completed = false;
    OpDesc op;  // valid when !completed
  };

  /// Re-run thread `t` against `script`; return its next undecided
  /// operation, or completed.  Throws std::logic_error if the body
  /// diverges from the script (non-deterministic body).
  ThreadStep run_thread(ThreadId t,
                        const std::vector<OpRecord>& script) const;

  /// Run a *completed* thread to collect its observe() values.
  std::vector<Value> collect_observations(
      ThreadId t, const std::vector<OpRecord>& script) const;

 private:
  LocId add_location(std::string name, Value init, bool atomic);

  std::vector<LocInfo> locs_;
  std::vector<std::function<void()>> bodies_;
};

}  // namespace ruco::wmm
