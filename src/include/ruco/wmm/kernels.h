// Protocol kernels: the production hot-path synchronization patterns
// transcribed as litmus programs against the real `runtime::mo_*`
// constants, with their correctness conditions as machine-checked
// invariants over all RC11-consistent executions.
//
// Five kernels cover the order table in DESIGN.md ("Hot-path
// engineering"):
//
//   propagate-counter/{conditional,always-twice}
//       `propagate_twice` (ruco/maxreg/propagate.h) on a 2-leaf tree
//       with two concurrent increments, both RefreshPolicy variants.
//       Invariants: no lost increment (final node == 2) and no
//       monotonicity regression (the node's modification order is
//       nondecreasing) -- the PR-4 node-load bug class.
//
//   propagate-snapshot
//       The same propagation with a non-atomic payload published before
//       the leaf store (the f-array snapshot / pointer-carrying
//       aggregate shape).  Invariant: every payload read is race-free
//       and sees the published value -- this is the kernel that makes
//       the *child* acquire load load-bearing (for the pure counter it
//       is not; see wmm_test's minimality tests).
//
//   root-read
//       TreeMaxRegister's read fast path: an acquire root load
//       justifying a plain read of data published before the install.
//
//   leaf-handoff
//       The leaf-store -> helping-propagate handoff: a helper observes
//       a released leaf and completes the propagation for the writer.
//
//   mcas-publication
//       The MCAS descriptor-publication pattern from src/kcas/mcas.cpp:
//       descriptor fields written plain, published by the install CAS
//       (acq_rel), re-read by helpers through acquire cell loads; the
//       status decide CAS publishes helper-side writes back.  Invariant:
//       no torn descriptor read (all plain reads see the published
//       values, race-free).
//
// mutation_sites() weakens each load-bearing mo_* use-site one at a
// time; run_mutation_driver() asserts the explorer exhibits a concrete
// violating execution for every one of them -- machine-proving the
// order table sound *and* minimal.  The PR-4 `propagate_twice` node
// load (acquire -> relaxed) is a permanently pinned must-fail site.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ruco/maxreg/refresh_policy.h"
#include "ruco/runtime/memorder.h"
#include "ruco/wmm/explore.h"

namespace ruco::wmm {

/// Per-site orders of the propagation protocol, defaulting to the
/// shipped `runtime::mo_*` constants (so a RUCO_SEQCST_ATOMICS build
/// checks the collapsed configuration automatically).
struct PropagateOrders {
  std::memory_order leaf_store = runtime::mo_release;
  std::memory_order node_load = runtime::mo_acquire;  // the PR-4 fix site
  std::memory_order child_load = runtime::mo_acquire;
  std::memory_order cas_ok = runtime::mo_release;
  std::memory_order cas_fail = runtime::mo_relaxed;
  std::memory_order root_read = runtime::mo_acquire;
};

/// Per-site orders of the MCAS descriptor-publication pattern,
/// mirroring src/kcas/mcas.cpp.
struct McasOrders {
  std::memory_order install_ok = runtime::mo_acq_rel;
  std::memory_order install_fail = runtime::mo_acquire;
  std::memory_order cell_load = runtime::mo_acquire;
  std::memory_order status_decide = runtime::mo_acq_rel;
  std::memory_order status_decide_fail = runtime::mo_acquire;
  std::memory_order status_read = runtime::mo_acquire;
};

struct Kernel {
  std::string name;
  std::string description;
  Program program;
  Invariant invariant;
};

Kernel make_propagate_counter_kernel(maxreg::RefreshPolicy policy,
                                     const PropagateOrders& o = {});
Kernel make_propagate_snapshot_kernel(const PropagateOrders& o = {});
Kernel make_root_read_kernel(const PropagateOrders& o = {});
Kernel make_leaf_handoff_kernel(const PropagateOrders& o = {});
Kernel make_mcas_publication_kernel(const McasOrders& o = {});

/// All kernels at the shipped orders.  The acceptance bar: zero
/// violations, search complete.
std::vector<Kernel> protocol_kernels();

/// Explore a kernel with its invariant installed.
ExploreResult check_kernel(const Kernel& kernel,
                           std::size_t max_violations = 4);

struct MutationSite {
  std::string id;    // "<kernel>:<site> <shipped>-><weakened>"
  std::string note;  // the bug class this weakening reintroduces
  bool pr4_regression = false;
  std::function<Kernel()> make;
};

std::vector<MutationSite> mutation_sites();

struct MutationOutcome {
  std::string id;
  std::string note;
  bool pr4_regression = false;
  std::uint64_t violation_count = 0;
  std::string sample_kind;     // kind of the first violation found
  std::string sample_message;
  std::string sample_dump;     // rendered violating execution
  bool found() const { return violation_count > 0; }
};

/// Weakens every site and collects what the explorer finds.  Every
/// outcome must report found() == true.
std::vector<MutationOutcome> run_mutation_driver();

}  // namespace ruco::wmm
