// RC11-style axiomatic execution graphs for the weak-memory model checker.
//
// An execution is a set of events (one per dynamic memory access, fence,
// or location initialiser) together with three primitive relations:
//
//   sb  -- sequenced-before: program order within each thread, derived
//          from (thread, index) and never stored explicitly;
//   rf  -- reads-from: every load (including the read part of a CAS)
//          names the store whose value it observed;
//   mo  -- modification order: a total order on the stores of each
//          atomic location, kept as the per-location `stores()` list.
//
// From those the graph derives happens-before (sb plus synchronizes-with
// from release/acquire edges, release sequences, and fences) and the
// extended coherence order eco = (rf | mo | fr)+, and `consistent()`
// decides the RC11 axioms:
//
//   COHERENCE  irreflexive(hb ; eco?)       -- per-location SC;
//   ATOMICITY  every RMW reads its immediate mo-predecessor;
//   SC         acyclic(psc)                 -- the RC11 partial-SC axiom
//              over seq_cst accesses and fences (psc_base | psc_F);
//   NO-THIN-AIR acyclic(sb | rf)            -- holds by construction: the
//              explorer only lets loads read stores that already exist,
//              which is complete for RC11 exactly *because* RC11 forbids
//              porf cycles (every consistent graph has a porf-respecting
//              generation order).
//
// Non-atomic ("plain") locations carry no mo; conflicting plain accesses
// unordered by hb are a data race, surfaced by `race()` as a violation
// (this is what makes "torn descriptor read" machine-checkable).
//
// Graphs are tiny by design (kMaxEvents = 64) so every derived relation
// is a vector of uint64_t row bitmasks and the axiom check is a handful
// of bitset transitive closures.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ruco/core/types.h"

namespace ruco::wmm {

using ruco::Value;
using EventId = std::uint32_t;
using LocId = std::uint32_t;
using ThreadId = std::uint32_t;

inline constexpr EventId kNoEvent = static_cast<EventId>(-1);
inline constexpr ThreadId kInitThread = static_cast<ThreadId>(-1);
inline constexpr std::size_t kMaxEvents = 64;

enum class EventKind : std::uint8_t {
  kInit,        // per-location initial store (one per location, hb-first)
  kLoad,        // atomic load; also a failed CAS (cas_fail flag set)
  kStore,       // atomic store
  kRmw,         // successful CAS: one event with a read and a write part
  kFence,       // memory fence
  kPlainLoad,   // non-atomic load (race-checked, value = hb-maximal write)
  kPlainStore,  // non-atomic store (race-checked)
};

const char* to_string(EventKind kind);
std::string to_string(std::memory_order order);

/// Static description of one shared location in a litmus program.
struct LocInfo {
  std::string name;
  Value init = 0;
  bool atomic = true;
};

struct Event {
  EventId id = 0;
  ThreadId thread = kInitThread;
  std::uint32_t index = 0;  // program-order position within the thread
  EventKind kind = EventKind::kInit;
  LocId loc = 0;
  std::memory_order order = std::memory_order_relaxed;
  Value value_read = 0;     // loads, RMWs (read part), plain loads
  Value value_written = 0;  // stores, RMWs (write part), inits, plain stores
  EventId rf = kNoEvent;    // source store for loads / RMW read parts
  bool cas_fail = false;    // this kLoad is the read of a failed CAS

  bool is_read() const {
    return kind == EventKind::kLoad || kind == EventKind::kRmw ||
           kind == EventKind::kPlainLoad;
  }
  bool is_write() const {
    return kind == EventKind::kInit || kind == EventKind::kStore ||
           kind == EventKind::kRmw || kind == EventKind::kPlainStore;
  }
  bool has_loc() const { return kind != EventKind::kFence; }
};

class Graph {
 public:
  /// `locs` must outlive the graph (it lives in the owning Program).
  /// Creates one kInit event per location.
  explicit Graph(const std::vector<LocInfo>* locs);

  const std::vector<Event>& events() const { return events_; }
  const std::vector<LocInfo>& locations() const { return *locs_; }
  std::size_t size() const { return events_.size(); }
  bool can_add_event() const { return events_.size() < kMaxEvents; }

  /// Stores of `loc` in modification order (atomic locations, init first)
  /// or creation order (plain locations, where no mo exists).
  const std::vector<EventId>& stores(LocId loc) const { return stores_[loc]; }

  /// mo-final value of an atomic location (creation-last for plain ones;
  /// only meaningful when the graph is race-free).
  Value final_value(LocId loc) const;

  /// The value sequence the location's modification order writes,
  /// including the initial value -- the "history" invariants range over.
  std::vector<Value> mo_values(LocId loc) const;

  /// The RMW that reads from `store`, or kNoEvent.  RC11 ATOMICITY allows
  /// at most one; the explorer uses this to prune duplicate CAS winners.
  EventId rmw_reader(LocId loc, EventId store) const;

  /// True if inserting a store at mo position `pos` (1..stores.size())
  /// would not split an RMW from its mo-immediate source.
  bool store_pos_ok(LocId loc, std::size_t pos) const;

  // -- event construction (explorer only) --------------------------------
  // Each returns the new event id.  hb rows are computed eagerly at
  // creation: an event's happens-before past is immutable in RC11 once
  // its rf edge is fixed, because sw sources always precede the event.
  EventId add_load(ThreadId t, std::uint32_t index, LocId loc,
                   std::memory_order order, EventId rf, bool cas_fail);
  EventId add_store(ThreadId t, std::uint32_t index, LocId loc,
                    std::memory_order order, Value v, std::size_t mo_pos);
  EventId add_rmw(ThreadId t, std::uint32_t index, LocId loc,
                  std::memory_order order, EventId rf, Value desired);
  EventId add_fence(ThreadId t, std::uint32_t index, std::memory_order order);
  EventId add_plain_store(ThreadId t, std::uint32_t index, LocId loc, Value v);
  EventId add_plain_load(ThreadId t, std::uint32_t index, LocId loc);

  /// RC11 consistency of the (possibly partial) graph.  Sound to prune
  /// on: all derived relations only grow under extension, so a violation
  /// in a prefix persists in every completion.
  bool consistent() const;

  /// First data race on a plain location, rendered, or nullopt.
  std::optional<std::string> race() const;

  /// Canonical serialisation: identical for any two graphs that differ
  /// only in event creation order.  Used both to memoise DFS states and
  /// to deduplicate complete executions.
  std::string signature() const;

  /// Human-readable dump: per-thread event listing plus per-location
  /// modification orders.  This is what violation reports embed.
  std::string render() const;

  /// hb bitmask of strict predecessors of `e` (exposed for invariants).
  std::uint64_t hb_mask(EventId e) const { return hb_[e]; }

 private:
  EventId new_event(ThreadId t, std::uint32_t index, EventKind kind,
                    LocId loc, std::memory_order order);
  void seed_hb(Event& e);                   // sb + init edges
  void add_acquire_edges(Event& e);         // sw into an acquire read
  std::uint64_t release_heads(EventId store) const;
  std::string label(EventId e) const;

  const std::vector<LocInfo>* locs_;
  std::vector<Event> events_;
  std::vector<std::vector<EventId>> stores_;  // per location
  std::vector<std::uint64_t> hb_;             // strict hb predecessors
  std::vector<EventId> thread_last_;          // last event per thread
  std::uint64_t init_mask_ = 0;
};

inline bool is_release_order(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}
inline bool is_acquire_order(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

}  // namespace ruco::wmm
