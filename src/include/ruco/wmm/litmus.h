// Litmus-test batteries for the RC11 explorer.
//
// Two suites:
//
//   classic_battery()    -- the textbook programs (SB, MP, LB, CoRR,
//                           IRIW, 2+2W, R) with their *exact* RC11
//                           allowed-outcome sets, written against
//                           std::memory_order_* literals.  These validate
//                           the executor itself: any deviation -- an
//                           outcome missing or an extra one -- is an
//                           executor bug, not a program bug.
//
//   handtuned_battery()  -- the same shapes written against the
//                           `runtime::mo_*` constants the production hot
//                           paths use.  Each carries the designated weak
//                           outcome that the hand-tuned orders permit;
//                           under -DRUCO_SEQCST_ATOMICS=ON the constants
//                           collapse to seq_cst and `allowed` (computed
//                           at compile time for the active configuration)
//                           drops exactly those outcomes -- machine-
//                           verifying memorder.h's fallback claim.
//
// Outcomes are *joint* tuples: every observe() value in thread order,
// followed by the final value of every location in declaration order.
// The joint form is what makes tests like R expressible, where the
// forbidden behaviour is a correlation between a read and a final state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ruco/wmm/program.h"

namespace ruco::wmm {

struct Litmus {
  std::string name;
  std::string description;
  Program program;
  /// Exact expected joint-outcome set under RC11 for the configuration
  /// this library was compiled in.
  std::vector<std::vector<Value>> allowed;
  /// The designated weak-behaviour outcome: present in the default
  /// build's `allowed`, absent under RUCO_SEQCST_ATOMICS.  Empty for
  /// programs whose outcome set does not depend on the configuration.
  std::optional<std::vector<Value>> weak_outcome;
};

std::vector<Litmus> classic_battery();
std::vector<Litmus> handtuned_battery();

}  // namespace ruco::wmm
