#include "ruco/runtime/thread_harness.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "ruco/telemetry/metrics.h"

namespace ruco::runtime {

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-phase accounting: spawn/barrier setup vs. time inside the
/// post-barrier body (approximated by the longest worker, which is what
/// bounds the run).  Telemetry only -- the harness semantics are untouched.
struct HarnessTiming {
  explicit HarnessTiming(std::size_t count) : start_us(now_us()) {
    const auto& tm = telemetry::prod();
    tm.harness_runs.inc();
    tm.harness_threads.add(count);
  }
  void body_started() { body_start_us = now_us(); }
  ~HarnessTiming() {
    const std::uint64_t end = now_us();
    const auto& tm = telemetry::prod();
    tm.harness_wall_us.add(end - start_us);
    if (body_start_us != 0) tm.harness_body_us.add(end - body_start_us);
  }
  std::uint64_t start_us = 0;
  std::uint64_t body_start_us = 0;
};

}  // namespace

void run_threads(std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  HarnessTiming timing{count};
  if (count == 1) {
    timing.body_started();
    body(0);
    return;
  }
  SpinBarrier barrier{count};
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads.emplace_back([&barrier, &body, &timing, i] {
      barrier.arrive_and_wait();
      if (i == 0) timing.body_started();
      body(i);
    });
  }
  for (auto& t : threads) t.join();
}

RunThreadsResult run_threads(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             const WatchdogOptions& watchdog) {
  RunThreadsResult result;
  if (watchdog.deadline.count() <= 0) {
    run_threads(count, body);
    return result;
  }
  if (count == 0) return result;
  HarnessTiming timing{count};
  // Workers flag completion individually so the watchdog can name exactly
  // which thread is stuck, not just that some thread is.
  const auto finished_flags =
      std::make_unique<std::atomic<bool>[]>(count);
  for (std::size_t i = 0; i < count; ++i) finished_flags[i].store(false);
  std::atomic<std::size_t> finished{0};
  SpinBarrier barrier{count};
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads.emplace_back([&, i] {
      barrier.arrive_and_wait();
      if (i == 0) timing.body_started();
      body(i);
      finished_flags[i].store(true, std::memory_order_release);
      finished.fetch_add(1, std::memory_order_acq_rel);
    });
  }

  const auto deadline_at = std::chrono::steady_clock::now() + watchdog.deadline;
  while (finished.load(std::memory_order_acquire) < count &&
         std::chrono::steady_clock::now() < deadline_at) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  if (finished.load(std::memory_order_acquire) < count) {
    result.completed_in_time = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (!finished_flags[i].load(std::memory_order_acquire)) {
        result.hang.stuck.push_back(i);
      }
    }
    std::string diag = "run_threads watchdog: deadline of " +
                       std::to_string(watchdog.deadline.count()) +
                       " ms passed with " +
                       std::to_string(result.hang.stuck.size()) + " of " +
                       std::to_string(count) + " workers still running;" +
                       " stuck thread index(es):";
    for (const std::size_t i : result.hang.stuck) {
      diag += " " + std::to_string(i);
    }
    result.hang.diagnostic = std::move(diag);
    if (watchdog.on_hang) {
      watchdog.on_hang(result.hang);
    } else {
      // No handler: a hung worker cannot be joined safely, so fail loudly
      // with the culprit named rather than hang CI forever.
      std::fprintf(stderr, "%s\n", result.hang.diagnostic.c_str());
      std::abort();
    }
  }
  // A custom on_hang handler is responsible for unblocking the workers;
  // joining here keeps the no-detached-threads guarantee.
  for (auto& t : threads) t.join();
  return result;
}

}  // namespace ruco::runtime
