#include "ruco/runtime/thread_harness.h"

namespace ruco::runtime {

void run_threads(std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }
  SpinBarrier barrier{count};
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads.emplace_back([&barrier, &body, i] {
      barrier.arrive_and_wait();
      body(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace ruco::runtime
