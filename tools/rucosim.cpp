// rucosim: command-line driver for the execution-model toolkit.
//
//   rucosim adversary --target=<cas|tree|tree-classic|aac|uaac> --k=<K>
//                     [--max-iter=N] [--min-active=M]
//       Run the Theorem 3 essential-set adversary and print the iteration
//       trace (what examples/adversary_trace does, for any target/size).
//
//   rucosim starve --counter=<farray|maxreg|kcas|dcsnap> --n=<N>
//       Run the Theorem 1 construction against a counter and report
//       rounds, knowledge growth, and the Lemma 3 reader probe.
//
//   rucosim run --target=<cas|tree|tree-classic|aac|uaac|lock> --k=<K> [--seed=S] [--pct]
//               [--show=N] [--dot]
//               [--crash-proc=P [--crash-step=K]] [--crash-rate=PERMILLE]
//               [--max-crashes=F] [--spurious=PERMILLE] [--fault-seed=S]
//       Execute the standard writers+reader program under a random (or
//       PCT) schedule, check linearizability, render the first N trace
//       events, and optionally dump the knowledge graph as DOT.  The
//       --crash*/--spurious flags inject faults: crash process P after K
//       of its own steps, crash random processes at the given per-step
//       per-mille rate (up to F crashes), or fail pending CASes
//       spuriously.  Crashed operations stay pending in the history; the
//       linearizability check must still pass, and the faulty trace is
//       re-verified via replay.
//
//   rucosim certify --target=<cas|tree|tree-classic|aac|uaac|lock> --k=<K>
//                   [--sweep=N] [--storms=N] [--bound=B] [--jobs=N]
//       Run the wait-freedom certifier (crash sweep + crash storms) and
//       report the per-process step bound.  All targets but `lock` must
//       certify; `lock` must fail (blocking negative control).  --jobs
//       parallelizes the sweep/storm schedules; the report is identical
//       for any value.
//
//   rucosim check --target=<cas|tree|tree-classic|aac|uaac|lock> --k=<K>
//                 [--bound=B] [--max-crashes=F] [--max-execs=N]
//                 [--por] [--jobs=N] [--legacy]
//       Explore interleavings of the target's writers+reader program with
//       the model checker, verifying linearizability of every complete
//       execution.  --por enables sleep-set partial-order reduction,
//       --jobs=N parallel exploration, --legacy the original recursive
//       engine (differential oracle).  Prints executions, node/replay
//       counters, pruning counters, wall time and executions/sec.
//
//   rucosim wmm [--dump-dir=DIR] [--max-violations=N]
//       Run the weak-memory leg: the classic litmus battery against its
//       exact RC11 outcome sets, the protocol kernels at the shipped
//       runtime::mo_* orders (zero violations required, search must be
//       complete), and the mutation driver (every weakened order site
//       must exhibit a concrete violating execution).  --dump-dir writes
//       rendered executions -- outcome diffs and kernel violations for
//       failures, the refuting witness for every mutation site -- as
//       text files for CI artifact upload.
//
// Exit code 0 iff every check performed passed.
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/adversary/maxreg_adversary.h"
#include "ruco/core/table.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/certify.h"
#include "ruco/sim/fault.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/sim/trace_render.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_snapshots.h"
#include "ruco/telemetry/sim_export.h"
#include "ruco/telemetry/timeline.h"
#include "ruco/wmm/kernels.h"
#include "ruco/wmm/litmus.h"

namespace {

using ruco::ProcId;
using ruco::Value;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options.find(key);
    // A bare flag (--progress) counts as "present, default value".
    return it == options.end() || it->second.empty() ? fallback
                                                     : std::stoull(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options.count(key) != 0;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      args.options[token] = "";
    } else {
      args.options[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return args;
}

ruco::simalgos::MaxRegProgram make_target(const std::string& name,
                                          std::uint32_t k) {
  if (name == "tree") return ruco::simalgos::make_tree_maxreg_program(k);
  if (name == "tree-classic") {
    // Paper-literal unconditional double refresh (no pruning): the
    // reference shape for conditional-vs-classic equivalence checks.
    return ruco::simalgos::make_tree_maxreg_program(
        k, ruco::maxreg::Faithfulness::kHelpOnDuplicate,
        ruco::maxreg::RefreshPolicy::kAlwaysTwice);
  }
  if (name == "aac") {
    return ruco::simalgos::make_aac_maxreg_program(
        k, static_cast<Value>(k));
  }
  if (name == "uaac") {
    return ruco::simalgos::make_unbounded_aac_maxreg_program(k);
  }
  if (name == "lock") return ruco::simalgos::make_lock_maxreg_program(k);
  if (name != "cas") {
    std::cerr << "warning: unknown target '" << name
              << "', falling back to cas\n";
  }
  return ruco::simalgos::make_cas_maxreg_program(k);
}

/// Builds the FaultPlan described by the --crash*/--spurious flags;
/// returns whether any fault flag was given.
bool parse_fault_plan(const Args& args, std::uint64_t fallback_seed,
                      ruco::sim::FaultPlan& plan) {
  bool faulty = false;
  plan.seed = args.get_u64("fault-seed", fallback_seed);
  if (args.has("crash-proc")) {
    plan.crash_at.push_back(ruco::sim::CrashPoint{
        static_cast<ProcId>(args.get_u64("crash-proc", 0)),
        args.get_u64("crash-step", 0),
        ruco::sim::CrashPoint::Basis::kOwnSteps});
    faulty = true;
  }
  if (args.has("crash-rate")) {
    plan.crash_per_mille =
        static_cast<std::uint32_t>(args.get_u64("crash-rate", 50));
    plan.max_random_crashes =
        static_cast<std::uint32_t>(args.get_u64("max-crashes", 1));
    faulty = true;
  }
  if (args.has("spurious")) {
    plan.spurious_cas_per_mille =
        static_cast<std::uint32_t>(args.get_u64("spurious", 100));
    faulty = true;
  }
  return faulty;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  out << text << "\n";
  return static_cast<bool>(out);
}

int cmd_adversary(const Args& args) {
  const std::string target = args.get("target", "cas");
  const auto k = static_cast<std::uint32_t>(args.get_u64("k", 256));
  ruco::adversary::MaxRegAdversaryOptions opts;
  opts.max_iterations = args.get_u64("max-iter", 32);
  opts.min_active = args.get_u64("min-active", 8);
  const auto report =
      ruco::adversary::run_maxreg_adversary(make_target(target, k), opts);

  std::cout << "Theorem 3 adversary vs " << target << ", K = " << k << "\n\n";
  ruco::Table t{{"iter", "case", "m", "|E_i|", "erased", "halted", "replay",
                 "invariants"}};
  for (const auto& it : report.iterations) {
    t.add(it.index, ruco::adversary::to_string(it.contention),
          it.active_before, it.essential_after, it.erased,
          it.halted ? "yes" : "-", it.replay_ok ? "ok" : "FAIL",
          it.invariants_ok ? "ok" : "FAIL");
  }
  t.print();
  std::cout << "\nstopped: " << report.stop_reason << "; i* = "
            << report.iterations_completed << ", |E_i*| = "
            << report.final_essential << "\nreader: " << report.reader_value
            << " in " << report.reader_steps
            << " steps (consistent: " << (report.reader_ok ? "yes" : "NO")
            << ")\n";
  return report.all_replays_ok && report.all_invariants_ok &&
                 report.reader_ok
             ? 0
             : 1;
}

int cmd_starve(const Args& args) {
  const std::string counter = args.get("counter", "farray");
  const auto n = static_cast<std::uint32_t>(args.get_u64("n", 81));
  ruco::simalgos::CounterProgram program =
      counter == "maxreg"
          ? ruco::simalgos::make_maxreg_counter_program(
                n, static_cast<Value>(n))
          : counter == "kcas"
                ? ruco::simalgos::make_kcas_counter_program(n)
                : counter == "dcsnap"
                      ? ruco::simalgos::make_dc_snapshot_counter_program(n)
                      : ruco::simalgos::make_farray_counter_program(n);
  const auto report = ruco::adversary::run_counter_adversary(program);
  std::cout << "Theorem 1 adversary vs " << counter << " counter, N = " << n
            << "\n";
  ruco::Table t{{"rounds", "max inc steps", "M<=3^j", "reader value",
                 "reader steps", "|AW(reader)|"}};
  t.add(report.rounds, report.max_increment_steps,
        report.knowledge_bound_held ? "yes" : "NO", report.reader_value,
        report.reader_steps, report.reader_awareness);
  t.print();
  return report.knowledge_bound_held && report.reader_correct ? 0 : 1;
}

int cmd_run(const Args& args) {
  const std::string target = args.get("target", "tree");
  const auto k = static_cast<std::uint32_t>(args.get_u64("k", 8));
  const std::uint64_t seed = args.get_u64("seed", 1);
  auto bundle = make_target(target, k);
  ruco::sim::System sys{bundle.program};
  const bool want_telemetry = args.has("telemetry");
  const bool want_perfetto = args.has("perfetto");
  if (want_telemetry) sys.enable_decision_log(true);
  ruco::sim::FaultPlan plan;
  const bool faulty = parse_fault_plan(args, seed, plan);
  ruco::sim::FaultInjector injector{sys, plan};
  if (args.has("pct")) {
    ruco::sim::PctOptions opts;
    opts.seed = seed;
    if (faulty) {
      ruco::sim::run_pct(sys, opts, injector);
    } else {
      ruco::sim::run_pct(sys, opts);
    }
  } else if (faulty) {
    ruco::sim::run_random(sys, seed, 1u << 24, injector);
  } else {
    ruco::sim::run_random(sys, seed, 1u << 24);
  }
  if (!ruco::sim::all_done(sys)) {
    std::cout << "schedule budget exhausted before completion\n";
    return 1;
  }
  bool replay_ok = true;
  if (faulty) {
    for (const auto& crash : injector.crashes()) {
      std::cout << "CRASH p" << crash.proc << " after " << crash.own_steps
                << " own steps (global step " << crash.at_trace_size
                << ")\n";
    }
    if (injector.spurious_count() != 0) {
      std::cout << injector.spurious_count()
                << " spurious weak-CAS failure(s)\n";
    }
    if (injector.unfired_placements() != 0) {
      std::cout << "note: " << injector.unfired_placements()
                << " crash placement(s) never fired (the process completed "
                   "before its step threshold)\n";
    }
    // Faulty executions must replay exactly (crashes leave the surviving
    // prefix legal; spurious failures are re-injected from the trace).
    ruco::sim::System fresh{bundle.program};
    const auto replay =
        ruco::sim::replay_trace(fresh, sys.trace(), /*check_responses=*/true);
    replay_ok = replay.ok;
    std::cout << "replay: " << (replay.ok ? "ok" : replay.message) << "\n";
  }
  const auto res = ruco::lincheck::check_linearizable(
      ruco::lincheck::from_sim_history(sys.history()),
      ruco::lincheck::MaxRegisterSpec{});
  const auto show = args.get_u64("show", 24);
  ruco::sim::TraceRenderOptions render;
  render.max_events = show;
  std::cout << ruco::sim::render_trace(sys.trace(), sys.num_processes(),
                                       render);
  std::cout << "\nsteps: " << sys.trace().size();
  if (sys.crash_count() != 0) {
    std::cout << ", crashes: " << sys.crash_count() << " (pending ops: "
              << ruco::lincheck::from_sim_history(sys.history())
                     .pending_count()
              << ")";
  }
  std::cout << ", linearizable: " << (res.linearizable ? "yes" : "NO")
            << " (" << res.states_explored << " states)\n";
  if (args.has("dot")) {
    std::cout << "\n"
              << ruco::sim::knowledge_dot(sys.trace(), sys.num_processes(),
                                          sys.num_objects());
  }
  bool export_ok = true;
  if (want_telemetry) {
    // Contention accounting + scheduler-decision summary, as one JSON file.
    const auto report = ruco::telemetry::contention_report(sys);
    std::uint64_t d_steps = 0;
    std::uint64_t d_crashes = 0;
    std::uint64_t d_spurious = 0;
    for (const auto& d : sys.decision_log()) {
      switch (d.kind) {
        case ruco::sim::SchedDecision::Kind::kStep: ++d_steps; break;
        case ruco::sim::SchedDecision::Kind::kCrash: ++d_crashes; break;
        case ruco::sim::SchedDecision::Kind::kSpurious: ++d_spurious; break;
      }
    }
    std::ostringstream json;
    json << "{\"contention\":" << report.to_json()
         << ",\"decisions\":{\"total\":" << sys.decision_log().size()
         << ",\"steps\":" << d_steps << ",\"crashes\":" << d_crashes
         << ",\"spurious\":" << d_spurious << "}}";
    const std::string path = args.get("telemetry", "telemetry.json");
    export_ok = write_text_file(path, json.str()) && export_ok;
    if (export_ok) std::cout << "wrote " << path << "\n";
  }
  if (want_perfetto) {
    ruco::telemetry::TimelineWriter tl;
    ruco::telemetry::sim_timeline(sys, tl);
    const std::string err = tl.validate();
    if (!err.empty()) {
      std::cerr << "error: perfetto export invalid: " << err << "\n";
      export_ok = false;
    } else {
      const std::string path = args.get("perfetto", "sim.trace.json");
      export_ok = tl.write_file(path) && export_ok;
      if (export_ok) {
        std::cout << "wrote " << path << " (" << tl.num_events()
                  << " events; open at ui.perfetto.dev)\n";
      }
    }
  }
  return res.decided && res.linearizable && replay_ok && export_ok ? 0 : 1;
}

int cmd_certify(const Args& args) {
  const std::string target = args.get("target", "tree");
  const auto k = static_cast<std::uint32_t>(args.get_u64("k", 8));
  auto bundle = make_target(target, k);
  ruco::sim::WaitFreedomOptions opts;
  opts.step_bound = args.get_u64("bound", 0);
  opts.sweep_steps = args.get_u64("sweep", 16);
  opts.storm_seeds = args.get_u64("storms", 8);
  opts.jobs = static_cast<std::uint32_t>(args.get_u64("jobs", 1));
  if (args.has("progress")) {
    opts.progress_interval = args.get_u64("progress", 64);
    opts.on_progress = [](const ruco::sim::CertifyProgress& p) {
      std::cerr << "certify: " << p.schedules_done << "/"
                << p.schedules_total << " schedules, "
                << static_cast<std::uint64_t>(p.schedules_per_sec)
                << "/s, " << static_cast<std::uint64_t>(p.wall_ms)
                << " ms\n";
    };
  }
  const auto report =
      ruco::sim::certify_wait_freedom(bundle.program, opts);
  std::cout << "wait-freedom certification: " << target << ", K = " << k
            << "\n";
  ruco::Table t{{"schedules", "step bound", "worst survivor", "certified"}};
  t.add(report.schedules, report.step_bound, report.worst_survivor_steps,
        report.certified ? "yes" : "NO");
  t.print();
  if (!report.message.empty()) std::cout << report.message << "\n";
  // `lock` is the blocking negative control: failing is its correct result.
  const bool expected = target == "lock" ? !report.certified
                                         : report.certified;
  return expected ? 0 : 1;
}

int cmd_check(const Args& args) {
  const std::string target = args.get("target", "cas");
  const auto k = static_cast<std::uint32_t>(args.get_u64("k", 3));
  auto bundle = make_target(target, k);
  ruco::sim::ModelCheckOptions opts;
  opts.max_executions = args.get_u64("max-execs", 0);
  if (args.has("bound")) {
    opts.preemption_bound =
        static_cast<std::uint32_t>(args.get_u64("bound", 0));
  }
  opts.max_crashes =
      static_cast<std::uint32_t>(args.get_u64("max-crashes", 0));
  opts.por = args.has("por");
  opts.jobs = static_cast<std::uint32_t>(args.get_u64("jobs", 1));
  if (args.has("legacy")) {
    opts.engine = ruco::sim::ModelCheckOptions::Engine::kLegacyRecursive;
  }
  ruco::sim::ModelCheckTelemetry heartbeat;
  if (args.has("progress")) {
    heartbeat.interval_executions = args.get_u64("progress", 10'000);
    heartbeat.on_progress = [](const ruco::sim::ModelCheckProgress& p) {
      std::cerr << "check: " << p.executions << " execs, "
                << static_cast<std::uint64_t>(p.executions_per_sec)
                << "/s, depth " << p.current_depth << ", pruned "
                << p.sleep_pruned << "+" << p.persistent_pruned
                << ", replays " << p.replays << "\n";
    };
    opts.telemetry = &heartbeat;
  }
  const auto verdict = [](const ruco::sim::System& sys) -> std::string {
    const auto res = ruco::lincheck::check_linearizable(
        ruco::lincheck::from_sim_history(sys.history()),
        ruco::lincheck::MaxRegisterSpec{});
    if (!res.decided) return "undecided";
    return res.linearizable ? "" : "non-linearizable execution";
  };
  const auto result =
      ruco::sim::model_check(bundle.program, verdict, opts);

  std::cout << "model check: " << target << ", K = " << k
            << (opts.por ? ", POR" : "") << ", jobs = " << opts.jobs
            << (args.has("legacy") ? ", legacy engine" : "") << "\n";
  ruco::Table t{{"executions", "nodes", "replayed steps", "sleep-pruned",
                 "wall ms", "exec/s"}};
  const double secs = result.stats.wall_ms / 1e3;
  t.add(result.executions, result.stats.nodes, result.stats.replayed_steps,
        result.stats.sleep_pruned,
        static_cast<std::uint64_t>(result.stats.wall_ms),
        secs > 0 ? static_cast<std::uint64_t>(
                       static_cast<double>(result.executions) / secs)
                 : 0);
  t.print();
  std::cout << "verdict: " << (result.ok ? "ok" : "FAIL")
            << (result.exhaustive ? " (exhaustive)" : " (partial)")
            << (result.stop == ruco::sim::StopReason::kBudget
                    ? " [budget reached]"
                    : "")
            << "\n";
  if (args.has("telemetry")) {
    const auto& st = result.stats;
    std::ostringstream json;
    json << "{\"executions\":" << result.executions
         << ",\"nodes\":" << st.nodes
         << ",\"applied_steps\":" << st.applied_steps
         << ",\"replays\":" << st.replays
         << ",\"replayed_steps\":" << st.replayed_steps
         << ",\"sleep_pruned\":" << st.sleep_pruned
         << ",\"persistent_pruned\":" << st.persistent_pruned
         << ",\"frontier_roots\":" << st.frontier_roots
         << ",\"jobs\":" << st.jobs_used
         << ",\"wall_ms\":" << st.wall_ms
         << ",\"executions_per_sec\":"
         << (st.wall_ms > 0
                 ? static_cast<double>(result.executions) * 1e3 / st.wall_ms
                 : 0.0)
         << ",\"depth_hist\":[";
    for (std::size_t i = 0; i < st.depth_hist.size(); ++i) {
      if (i != 0) json << ',';
      json << st.depth_hist[i];
    }
    json << "],\"worker_executions\":[";
    for (std::size_t i = 0; i < st.worker_executions.size(); ++i) {
      if (i != 0) json << ',';
      json << st.worker_executions[i];
    }
    json << "]}";
    const std::string path = args.get("telemetry", "check_telemetry.json");
    if (write_text_file(path, json.str())) {
      std::cout << "wrote " << path << "\n";
    } else {
      return 1;
    }
  }
  if (!result.ok) {
    std::cout << result.message << "\n"
              << ruco::sim::render_schedule(bundle.program,
                                            result.counterexample);
  }
  return result.ok ? 0 : 1;
}

std::string wmm_slug(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(c);
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

std::string wmm_joint(const std::vector<Value>& tuple) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) os << ',';
    os << tuple[i];
  }
  os << ')';
  return os.str();
}

int cmd_wmm(const Args& args) {
  const std::string dump_dir = args.get("dump-dir", "");
  if (!dump_dir.empty()) std::filesystem::create_directories(dump_dir);
  const std::size_t max_violations = args.get_u64("max-violations", 4);
  bool all_ok = true;
  const auto dump = [&](const std::string& slug, const std::string& text) {
    if (dump_dir.empty()) return;
    const std::string path = dump_dir + "/wmm_" + slug + ".txt";
    if (write_text_file(path, text)) std::cout << "wrote " << path << "\n";
  };

  std::cout << "== litmus batteries (exact RC11 outcome sets) ==\n";
  ruco::Table lt{{"suite", "litmus", "executions", "outcomes", "verdict"}};
  struct Suite {
    const char* tag;
    std::vector<ruco::wmm::Litmus> tests;
  };
  const Suite suites[] = {{"classic", ruco::wmm::classic_battery()},
                          {"handtuned", ruco::wmm::handtuned_battery()}};
  for (const auto& suite : suites) {
    for (const auto& lit : suite.tests) {
      const std::set<std::vector<Value>> expected(lit.allowed.begin(),
                                                  lit.allowed.end());
      const auto res = ruco::wmm::explore(lit.program);
      const bool pass = res.complete && res.ok() && res.joint == expected;
      lt.add(suite.tag, lit.name, res.executions, res.joint.size(),
             pass ? "ok" : "FAIL");
      if (pass) continue;
      all_ok = false;
      std::ostringstream txt;
      txt << lit.name << ": " << lit.description << "\n\n"
          << "expected joint outcomes:\n";
      for (const auto& t : expected) txt << "  " << wmm_joint(t) << "\n";
      txt << "\nexplored joint outcomes:\n";
      for (const auto& t : res.joint) txt << "  " << wmm_joint(t) << "\n";
      for (const auto& v : res.violations) {
        txt << "\n[" << v.kind << "] " << v.message << "\n" << v.dump;
      }
      dump("litmus-" + wmm_slug(lit.name), txt.str());
    }
  }
  lt.print();

  std::cout << "\n== protocol kernels at the shipped orders ==\n";
  ruco::Table kt{
      {"kernel", "executions", "states", "violations", "complete", "verdict"}};
  for (const auto& kernel : ruco::wmm::protocol_kernels()) {
    const auto res = ruco::wmm::check_kernel(kernel, max_violations);
    const bool pass = res.ok() && res.complete;
    kt.add(kernel.name, res.executions, res.states, res.violation_count,
           res.complete ? "yes" : "NO", pass ? "ok" : "FAIL");
    if (pass) continue;
    all_ok = false;
    for (std::size_t i = 0; i < res.violations.size(); ++i) {
      const auto& v = res.violations[i];
      dump("kernel-" + wmm_slug(kernel.name) + "-" + std::to_string(i),
           kernel.name + " [" + v.kind + "] " + v.message + "\n\n" + v.dump);
    }
  }
  kt.print();

  std::cout << "\n== mutation driver (each weakened site must be refuted) ==\n";
  ruco::Table mt{{"weakened site", "violations", "pinned", "verdict"}};
  for (const auto& m : ruco::wmm::run_mutation_driver()) {
    mt.add(m.id, m.violation_count, m.pr4_regression ? "PR-4" : "",
           m.found() ? "refuted (ok)" : "NOT REFUTED (FAIL)");
    if (!m.found()) {
      all_ok = false;
      continue;
    }
    dump("mutation-" + wmm_slug(m.id),
         m.id + "\n" + m.note + "\n\n[" + m.sample_kind + "] " +
             m.sample_message + "\n\n" + m.sample_dump);
  }
  mt.print();

  std::cout << "\nverdict: "
            << (all_ok ? "ok (shipped orders clean, every weakened site "
                         "exhibits a violating execution)"
                       : "FAIL")
            << "\n";
  return all_ok ? 0 : 1;
}

int usage() {
  std::cout << "usage:\n"
               "  rucosim adversary --target=<cas|tree|tree-classic|aac|uaac> --k=<K>"
               " [--max-iter=N] [--min-active=M]\n"
               "  rucosim starve    --counter=<farray|maxreg|kcas|dcsnap>"
               " --n=<N>\n"
               "  rucosim run       --target=<cas|tree|tree-classic|aac|uaac|lock> --k=<K>"
               " [--seed=S] [--pct] [--show=N] [--dot]\n"
               "                    [--crash-proc=P [--crash-step=K]]"
               " [--crash-rate=PERMILLE] [--max-crashes=F]\n"
               "                    [--spurious=PERMILLE] [--fault-seed=S]\n"
               "                    [--telemetry[=out.json]]"
               " [--perfetto[=out.trace.json]]\n"
               "  rucosim certify   --target=<cas|tree|tree-classic|aac|uaac|lock> --k=<K>"
               " [--sweep=N] [--storms=N] [--bound=B] [--jobs=N]\n"
               "                    [--progress[=N]]\n"
               "  rucosim check     --target=<cas|tree|tree-classic|aac|uaac|lock> --k=<K>"
               " [--bound=B] [--max-crashes=F]\n"
               "                    [--max-execs=N] [--por] [--jobs=N]"
               " [--legacy] [--progress[=N]]"
               " [--telemetry[=out.json]]\n"
               "  rucosim wmm       [--dump-dir=DIR] [--max-violations=N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "adversary") return cmd_adversary(args);
    if (args.command == "starve") return cmd_starve(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "certify") return cmd_certify(args);
    if (args.command == "check") return cmd_check(args);
    if (args.command == "wmm") return cmd_wmm(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
