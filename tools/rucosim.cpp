// rucosim: command-line driver for the execution-model toolkit.
//
//   rucosim adversary --target=<cas|tree|aac|uaac> --k=<K>
//                     [--max-iter=N] [--min-active=M]
//       Run the Theorem 3 essential-set adversary and print the iteration
//       trace (what examples/adversary_trace does, for any target/size).
//
//   rucosim starve --counter=<farray|maxreg|kcas|dcsnap> --n=<N>
//       Run the Theorem 1 construction against a counter and report
//       rounds, knowledge growth, and the Lemma 3 reader probe.
//
//   rucosim run --target=<cas|tree|aac|uaac> --k=<K> [--seed=S] [--pct]
//               [--show=N] [--dot]
//       Execute the standard writers+reader program under a random (or
//       PCT) schedule, check linearizability, render the first N trace
//       events, and optionally dump the knowledge graph as DOT.
//
// Exit code 0 iff every check performed passed.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/adversary/maxreg_adversary.h"
#include "ruco/core/table.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/sim/trace_render.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_snapshots.h"

namespace {

using ruco::ProcId;
using ruco::Value;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options.count(key) != 0;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      args.options[token] = "";
    } else {
      args.options[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return args;
}

ruco::simalgos::MaxRegProgram make_target(const std::string& name,
                                          std::uint32_t k) {
  if (name == "tree") return ruco::simalgos::make_tree_maxreg_program(k);
  if (name == "aac") {
    return ruco::simalgos::make_aac_maxreg_program(
        k, static_cast<Value>(k));
  }
  if (name == "uaac") {
    return ruco::simalgos::make_unbounded_aac_maxreg_program(k);
  }
  return ruco::simalgos::make_cas_maxreg_program(k);
}

int cmd_adversary(const Args& args) {
  const std::string target = args.get("target", "cas");
  const auto k = static_cast<std::uint32_t>(args.get_u64("k", 256));
  ruco::adversary::MaxRegAdversaryOptions opts;
  opts.max_iterations = args.get_u64("max-iter", 32);
  opts.min_active = args.get_u64("min-active", 8);
  const auto report =
      ruco::adversary::run_maxreg_adversary(make_target(target, k), opts);

  std::cout << "Theorem 3 adversary vs " << target << ", K = " << k << "\n\n";
  ruco::Table t{{"iter", "case", "m", "|E_i|", "erased", "halted", "replay",
                 "invariants"}};
  for (const auto& it : report.iterations) {
    t.add(it.index, ruco::adversary::to_string(it.contention),
          it.active_before, it.essential_after, it.erased,
          it.halted ? "yes" : "-", it.replay_ok ? "ok" : "FAIL",
          it.invariants_ok ? "ok" : "FAIL");
  }
  t.print();
  std::cout << "\nstopped: " << report.stop_reason << "; i* = "
            << report.iterations_completed << ", |E_i*| = "
            << report.final_essential << "\nreader: " << report.reader_value
            << " in " << report.reader_steps
            << " steps (consistent: " << (report.reader_ok ? "yes" : "NO")
            << ")\n";
  return report.all_replays_ok && report.all_invariants_ok &&
                 report.reader_ok
             ? 0
             : 1;
}

int cmd_starve(const Args& args) {
  const std::string counter = args.get("counter", "farray");
  const auto n = static_cast<std::uint32_t>(args.get_u64("n", 81));
  ruco::simalgos::CounterProgram program =
      counter == "maxreg"
          ? ruco::simalgos::make_maxreg_counter_program(
                n, static_cast<Value>(n))
          : counter == "kcas"
                ? ruco::simalgos::make_kcas_counter_program(n)
                : counter == "dcsnap"
                      ? ruco::simalgos::make_dc_snapshot_counter_program(n)
                      : ruco::simalgos::make_farray_counter_program(n);
  const auto report = ruco::adversary::run_counter_adversary(program);
  std::cout << "Theorem 1 adversary vs " << counter << " counter, N = " << n
            << "\n";
  ruco::Table t{{"rounds", "max inc steps", "M<=3^j", "reader value",
                 "reader steps", "|AW(reader)|"}};
  t.add(report.rounds, report.max_increment_steps,
        report.knowledge_bound_held ? "yes" : "NO", report.reader_value,
        report.reader_steps, report.reader_awareness);
  t.print();
  return report.knowledge_bound_held && report.reader_correct ? 0 : 1;
}

int cmd_run(const Args& args) {
  const std::string target = args.get("target", "tree");
  const auto k = static_cast<std::uint32_t>(args.get_u64("k", 8));
  const std::uint64_t seed = args.get_u64("seed", 1);
  auto bundle = make_target(target, k);
  ruco::sim::System sys{bundle.program};
  if (args.has("pct")) {
    ruco::sim::PctOptions opts;
    opts.seed = seed;
    ruco::sim::run_pct(sys, opts);
  } else {
    ruco::sim::run_random(sys, seed, 1u << 24);
  }
  if (!ruco::sim::all_done(sys)) {
    std::cout << "schedule budget exhausted before completion\n";
    return 1;
  }
  const auto res = ruco::lincheck::check_linearizable(
      ruco::lincheck::from_sim_history(sys.history()),
      ruco::lincheck::MaxRegisterSpec{});
  const auto show = args.get_u64("show", 24);
  ruco::sim::TraceRenderOptions render;
  render.max_events = show;
  std::cout << ruco::sim::render_trace(sys.trace(), sys.num_processes(),
                                       render);
  std::cout << "\nsteps: " << sys.trace().size()
            << ", linearizable: " << (res.linearizable ? "yes" : "NO")
            << " (" << res.states_explored << " states)\n";
  if (args.has("dot")) {
    std::cout << "\n"
              << ruco::sim::knowledge_dot(sys.trace(), sys.num_processes(),
                                          sys.num_objects());
  }
  return res.decided && res.linearizable ? 0 : 1;
}

int usage() {
  std::cout << "usage:\n"
               "  rucosim adversary --target=<cas|tree|aac|uaac> --k=<K>"
               " [--max-iter=N] [--min-active=M]\n"
               "  rucosim starve    --counter=<farray|maxreg|kcas|dcsnap>"
               " --n=<N>\n"
               "  rucosim run       --target=<cas|tree|aac|uaac> --k=<K>"
               " [--seed=S] [--pct] [--show=N] [--dot]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "adversary") return cmd_adversary(args);
    if (args.command == "starve") return cmd_starve(args);
    if (args.command == "run") return cmd_run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
