// Production max registers: sequential semantics shared by every
// implementation (typed tests), Algorithm A's Theorem 6 step bounds, AAC's
// O(log M) bounds, bounds enforcement, and threaded stress with
// linearizability checking.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/maxreg/aac_max_register.h"
#include "ruco/maxreg/cas_max_register.h"
#include "ruco/maxreg/lock_max_register.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/maxreg/unbounded_aac_max_register.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/util/bits.h"
#include "ruco/util/rng.h"

namespace ruco::maxreg {
namespace {

constexpr std::uint32_t kProcs = 8;
constexpr Value kBound = 1 << 16;

// Adapters give every implementation the same constructor shape.
struct TreeAdapter : TreeMaxRegister {
  TreeAdapter() : TreeMaxRegister{kProcs} {}
};
struct TreeFaithfulAdapter : TreeMaxRegister {
  TreeFaithfulAdapter() : TreeMaxRegister{kProcs, Faithfulness::kAsPrinted} {}
};
struct AacAdapter : AacMaxRegister {
  AacAdapter() : AacMaxRegister{kBound} {}
};
struct CasAdapter : CasMaxRegister {};
struct LockAdapter : LockMaxRegister {};

template <typename Reg>
class MaxRegisterSemantics : public ::testing::Test {};

using AllMaxRegisters =
    ::testing::Types<TreeAdapter, TreeFaithfulAdapter, AacAdapter, CasAdapter,
                     LockAdapter>;
TYPED_TEST_SUITE(MaxRegisterSemantics, AllMaxRegisters);

TYPED_TEST(MaxRegisterSemantics, FreshRegisterReadsNoValue) {
  TypeParam reg;
  EXPECT_EQ(reg.read_max(0), kNoValue);
}

TYPED_TEST(MaxRegisterSemantics, ReadsLargestWrite) {
  TypeParam reg;
  reg.write_max(0, 10);
  EXPECT_EQ(reg.read_max(1), 10);
  reg.write_max(1, 4);
  EXPECT_EQ(reg.read_max(2), 10) << "smaller write must not regress";
  reg.write_max(2, 25);
  EXPECT_EQ(reg.read_max(0), 25);
}

TYPED_TEST(MaxRegisterSemantics, ZeroIsAValidOperand) {
  TypeParam reg;
  reg.write_max(0, 0);
  EXPECT_EQ(reg.read_max(1), 0);
}

TYPED_TEST(MaxRegisterSemantics, NegativeOperandThrowsAndLeavesNoTrace) {
  // Operands are non-negative by contract (kNoValue = -1 is the "empty"
  // sentinel); rejection is release-mode behavior, not an assert.
  TypeParam reg;
  EXPECT_THROW(reg.write_max(0, -1), std::out_of_range);
  EXPECT_THROW(reg.write_max(0, kNoValue), std::out_of_range);
  EXPECT_EQ(reg.read_max(0), kNoValue) << "failed write must not publish";
  reg.write_max(0, 3);
  EXPECT_THROW(reg.write_max(1, -7), std::out_of_range);
  EXPECT_EQ(reg.read_max(1), 3);
}

TEST(UnboundedAacMaxRegister, NegativeOperandThrows) {
  UnboundedAacMaxRegister reg{20};
  EXPECT_THROW(reg.write_max(0, -1), std::out_of_range);
  EXPECT_EQ(reg.read_max(0), kNoValue);
}

TYPED_TEST(MaxRegisterSemantics, RepeatedSameValueIsIdempotent) {
  TypeParam reg;
  for (ProcId p = 0; p < kProcs; ++p) reg.write_max(p, 42);
  EXPECT_EQ(reg.read_max(0), 42);
}

TYPED_TEST(MaxRegisterSemantics, SequentialRandomWritesTrackMax) {
  TypeParam reg;
  util::SplitMix64 rng{99};
  Value expected = kNoValue;
  for (int i = 0; i < 500; ++i) {
    const Value v = static_cast<Value>(rng.below(kBound));
    const ProcId p = static_cast<ProcId>(rng.below(kProcs));
    reg.write_max(p, v);
    expected = std::max(expected, v);
    ASSERT_EQ(reg.read_max(p), expected) << "after write " << i;
  }
}

TYPED_TEST(MaxRegisterSemantics, AscendingPerProcessWrites) {
  TypeParam reg;
  for (Value v = 0; v < 100; ++v) {
    reg.write_max(static_cast<ProcId>(v % kProcs), v);
    ASSERT_EQ(reg.read_max(0), v);
  }
}

// ------------------------------------------------ Theorem 6 step bounds

TEST(TreeMaxRegisterSteps, ReadIsOneStep) {
  TreeMaxRegister reg{64};
  reg.write_max(0, 17);
  for (int i = 0; i < 10; ++i) {
    runtime::StepScope scope;
    (void)reg.read_max(1);
    EXPECT_EQ(scope.taken(), 1u);  // O(1), and in fact exactly 1
  }
}

class TreeWriteStepsTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TreeWriteStepsTest, WriteIsMinLogNLogV) {
  const std::uint32_t n = GetParam();
  TreeMaxRegister reg{n};
  // Per level: 2 attempts x (read node + read left + read right + CAS) = 8
  // steps, plus the leaf read+write.  depth(v) <= 2 log2(v+1) + 3 for the
  // B1 side and <= log2(N) + 1 for the complete side.
  for (const Value v :
       {Value{0}, Value{1}, Value{3}, Value{7}, Value{n / 2},
        Value{n} * 2, Value{n} * 1000}) {
    runtime::StepScope scope;
    reg.write_max(0, v);
    // Operands v < N go to the B1 leaf (depth <= 2 log2(v+1) + 3, which is
    // O(log v) = O(min(log N, log v)) since v < N); operands v >= N go to
    // the process leaf (depth <= log2(N) + 1 = O(log N)).
    const std::uint64_t depth_bound =
        v < static_cast<Value>(n)
            ? 2 * util::floor_log2(static_cast<std::uint64_t>(v) + 1) + 3
            : util::ceil_log2(n) + 1;
    EXPECT_LE(scope.taken(), 8 * depth_bound + 2) << "N=" << n << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeWriteStepsTest,
                         ::testing::Values(2, 4, 16, 64, 256, 1024));

TEST(TreeMaxRegisterSteps, SmallValueWritesAreCheapInHugeRegisters) {
  // The B1 payoff: WriteMax(1) costs the same at N=4 and N=4096.
  TreeMaxRegister small{4};
  TreeMaxRegister large{4096};
  runtime::StepScope s1;
  small.write_max(0, 1);
  const auto small_steps = s1.taken();
  runtime::StepScope s2;
  large.write_max(0, 1);
  EXPECT_EQ(s2.taken(), small_steps);
}

TEST(TreeMaxRegister, WriteLeafDepthMatchesRegime) {
  TreeMaxRegister reg{256};
  // v < N: B1 leaf, depth grows with v.
  EXPECT_LT(reg.write_leaf_depth(0, 1), reg.write_leaf_depth(0, 200));
  // v >= N: process leaf, depth independent of v.
  EXPECT_EQ(reg.write_leaf_depth(3, 256), reg.write_leaf_depth(3, 1 << 20));
}

// ----------------------------------------------------- AAC specifics

TEST(AacMaxRegister, RejectsOutOfRange) {
  AacMaxRegister reg{16};
  EXPECT_THROW(reg.write_max(0, 16), std::out_of_range);
  EXPECT_THROW(reg.write_max(0, 1000), std::out_of_range);
  reg.write_max(0, 15);  // bound - 1 is fine
  EXPECT_EQ(reg.read_max(0), 15);
}

TEST(AacMaxRegister, BoundOneStoresOnlyZero) {
  AacMaxRegister reg{1};
  EXPECT_EQ(reg.read_max(0), kNoValue);
  reg.write_max(0, 0);
  EXPECT_EQ(reg.read_max(0), 0);
  EXPECT_THROW(reg.write_max(0, 1), std::out_of_range);
}

TEST(AacMaxRegister, NonPowerOfTwoBound) {
  AacMaxRegister reg{100};
  for (const Value v : {99, 50, 98, 0}) reg.write_max(0, v);
  EXPECT_EQ(reg.read_max(0), 99);
}

class AacStepsTest : public ::testing::TestWithParam<Value> {};

TEST_P(AacStepsTest, BothOpsLogM) {
  const Value bound = GetParam();
  AacMaxRegister reg{bound};
  const auto log_m = static_cast<std::uint64_t>(
      util::ceil_log2(static_cast<std::uint64_t>(bound)));
  util::SplitMix64 rng{5};
  for (int i = 0; i < 50; ++i) {
    const Value v = static_cast<Value>(rng.below(
        static_cast<std::uint64_t>(bound)));
    runtime::StepScope w;
    reg.write_max(0, v);
    EXPECT_LE(w.taken(), 2 * log_m + 1) << "write " << v;
    runtime::StepScope r;
    (void)reg.read_max(0);
    EXPECT_LE(r.taken(), log_m + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, AacStepsTest,
                         ::testing::Values(2, 8, 100, 1024, 1 << 16, 1 << 20));

TEST(AacMaxRegister, ReadStepsAreExactlyLogM) {
  // Tight, not just O(log M): ceil(log2 M) switch reads + the any-write
  // read.
  AacMaxRegister reg{1024};
  reg.write_max(0, 700);
  runtime::StepScope scope;
  (void)reg.read_max(0);
  EXPECT_EQ(scope.taken(), 11u);  // 10 levels + 1
}

// --------------------------------------------------- threaded stress

template <typename Reg>
void stress_writers_readers(Reg& reg, std::uint32_t threads,
                            int ops_per_thread, std::uint64_t seed) {
  lincheck::Recorder recorder{threads};
  runtime::run_threads(threads, [&](std::size_t t) {
    util::SplitMix64 rng{seed + t};
    const auto proc = static_cast<ProcId>(t);
    for (int i = 0; i < ops_per_thread; ++i) {
      if (rng.chance(1, 2)) {
        const Value v = static_cast<Value>(rng.below(kBound));
        const auto slot = recorder.begin(proc, "WriteMax", v);
        reg.write_max(proc, v);
        recorder.end(proc, slot, 0);
      } else {
        const auto slot = recorder.begin(proc, "ReadMax", 0);
        const Value v = reg.read_max(proc);
        recorder.end(proc, slot, v);
      }
    }
  });
  const auto history = recorder.harvest();
  ASSERT_EQ(history.size(),
            static_cast<std::size_t>(threads) * ops_per_thread);
  const auto res =
      lincheck::check_linearizable(history, lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(MaxRegisterStress, TreeLinearizableUnderThreads) {
  TreeMaxRegister reg{kProcs};
  stress_writers_readers(reg, 4, 60, 2024);
}

TEST(MaxRegisterStress, AacLinearizableUnderThreads) {
  AacMaxRegister reg{kBound};
  stress_writers_readers(reg, 4, 60, 2025);
}

TEST(MaxRegisterStress, CasLinearizableUnderThreads) {
  CasMaxRegister reg;
  stress_writers_readers(reg, 4, 60, 2026);
}

TEST(MaxRegisterStress, TreeManyThreadsFinalValue) {
  constexpr std::uint32_t kThreads = 8;
  constexpr Value kPerThread = 500;
  TreeMaxRegister reg{kThreads};
  runtime::run_threads(kThreads, [&](std::size_t t) {
    util::SplitMix64 rng{t * 31 + 1};
    for (Value i = 0; i < kPerThread; ++i) {
      reg.write_max(static_cast<ProcId>(t),
                    static_cast<Value>(rng.below(1 << 20)));
    }
  });
  // After quiescence the root holds the global max; replay the RNG streams
  // to compute it.
  Value expected = kNoValue;
  for (std::size_t t = 0; t < kThreads; ++t) {
    util::SplitMix64 rng{t * 31 + 1};
    for (Value i = 0; i < kPerThread; ++i) {
      expected = std::max(expected, static_cast<Value>(rng.below(1 << 20)));
    }
  }
  EXPECT_EQ(reg.read_max(0), expected);
}

TEST(MaxRegisterStress, MonotoneReadsPerObserver) {
  // Regardless of writer chaos, a single observer's reads never decrease.
  TreeMaxRegister reg{4};
  std::vector<Value> observed;
  runtime::run_threads(4, [&](std::size_t t) {
    if (t == 0) {
      observed.reserve(4000);
      for (int i = 0; i < 4000; ++i) observed.push_back(reg.read_max(0));
    } else {
      util::SplitMix64 rng{t};
      for (int i = 0; i < 1500; ++i) {
        reg.write_max(static_cast<ProcId>(t),
                      static_cast<Value>(rng.below(1 << 30)));
      }
    }
  });
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
}

}  // namespace
}  // namespace ruco::maxreg
