// Validation of the src/wmm axiomatic weak-memory model checker, and the
// machine-checked certification of the production memory orders:
//
//   1. Executor validation: the classic litmus battery (SB, MP, LB, CoRR,
//      IRIW, 2+2W, R, fenced SB, CAS duel) must reproduce the *exact*
//      RC11 allowed-outcome sets -- a missing or extra outcome is an
//      executor bug.
//   2. Cross-validation against the existing engines: for all-seq_cst
//      programs the RC11 explorer, the internal interleaving-SC oracle,
//      and the repo's sim model checker must agree on the reachable
//      outcome set (randomized straight-line programs).
//   3. Protocol kernels at the shipped `runtime::mo_*` orders: zero
//      violations over every RC11-consistent execution, search complete.
//   4. Mutation driver: weakening any load-bearing mo_* site must
//      exhibit a concrete violating execution -- including the PR-4
//      `propagate_twice` node-load acquire->relaxed bug as a permanent
//      must-fail regression.
//   5. Minimality: sites the order table deliberately does NOT
//      strengthen (counter-kernel child loads, CAS failure order) stay
//      clean when relaxed -- the table is sound *and* minimal.
//   6. RUCO_SEQCST_ATOMICS: every weak-behaviour litmus allowed at the
//      hand-tuned orders becomes forbidden when the constants collapse
//      to seq_cst (memorder.h's fallback claim, machine-verified).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ruco/maxreg/refresh_policy.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/system.h"
#include "ruco/util/rng.h"
#include "ruco/wmm/explore.h"
#include "ruco/wmm/kernels.h"
#include "ruco/wmm/litmus.h"

namespace ruco {
namespace {

using maxreg::RefreshPolicy;
using OutcomeSet = std::set<std::vector<Value>>;

OutcomeSet as_set(const std::vector<std::vector<Value>>& outcomes) {
  return OutcomeSet(outcomes.begin(), outcomes.end());
}

std::string show(const OutcomeSet& outcomes) {
  std::string out;
  for (const auto& tuple : outcomes) {
    out += "(";
    for (Value v : tuple) out += std::to_string(v) + ",";
    out += ") ";
  }
  return out;
}

// ---------------------------------------------------------------- litmus

TEST(WmmLitmus, ClassicBatteryExactOutcomeSets) {
  for (const wmm::Litmus& lit : wmm::classic_battery()) {
    SCOPED_TRACE(lit.name);
    const wmm::ExploreResult res = wmm::explore(lit.program);
    EXPECT_TRUE(res.complete);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.joint, as_set(lit.allowed))
        << "got:  " << show(res.joint)
        << "\nwant: " << show(as_set(lit.allowed));
  }
}

TEST(WmmLitmus, IriwForbiddenUnderScAllowedUnderRelAcq) {
  // The headline RC11 distinction, asserted directly (the battery covers
  // it via the full sets; this pins the specific claim).
  const std::vector<Value> weak = {1, 0, 1, 0, 1, 1};
  for (const wmm::Litmus& lit : wmm::classic_battery()) {
    if (lit.name == "IRIW+sc") {
      EXPECT_EQ(wmm::explore(lit.program).joint.count(weak), 0u);
    }
    if (lit.name == "IRIW+rel+acq") {
      EXPECT_EQ(wmm::explore(lit.program).joint.count(weak), 1u);
    }
  }
}

TEST(WmmLitmus, HandtunedBatteryMatchesActiveConfiguration) {
  // The mo_* batteries' `allowed` sets are computed for the compiled
  // configuration: weak outcomes present by default, gone under
  // RUCO_SEQCST_ATOMICS.
  for (const wmm::Litmus& lit : wmm::handtuned_battery()) {
    SCOPED_TRACE(lit.name);
    const wmm::ExploreResult res = wmm::explore(lit.program);
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.joint, as_set(lit.allowed))
        << "got:  " << show(res.joint)
        << "\nwant: " << show(as_set(lit.allowed));
    if (!lit.weak_outcome.has_value()) continue;
#if defined(RUCO_SEQCST_ATOMICS)
    EXPECT_EQ(res.joint.count(*lit.weak_outcome), 0u)
        << "weak behaviour survived the seq_cst collapse";
#else
    EXPECT_EQ(res.joint.count(*lit.weak_outcome), 1u)
        << "hand-tuned orders lost their (expected) weak behaviour";
#endif
  }
}

TEST(WmmLitmus, DataRaceDetected) {
  // Plain-location conflict without ordering is reported as a data race;
  // the release/acquire version of the same program is clean.
  for (const bool ordered : {false, true}) {
    wmm::Program prog;
    auto flag = prog.atomic<Value>("flag", 0);
    auto data = prog.plain<Value>("data", 0);
    const auto store_o =
        ordered ? std::memory_order_release : std::memory_order_relaxed;
    const auto load_o =
        ordered ? std::memory_order_acquire : std::memory_order_relaxed;
    prog.thread([=] {
      data.store(1);
      flag.store(1, store_o);
    });
    prog.thread([=] {
      if (flag.load(load_o) == 1) wmm::observe(data.load());
    });
    const wmm::ExploreResult res = wmm::explore(prog);
    if (ordered) {
      EXPECT_TRUE(res.ok());
    } else {
      ASSERT_FALSE(res.ok());
      EXPECT_EQ(res.violations.front().kind, "data-race");
      EXPECT_NE(res.violations.front().dump.find("rf="), std::string::npos)
          << "violation dumps must render reads-from edges";
    }
  }
}

// ------------------------------------------------------ cross-validation

struct RandOp {
  enum Kind : int { kLoad, kStore, kCas } kind = kLoad;
  std::uint32_t loc = 0;
  Value a = 0;  // store value / CAS expected
  Value b = 0;  // CAS desired
};

using RandProgram = std::vector<std::vector<RandOp>>;  // per thread

RandProgram random_program(std::uint64_t seed, std::uint32_t num_locs) {
  util::SplitMix64 rng{seed};
  RandProgram prog;
  const std::uint64_t threads = rng.range(2, 3);
  for (std::uint64_t t = 0; t < threads; ++t) {
    std::vector<RandOp> ops;
    const std::uint64_t n = rng.range(2, 3);
    for (std::uint64_t i = 0; i < n; ++i) {
      RandOp op;
      op.kind = static_cast<RandOp::Kind>(rng.below(3));
      op.loc = static_cast<std::uint32_t>(rng.below(num_locs));
      op.a = static_cast<Value>(rng.range(0, 2));
      op.b = static_cast<Value>(rng.range(1, 2));
      ops.push_back(op);
    }
    prog.push_back(std::move(ops));
  }
  return prog;
}

wmm::Program make_wmm_program(const RandProgram& spec,
                              std::uint32_t num_locs) {
  wmm::Program prog;
  std::vector<wmm::Atomic<Value>> locs;
  for (std::uint32_t l = 0; l < num_locs; ++l) {
    locs.push_back(prog.atomic<Value>("x" + std::to_string(l), 0));
  }
  for (const auto& ops : spec) {
    prog.thread([ops, locs] {
      for (const RandOp& op : ops) {
        switch (op.kind) {
          case RandOp::kLoad:
            wmm::observe(locs[op.loc].load(std::memory_order_seq_cst));
            break;
          case RandOp::kStore:
            locs[op.loc].store(op.a, std::memory_order_seq_cst);
            break;
          case RandOp::kCas: {
            Value e = op.a;
            wmm::observe(locs[op.loc].compare_exchange_strong(
                             e, op.b, std::memory_order_seq_cst,
                             std::memory_order_seq_cst)
                             ? 1
                             : 0);
            break;
          }
        }
      }
    });
  }
  return prog;
}

sim::Op sim_body(std::vector<RandOp> ops, std::vector<sim::ObjectId> objs,
                 sim::Ctx& ctx) {
  for (const RandOp& op : ops) {
    switch (op.kind) {
      case RandOp::kLoad:
        co_await ctx.read(objs[op.loc]);
        break;
      case RandOp::kStore:
        co_await ctx.write(objs[op.loc], op.a);
        break;
      case RandOp::kCas:
        co_await ctx.cas(objs[op.loc], op.a, op.b);
        break;
    }
  }
  co_return 0;
}

// Reachable joint outcomes (per-thread read/CAS results in program
// order, then final object values) under the sim model checker.
OutcomeSet sim_outcomes(const RandProgram& spec, std::uint32_t num_locs) {
  sim::Program prog;
  std::vector<sim::ObjectId> objs;
  for (std::uint32_t l = 0; l < num_locs; ++l) {
    objs.push_back(prog.add_object(0));
  }
  for (const auto& ops : spec) {
    prog.add_process([ops, objs](sim::Ctx& ctx) {
      return sim_body(ops, objs, ctx);
    });
  }
  OutcomeSet outcomes;
  const auto verdict = [&](const sim::System& sys) -> std::string {
    std::vector<Value> tuple;
    for (ProcId p = 0; p < prog.num_processes(); ++p) {
      for (const sim::Event& e : sys.trace()) {
        if (e.proc != p) continue;
        if (e.prim == sim::Prim::kRead || e.prim == sim::Prim::kCas) {
          tuple.push_back(e.observed);
        }
      }
    }
    for (sim::ObjectId o : objs) tuple.push_back(sys.value(o));
    outcomes.insert(std::move(tuple));
    return "";
  };
  const auto res = sim::model_check(prog, verdict);
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_TRUE(res.exhaustive);
  return outcomes;
}

TEST(WmmCrossValidation, Rc11EqualsInterleavingScOnSeqCstPrograms) {
  // For all-seq_cst programs the axiomatic semantics must collapse to
  // interleaving SC: same executions, same outcomes.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::uint32_t num_locs = 1 + seed % 2;
    const RandProgram spec = random_program(seed, num_locs);
    const wmm::Program prog = make_wmm_program(spec, num_locs);
    const wmm::ExploreResult rc11 = wmm::explore(prog);
    const wmm::ScResult sc = wmm::explore_sc(prog);
    EXPECT_TRUE(rc11.complete);
    EXPECT_EQ(rc11.joint, sc.joint)
        << "rc11: " << show(rc11.joint) << "\nsc:   " << show(sc.joint);
  }
}

TEST(WmmCrossValidation, Rc11EqualsSimModelCheckerOnSeqCstPrograms) {
  // Three independent engines -- the RC11 explorer, the wmm SC oracle,
  // and the coroutine sim model checker -- must agree exactly.
  for (std::uint64_t seed = 100; seed <= 115; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::uint32_t num_locs = 1 + seed % 2;
    const RandProgram spec = random_program(seed, num_locs);
    const wmm::Program prog = make_wmm_program(spec, num_locs);
    const OutcomeSet rc11 = wmm::explore(prog).joint;
    const OutcomeSet sim = sim_outcomes(spec, num_locs);
    EXPECT_EQ(rc11, sim)
        << "rc11: " << show(rc11) << "\nsim:  " << show(sim);
  }
}

// -------------------------------------------------------- protocol suite

TEST(WmmKernels, ShippedOrdersHaveZeroViolations) {
  // Acceptance bar: with the orders the production code ships, every
  // protocol kernel is clean over its *entire* RC11 execution space.
  for (const wmm::Kernel& kernel : wmm::protocol_kernels()) {
    SCOPED_TRACE(kernel.name);
    const wmm::ExploreResult res = wmm::check_kernel(kernel);
    EXPECT_TRUE(res.complete) << "state space not exhausted";
    EXPECT_GT(res.executions, 0u);
    EXPECT_EQ(res.violation_count, 0u)
        << (res.violations.empty()
                ? std::string{}
                : res.violations.front().message + "\n" +
                      res.violations.front().dump);
  }
}

TEST(WmmKernels, CounterKernelCoversBothOutcomesOfTheRace) {
  // Sanity that the kernel actually exercises contention: both the
  // one-round and two-round writer paths must appear among executions.
  const wmm::Kernel kernel =
      wmm::make_propagate_counter_kernel(RefreshPolicy::kConditional);
  const wmm::ExploreResult res = wmm::check_kernel(kernel);
  EXPECT_GE(res.executions, 2u);
  // Every consistent execution ends at 2 -- that is the invariant -- so
  // final_states must be exactly {(2,1,1)}.
  EXPECT_EQ(res.final_states, (OutcomeSet{{2, 1, 1}}));
}

TEST(WmmMutation, EveryWeakenedSiteHasAViolatingExecution) {
  const auto outcomes = wmm::run_mutation_driver();
  ASSERT_GE(outcomes.size(), 12u);
  bool saw_pr4 = false;
  for (const wmm::MutationOutcome& mo : outcomes) {
    SCOPED_TRACE(mo.id);
    EXPECT_TRUE(mo.found())
        << "weakening this site should be observable: " << mo.note;
    EXPECT_FALSE(mo.sample_dump.empty());
    saw_pr4 = saw_pr4 || mo.pr4_regression;
  }
  EXPECT_TRUE(saw_pr4) << "the PR-4 regression site must stay pinned";
}

TEST(WmmMutation, Pr4NodeLoadRegressionStaysMustFail) {
  // The permanent regression litmus: propagate_twice with the node load
  // weakened back to relaxed (the exact PR-4 bug) must exhibit a lost
  // increment or monotonicity regression on the conditional policy.
  wmm::PropagateOrders weak;
  weak.node_load = std::memory_order_relaxed;
  const wmm::Kernel kernel = wmm::make_propagate_counter_kernel(
      RefreshPolicy::kConditional, weak);
  const wmm::ExploreResult res = wmm::check_kernel(kernel, 1);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.violations.front().kind, "invariant");
}

TEST(WmmMutation, OrderTableIsMinimalWhereItClaimsToBe)
{
  // The sites DESIGN.md deliberately does *not* strengthen stay clean
  // when relaxed: the child loads of the pure-counter propagation (the
  // integer payload needs only coherence; the acquire is for
  // pointer-carrying aggregates, covered by propagate-snapshot) and the
  // CAS failure order.
  for (const RefreshPolicy policy :
       {RefreshPolicy::kConditional, RefreshPolicy::kAlwaysTwice}) {
    wmm::PropagateOrders o;
    o.child_load = std::memory_order_relaxed;
    const wmm::ExploreResult res =
        wmm::check_kernel(wmm::make_propagate_counter_kernel(policy, o));
    EXPECT_TRUE(res.complete);
    EXPECT_TRUE(res.ok())
        << "counter-kernel child loads should not be load-bearing";
  }
  wmm::PropagateOrders o;
  o.cas_fail = std::memory_order_relaxed;
  const wmm::ExploreResult res = wmm::check_kernel(
      wmm::make_propagate_counter_kernel(RefreshPolicy::kConditional, o));
  EXPECT_TRUE(res.ok()) << "the CAS failure order is not load-bearing";
}

#if defined(RUCO_SEQCST_ATOMICS)
TEST(WmmSeqCstFallback, MutationSitesStillFailWithLiteralRelaxed) {
  // The mutation driver weakens sites with *literal*
  // std::memory_order_relaxed, bypassing the collapsed mo_* constants --
  // so even in this configuration it must keep finding violations
  // (proving the driver tests the sites, not the configuration).
  for (const wmm::MutationOutcome& mo : wmm::run_mutation_driver()) {
    SCOPED_TRACE(mo.id);
    EXPECT_TRUE(mo.found());
  }
}
#endif

// ------------------------------------------------------------- explorer

TEST(WmmExplorer, RejectsNondeterministicBodies) {
  wmm::Program prog;
  auto x = prog.atomic<Value>("x", 0);
  int calls = 0;
  prog.thread([=, &calls]() mutable {
    // Issues a different op on replay: the shim must reject it.
    if (++calls == 1) {
      x.store(1, std::memory_order_seq_cst);
    }
    x.load(std::memory_order_seq_cst);
  });
  EXPECT_THROW(wmm::explore(prog), std::logic_error);
}

TEST(WmmExplorer, OperationsOutsideExplorerThrow) {
  wmm::Program prog;
  auto x = prog.atomic<Value>("x", 0);
  EXPECT_THROW(x.load(std::memory_order_seq_cst), std::logic_error);
}

TEST(WmmExplorer, RendersCompleteExecutions) {
  // The dump must mention threads, orders and modification orders.
  wmm::PropagateOrders weak;
  weak.node_load = std::memory_order_relaxed;
  const wmm::Kernel kernel = wmm::make_propagate_counter_kernel(
      RefreshPolicy::kConditional, weak);
  const wmm::ExploreResult res = wmm::check_kernel(kernel, 1);
  ASSERT_FALSE(res.violations.empty());
  const std::string& dump = res.violations.front().dump;
  EXPECT_NE(dump.find("thread T0"), std::string::npos);
  EXPECT_NE(dump.find("mo(node)"), std::string::npos);
  EXPECT_NE(dump.find("[rlx]"), std::string::npos);
}

}  // namespace
}  // namespace ruco
