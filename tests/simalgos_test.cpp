// Simulation-layer algorithms: cross-checks against the production layer
// (same semantics, same solo step counts), linearizability under random and
// exhaustive schedules, the Lemma 8 monotonicity property -- and a
// deterministic reproduction of the early-return linearizability gap in the
// paper's printed Algorithm A (see maxreg/tree_max_register.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "ruco/counter/farray_counter.h"
#include "ruco/counter/maxreg_counter.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/maxreg/aac_max_register.h"
#include "ruco/maxreg/cas_max_register.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/maxreg/unbounded_aac_max_register.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/schedulers.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_counters.h"
#include "ruco/simalgos/sim_max_registers.h"
#include "ruco/util/rng.h"

namespace ruco::simalgos {
namespace {

using maxreg::Faithfulness;

// ------------------------------------------- sequential cross-checks

// Runs the same random WriteMax/ReadMax script through the production
// object and a sim twin (one process per proc id, advanced one operation at
// a time via history annotations); every ReadMax must agree.
template <typename SimReg>
sim::Op scripted_body(const SimReg* reg,
                      const std::vector<std::pair<bool, Value>>* slice,
                      sim::Ctx& ctx) {
  for (const auto& [is_write, v] : *slice) {
    if (is_write) {
      ctx.mark_invoke("WriteMax", v);
      co_await reg->write_max(ctx, v);
      ctx.mark_return(0);
    } else {
      ctx.mark_invoke("ReadMax", 0);
      const Value got = co_await reg->read_max(ctx);
      ctx.mark_return(got);
    }
  }
  co_return 0;
}

/// Steps process p until it completes one operation (detected via the
/// history growing by one return annotation).
void run_one_op(sim::System& sys, ProcId p) {
  std::size_t returns = 0;
  for (const auto& h : sys.history()) {
    returns += (h.kind == sim::HistoryEvent::Kind::kReturn) ? 1 : 0;
  }
  while (sys.active(p)) {
    sys.step(p);
    std::size_t now = 0;
    for (const auto& h : sys.history()) {
      now += (h.kind == sim::HistoryEvent::Kind::kReturn) ? 1 : 0;
    }
    if (now > returns) return;
  }
}

template <typename ProdReg, typename SimReg>
void cross_check_sequential(ProdReg& prod, sim::Program& prog,
                            const SimReg* reg, std::uint32_t n,
                            std::uint64_t seed, Value value_bound) {
  util::SplitMix64 rng{seed};
  struct Step {
    bool is_write;
    ProcId proc;
    Value v;
  };
  std::vector<Step> script;
  std::vector<std::vector<std::pair<bool, Value>>> slices(n);
  for (int i = 0; i < 150; ++i) {
    Step s{rng.chance(2, 3), static_cast<ProcId>(rng.below(n)),
           static_cast<Value>(
               rng.below(static_cast<std::uint64_t>(value_bound)))};
    script.push_back(s);
    slices[s.proc].emplace_back(s.is_write, s.v);
  }
  for (ProcId p = 0; p < n; ++p) {
    prog.add_process([reg, slice = &slices[p]](sim::Ctx& ctx) {
      return scripted_body(reg, slice, ctx);
    });
  }
  sim::System sys{prog};
  for (const Step& s : script) {
    Value prod_got = 0;
    if (s.is_write) {
      prod.write_max(s.proc, s.v);
    } else {
      prod_got = prod.read_max(s.proc);
    }
    run_one_op(sys, s.proc);
    const auto& last = sys.history().back();
    ASSERT_EQ(last.kind, sim::HistoryEvent::Kind::kReturn);
    if (!s.is_write) {
      ASSERT_EQ(last.value, prod_got)
          << "sim/production divergence on read by p" << s.proc;
    }
  }
}

TEST(CrossCheck, TreeMaxRegisterMatchesProduction) {
  constexpr std::uint32_t n = 8;
  maxreg::TreeMaxRegister prod{n};
  sim::Program prog;
  SimTreeMaxRegister reg{prog, n, Faithfulness::kHelpOnDuplicate};
  cross_check_sequential(prod, prog, &reg, n, 31, 64);
}

TEST(CrossCheck, CasMaxRegisterMatchesProduction) {
  constexpr std::uint32_t n = 4;
  maxreg::CasMaxRegister prod;
  sim::Program prog;
  SimCasMaxRegister reg{prog};
  cross_check_sequential(prod, prog, &reg, n, 32, 1000);
}

TEST(CrossCheck, AacMaxRegisterMatchesProduction) {
  constexpr std::uint32_t n = 4;
  constexpr Value bound = 256;
  maxreg::AacMaxRegister prod{bound};
  sim::Program prog;
  SimAacMaxRegister reg{prog, bound};
  cross_check_sequential(prod, prog, &reg, n, 33, bound);
}

TEST(CrossCheck, UnboundedAacMatchesProduction) {
  constexpr std::uint32_t n = 4;
  maxreg::UnboundedAacMaxRegister prod{12};
  sim::Program prog;
  SimUnboundedAacMaxRegister reg{prog, 12};
  cross_check_sequential(prod, prog, &reg, n, 34, (Value{1} << 12) - 1);
}

TEST(StepParity, UnboundedAacSoloStepsMatchProduction) {
  for (const Value v : {Value{0}, Value{1}, Value{100}, Value{2000}}) {
    maxreg::UnboundedAacMaxRegister prod{12};
    runtime::StepScope w;
    prod.write_max(0, v);
    const auto write_steps = w.taken();
    runtime::StepScope r;
    (void)prod.read_max(0);
    const auto read_steps = r.taken();

    sim::Program prog;
    SimUnboundedAacMaxRegister reg{prog, 12};
    prog.add_process(
        [&reg, v](sim::Ctx& ctx) { return reg.write_max(ctx, v); });
    prog.add_process([&reg](sim::Ctx& ctx) { return reg.read_max(ctx); });
    sim::System sys{prog};
    sim::run_solo(sys, 0, 1000);
    sim::run_solo(sys, 1, 1000);
    EXPECT_EQ(sys.steps_taken(0), write_steps) << "v=" << v;
    EXPECT_EQ(sys.steps_taken(1), read_steps) << "v=" << v;
  }
}

// ------------------------------------------------- solo step equality

TEST(StepParity, TreeWriteMaxSoloStepsMatchProduction) {
  constexpr std::uint32_t n = 16;
  for (const Value v : {Value{0}, Value{1}, Value{7}, Value{15}, Value{100}}) {
    maxreg::TreeMaxRegister prod{n};
    runtime::StepScope scope;
    prod.write_max(3, v);
    const auto prod_steps = scope.taken();

    sim::Program prog;
    SimTreeMaxRegister reg{prog, n, Faithfulness::kHelpOnDuplicate};
    prog.add_process([&reg, v](sim::Ctx& ctx) { return reg.write_max(ctx, v); });
    sim::System sys{prog};
    sim::run_solo(sys, 0, 10'000);
    EXPECT_EQ(sys.steps_taken(0), prod_steps) << "v=" << v;
  }
}

TEST(StepParity, TreeReadMaxIsOneStepInBothLayers) {
  maxreg::TreeMaxRegister prod{8};
  runtime::StepScope scope;
  (void)prod.read_max(0);
  EXPECT_EQ(scope.taken(), 1u);

  sim::Program prog;
  SimTreeMaxRegister reg{prog, 8, Faithfulness::kHelpOnDuplicate};
  prog.add_process([&reg](sim::Ctx& ctx) { return reg.read_max(ctx); });
  sim::System sys{prog};
  sim::run_solo(sys, 0, 100);
  EXPECT_EQ(sys.steps_taken(0), 1u);
}

TEST(StepParity, AacSoloStepsMatchProduction) {
  constexpr Value bound = 128;
  for (const Value v : {Value{0}, Value{1}, Value{64}, Value{127}}) {
    maxreg::AacMaxRegister prod{bound};
    runtime::StepScope w;
    prod.write_max(0, v);
    const auto write_steps = w.taken();
    runtime::StepScope r;
    (void)prod.read_max(0);
    const auto read_steps = r.taken();

    sim::Program prog;
    SimAacMaxRegister reg{prog, bound};
    prog.add_process([&reg, v](sim::Ctx& ctx) { return reg.write_max(ctx, v); });
    prog.add_process([&reg](sim::Ctx& ctx) { return reg.read_max(ctx); });
    sim::System sys{prog};
    sim::run_solo(sys, 0, 1000);
    sim::run_solo(sys, 1, 1000);
    EXPECT_EQ(sys.steps_taken(0), write_steps) << "v=" << v;
    EXPECT_EQ(sys.steps_taken(1), read_steps) << "v=" << v;
  }
}

TEST(StepParity, FArrayCounterIncrementWithinOneOfProduction) {
  constexpr std::uint32_t n = 32;
  counter::FArrayCounter prod{n};
  runtime::StepScope scope;
  prod.increment(5);
  const auto prod_steps = scope.taken();

  sim::Program prog;
  SimFArrayCounter sim_counter{prog, n};
  prog.add_process(
      [&sim_counter](sim::Ctx& ctx) { return sim_counter.increment(ctx); });
  sim::System sys{prog};
  // Process ids map to leaves; body runs as proc 0 here, production used
  // proc 5 -- same depth in a complete tree of 32.
  sim::run_solo(sys, 0, 10'000);
  // Documented off-by-one: the sim twin re-reads its own leaf (no
  // cross-operation local state allowed under replay).
  EXPECT_EQ(sys.steps_taken(0), prod_steps + 1);
}

// --------------------------------------------- primitive-usage checks

TEST(PrimitiveUsage, AacUsesOnlyReadsAndWrites) {
  // The AAC register is a *read/write* algorithm (that is the whole point
  // of reference [2]); its simulated trace must contain no CAS events.
  auto bundle = make_aac_maxreg_program(8, 64);
  sim::System sys{bundle.program};
  sim::run_random(sys, 7, 1u << 20);
  EXPECT_TRUE(sim::all_done(sys));
  for (const auto& e : sys.trace()) {
    EXPECT_NE(e.prim, sim::Prim::kCas) << e.to_string();
  }
}

TEST(PrimitiveUsage, TreeUsesCasOnlyOnInternalNodes) {
  auto bundle = make_tree_maxreg_program(8);
  sim::System sys{bundle.program};
  sim::run_random(sys, 9, 1u << 20);
  EXPECT_TRUE(sim::all_done(sys));
  // Leaves are written with plain writes; every CAS targets an internal
  // node object.  Leaf objects are exactly those that ever receive a
  // kWrite.
  std::map<sim::ObjectId, bool> written;
  for (const auto& e : sys.trace()) {
    if (e.prim == sim::Prim::kWrite) written[e.obj] = true;
  }
  for (const auto& e : sys.trace()) {
    if (e.prim == sim::Prim::kCas) {
      EXPECT_FALSE(written.count(e.obj)) << "CAS on a leaf: " << e.to_string();
    }
  }
}

// ------------------------------------------------- Lemma 8 (monotone)

void expect_monotone_objects(const sim::Trace& trace) {
  std::map<sim::ObjectId, Value> current;
  for (const auto& e : trace) {
    if (!e.changed) continue;
    const auto it = current.find(e.obj);
    if (it != current.end()) {
      EXPECT_LE(it->second, e.arg)
          << "node value decreased: " << e.to_string();
    }
    current[e.obj] = e.arg;
  }
}

TEST(Lemma8, TreeNodeValuesNeverDecrease) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    auto bundle = make_tree_maxreg_program(12);
    sim::System sys{bundle.program};
    sim::run_random(sys, seed, 1u << 20);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    expect_monotone_objects(sys.trace());
  }
}

TEST(Lemma8, FArrayCounterNodesNeverDecrease) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    auto bundle = make_farray_counter_program(9);
    sim::System sys{bundle.program};
    sim::run_random(sys, seed, 1u << 20);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    expect_monotone_objects(sys.trace());
  }
}

// ------------------------------------ linearizability (random sweeps)

template <typename MakeBundle>
void random_schedule_lincheck(MakeBundle&& make_bundle, int seeds) {
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    auto bundle = make_bundle();
    sim::System sys{bundle.program};
    sim::run_random(sys, seed, 1u << 22);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    const auto history = lincheck::from_sim_history(sys.history());
    const auto res =
        lincheck::check_linearizable(history, lincheck::MaxRegisterSpec{});
    ASSERT_TRUE(res.decided) << "seed " << seed;
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

TEST(RandomLinCheck, TreeMaxRegister) {
  random_schedule_lincheck([] { return make_tree_maxreg_program(10); }, 20);
}

TEST(RandomLinCheck, CasMaxRegister) {
  random_schedule_lincheck([] { return make_cas_maxreg_program(10); }, 20);
}

TEST(RandomLinCheck, AacMaxRegister) {
  random_schedule_lincheck([] { return make_aac_maxreg_program(10, 16); },
                           20);
}

TEST(RandomLinCheck, UnboundedAacMaxRegister) {
  random_schedule_lincheck(
      [] { return make_unbounded_aac_maxreg_program(10); }, 20);
}

TEST(PrimitiveUsage, UnboundedAacUsesOnlyReadsAndWrites) {
  auto bundle = make_unbounded_aac_maxreg_program(8);
  sim::System sys{bundle.program};
  sim::run_random(sys, 13, 1u << 20);
  EXPECT_TRUE(sim::all_done(sys));
  for (const auto& e : sys.trace()) {
    EXPECT_NE(e.prim, sim::Prim::kCas) << e.to_string();
  }
}

TEST(RandomLinCheck, FArrayCounter) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto bundle = make_farray_counter_program(8);
    sim::System sys{bundle.program};
    sim::run_random(sys, seed, 1u << 22);
    ASSERT_TRUE(sim::all_done(sys));
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()), lincheck::CounterSpec{});
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

TEST(RandomLinCheck, MaxRegCounter) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto bundle = make_maxreg_counter_program(6, 64);
    sim::System sys{bundle.program};
    sim::run_random(sys, seed, 1u << 22);
    ASSERT_TRUE(sim::all_done(sys));
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()), lincheck::CounterSpec{});
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

// ----------------------------- exhaustive model checks (tiny configs)

lincheck::History history_of(const sim::System& sys) {
  return lincheck::from_sim_history(sys.history());
}

std::string maxreg_verdict(const sim::System& sys) {
  const auto res = lincheck::check_linearizable(history_of(sys),
                                                lincheck::MaxRegisterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable execution";
}

TEST(Exhaustive, CasMaxRegisterAllInterleavings) {
  auto bundle = make_cas_maxreg_program(3);  // 2 writers + reader
  const auto result = sim::model_check(bundle.program, maxreg_verdict);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(result.exhaustive);
  EXPECT_GT(result.executions, 10u);
}

TEST(Exhaustive, AacMaxRegisterAllInterleavings) {
  auto bundle = make_aac_maxreg_program(3, 4);
  const auto result = sim::model_check(bundle.program, maxreg_verdict);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(result.exhaustive);
}

TEST(Exhaustive, TreeMaxRegisterTwoProcesses) {
  auto bundle = make_tree_maxreg_program(2);  // 1 writer + reader
  const auto result = sim::model_check(bundle.program, maxreg_verdict);
  EXPECT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(result.exhaustive);
}

// ----------------- the printed Algorithm A's early-return gap (paper bug)

/// Builds the racing-duplicate-writes scenario: p0 and p1 both WriteMax(1);
/// p2 reads.  Returns the recorded history after the adversarial schedule:
/// p0 writes the leaf then stalls; p1 early-returns; p2 reads the root.
lincheck::History duplicate_write_history(Faithfulness mode) {
  sim::Program prog;
  auto reg = std::make_shared<SimTreeMaxRegister>(prog, 4, mode);
  for (int w = 0; w < 2; ++w) {
    prog.add_process([reg](sim::Ctx& ctx) -> sim::Op {
      ctx.mark_invoke("WriteMax", 1);
      co_await reg->write_max(ctx, 1);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](sim::Ctx& ctx) -> sim::Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value v = co_await reg->read_max(ctx);
    ctx.mark_return(v);
    co_return v;
  });
  sim::System sys{prog};
  sys.step(0);  // p0: read leaf (sees kNoValue)
  sys.step(0);  // p0: write leaf := 1; now stalled before propagation
  sim::run_solo(sys, 1, 10'000);  // p1: completes its WriteMax(1)
  sim::run_solo(sys, 2, 10'000);  // p2: ReadMax
  return lincheck::from_sim_history(sys.history());
}

TEST(PaperGap, PrintedAlgorithmAViolatesLinearizability) {
  const auto history = duplicate_write_history(Faithfulness::kAsPrinted);
  const auto res =
      lincheck::check_linearizable(history, lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.linearizable)
      << "the as-printed early return must let a completed WriteMax(1) be "
         "followed by ReadMax -> -inf";
}

TEST(PaperGap, HelpOnDuplicateRestoresLinearizability) {
  const auto history =
      duplicate_write_history(Faithfulness::kHelpOnDuplicate);
  const auto res =
      lincheck::check_linearizable(history, lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(PaperGap, PrintedVariantIsFineWithDistinctValues) {
  // The gap needs two writers racing on the *same* operand; with distinct
  // operands the printed code never early-returns on another process's
  // fresh leaf write.  20 random schedules stay linearizable.
  random_schedule_lincheck(
      [] {
        return make_tree_maxreg_program(10, Faithfulness::kAsPrinted);
      },
      20);
}

// -------------------- ablation: why Algorithm A CASes twice per level

/// Interleaving in which a single propagation attempt per level loses a
/// completed WriteMax: p1's CAS at the shared parent fails (p0's CAS, whose
/// children reads predate p1's leaf write, won the level) and with
/// attempts=1 nobody re-reads p1's leaf -- the paper's lines 6-9 exist
/// precisely to force the re-read.
lincheck::History propagate_attempts_history(int attempts) {
  sim::Program prog;
  // Paper-literal refresh policy: the hand-crafted schedule below indexes
  // the exact step sequence of the printed algorithm (no root fast path, no
  // conditional pruning).
  auto reg = std::make_shared<SimTreeMaxRegister>(
      prog, 4, Faithfulness::kHelpOnDuplicate, attempts,
      maxreg::RefreshPolicy::kAlwaysTwice);
  for (Value v = 1; v <= 2; ++v) {
    prog.add_process([reg, v](sim::Ctx& ctx) -> sim::Op {
      ctx.mark_invoke("WriteMax", v);
      co_await reg->write_max(ctx, v);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](sim::Ctx& ctx) -> sim::Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value v = co_await reg->read_max(ctx);
    ctx.mark_return(v);
    co_return v;
  });
  sim::System sys{prog};
  // p0 (WriteMax(1)) and p1 (WriteMax(2)) write B1 leaves 1 and 2, which
  // share a parent.  p0 reads both children before p1's leaf write lands,
  // then wins the parent CAS; p1's CAS fails.
  for (int i = 0; i < 5; ++i) sys.step(0);  // leaf r/w + parent 3 reads
  for (int i = 0; i < 2; ++i) sys.step(1);  // p1 leaf read + write
  sys.step(1);                              // p1 reads parent (-inf)
  sys.step(0);                              // p0 CAS parent := 1 (wins)
  sys.step(1);                              // p1 reads left child
  sys.step(1);                              // p1 reads right child (2)
  sys.step(1);                              // p1 CAS parent: expected -inf, fails
  sim::run_solo(sys, 1, 10'000);            // p1 finishes its WriteMax(2)
  sim::run_solo(sys, 0, 10'000);
  sim::run_solo(sys, 2, 10'000);            // reader
  return lincheck::from_sim_history(sys.history());
}

TEST(Ablation, PropagateOnceLosesACompletedWrite) {
  const auto res = lincheck::check_linearizable(
      propagate_attempts_history(1), lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.linearizable)
      << "one CAS per level must lose WriteMax(2) under this schedule";
}

TEST(Ablation, PropagateTwiceSurvivesTheSameSchedule) {
  const auto res = lincheck::check_linearizable(
      propagate_attempts_history(2), lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(Ablation, PropagateOnceFailsRandomSweepToo) {
  // The loss is not an artifact of one hand-crafted schedule: random
  // schedules find violations as well (across many seeds, at least one).
  // Two writers on sibling B1 leaves (values 1 and 2) -- with more writers
  // a third party's propagation usually rescues the lost value, which is
  // why the bug is so schedule-sensitive.
  constexpr Value kWriters = 2;
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 2000 && violations == 0; ++seed) {
    sim::Program prog;
    auto reg = std::make_shared<SimTreeMaxRegister>(
        prog, 4, Faithfulness::kHelpOnDuplicate, 1);
    for (Value v = 1; v <= kWriters; ++v) {
      prog.add_process([reg, v](sim::Ctx& ctx) -> sim::Op {
        ctx.mark_invoke("WriteMax", v);
        co_await reg->write_max(ctx, v);
        ctx.mark_return(0);
        co_return 0;
      });
    }
    prog.add_process([reg](sim::Ctx& ctx) -> sim::Op {
      ctx.mark_invoke("ReadMax", 0);
      const Value v = co_await reg->read_max(ctx);
      ctx.mark_return(v);
      co_return v;
    });
    sim::System sys{prog};
    // Writers race under a uniformly random schedule; the reader runs
    // strictly afterwards so any lost write is an outright violation.
    util::SplitMix64 rng{seed};
    std::vector<ProcId> live{0, 1};
    while (!live.empty()) {
      const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
      sys.step(live[i]);
      if (!sys.active(live[i])) {
        live[i] = live.back();
        live.pop_back();
      }
    }
    sim::run_solo(sys, kWriters, 10'000);
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    if (res.decided && !res.linearizable) ++violations;
  }
  EXPECT_GT(violations, 0);
}

// ------------------------------------------------------ reader values

TEST(SimPrograms, CounterReadsExactlyAfterQuiescence) {
  for (const std::uint32_t n : {2u, 3u, 8u, 33u}) {
    auto bundle = make_farray_counter_program(n);
    sim::System sys{bundle.program};
    for (ProcId p = 0; p < bundle.num_incrementers; ++p) {
      sim::run_solo(sys, p, 1u << 20);
    }
    sim::run_solo(sys, bundle.reader, 1u << 20);
    EXPECT_EQ(sys.result(bundle.reader), static_cast<Value>(n - 1));
  }
}

TEST(SimPrograms, MaxRegReaderSeesMaxAfterQuiescence) {
  for (const std::uint32_t k : {2u, 4u, 16u}) {
    auto bundle = make_tree_maxreg_program(k);
    sim::System sys{bundle.program};
    for (ProcId p = 0; p < bundle.num_writers; ++p) {
      sim::run_solo(sys, p, 1u << 20);
    }
    sim::run_solo(sys, bundle.reader, 1u << 20);
    EXPECT_EQ(sys.result(bundle.reader), static_cast<Value>(k - 1));
  }
}

}  // namespace
}  // namespace ruco::simalgos
