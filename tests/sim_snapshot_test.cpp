// Simulated double-collect snapshot + Corollary 1 counter: semantics,
// cross-check against the production snapshot, linearizability of scans
// (vector results through the history), obstruction-free starvation, and
// the Theorem 1 adversary consistency check at the f(N) = O(N) end.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/sim_snapshots.h"
#include "ruco/snapshot/double_collect_snapshot.h"
#include "ruco/util/rng.h"

namespace ruco::simalgos {
namespace {

TEST(SimDoubleCollect, SequentialSemantics) {
  sim::Program prog;
  SimDoubleCollectSnapshot snap{prog, 3};
  std::vector<Value> view;
  prog.add_process([&](sim::Ctx& ctx) -> sim::Op {
    co_await snap.update(ctx, 7);
    co_await snap.scan_into(ctx, &view);
    co_return 0;
  });
  sim::System sys{prog};
  sim::run_solo(sys, 0, 1000);
  EXPECT_EQ(view, (std::vector<Value>{7, 0, 0}));
}

TEST(SimDoubleCollect, SoloScanIsTwoCollects) {
  sim::Program prog;
  SimDoubleCollectSnapshot snap{prog, 8};
  std::vector<Value> view;
  prog.add_process(
      [&](sim::Ctx& ctx) { return snap.scan_into(ctx, &view); });
  sim::System sys{prog};
  sim::run_solo(sys, 0, 1000);
  EXPECT_EQ(sys.steps_taken(0), 16u);
}

TEST(SimDoubleCollect, CrossCheckAgainstProduction) {
  constexpr std::uint32_t n = 4;
  snapshot::DoubleCollectSnapshot prod{n};
  sim::Program prog;
  SimDoubleCollectSnapshot twin{prog, n};
  util::SplitMix64 rng{55};
  // One sim process per proc id performs its updates; run sequentially in
  // script order, comparing full scans after every operation.
  struct Cmd {
    ProcId proc;
    Value v;
  };
  std::vector<Cmd> script;
  std::vector<std::vector<Value>> slices(n);
  for (int i = 0; i < 60; ++i) {
    const Cmd c{static_cast<ProcId>(rng.below(n)),
                static_cast<Value>(rng.below(1000))};
    script.push_back(c);
    slices[c.proc].push_back(c.v);
  }
  for (ProcId p = 0; p < n; ++p) {
    prog.add_process([&twin, slice = &slices[p]](sim::Ctx& ctx) -> sim::Op {
      for (const Value v : *slice) co_await twin.update(ctx, v);
      co_return 0;
    });
  }
  auto checker = std::make_shared<std::vector<Value>>();
  const ProcId scanner = prog.add_process(
      [&twin, checker](sim::Ctx& ctx) -> sim::Op {
        for (;;) {  // scan on demand, forever (driven per comparison)
          co_await twin.scan_into(ctx, checker.get());
        }
      });
  sim::System sys{prog};
  std::vector<std::uint64_t> ops_done(n, 0);
  for (const Cmd& c : script) {
    prod.update(c.proc, c.v);
    // Advance the sim twin by one update (2 steps).
    sys.step(c.proc);
    sys.step(c.proc);
    // Compare scans.
    const auto want = prod.scan(0);
    sim::run_solo(sys, scanner, 2 * n);  // exactly one clean double collect
    ASSERT_EQ(*checker, want);
  }
}

TEST(SimDoubleCollect, ConcurrentUpdaterStarvesScanner) {
  // Obstruction-freedom is not wait-freedom: with an updater interleaved
  // between the two collects, the scanner never returns.
  sim::Program prog;
  SimDoubleCollectSnapshot snap{prog, 2};
  std::vector<Value> view;
  prog.add_process([&](sim::Ctx& ctx) { return snap.scan_into(ctx, &view); });
  prog.add_process([&](sim::Ctx& ctx) -> sim::Op {
    for (Value v = 1; v <= 1000; ++v) co_await snap.update(ctx, v);
    co_return 0;
  });
  sim::System sys{prog};
  // Alternate: scanner does one full collect (2 reads), updater does one
  // full update (2 steps) -- every double collect sees a changed segment.
  for (int round = 0; round < 300; ++round) {
    sys.step(0);
    sys.step(0);
    sys.step(1);
    sys.step(1);
  }
  EXPECT_TRUE(sys.active(0)) << "scanner must still be spinning";
  EXPECT_GE(sys.steps_taken(0), 600u);
  // Left alone, it completes in one more double collect.
  sim::run_solo(sys, 0, 100);
  EXPECT_FALSE(sys.active(0));
}

TEST(SimDoubleCollect, ScanHistoriesLinearizable) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    sim::Program prog;
    auto snap = std::make_shared<SimDoubleCollectSnapshot>(prog, 4);
    for (ProcId p = 0; p < 3; ++p) {
      prog.add_process([snap, p](sim::Ctx& ctx) -> sim::Op {
        for (Value v = 1; v <= 3; ++v) {
          ctx.mark_invoke("Update", v * 10 + p);
          co_await snap->update(ctx, v * 10 + p);
          ctx.mark_return(0);
        }
        co_return 0;
      });
    }
    prog.add_process([snap](sim::Ctx& ctx) -> sim::Op {
      for (int i = 0; i < 3; ++i) {
        std::vector<Value> view;
        ctx.mark_invoke("Scan", 0);
        co_await snap->scan_into(ctx, &view);
        ctx.mark_return_vec(std::move(view));
      }
      co_return 0;
    });
    sim::System sys{prog};
    sim::run_random(sys, seed, 1u << 22);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()), lincheck::SnapshotSpec{4});
    ASSERT_TRUE(res.decided) << "seed " << seed;
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

TEST(Corollary1Sim, DcCounterCountsAndSurvivesAdversary) {
  const auto report = adversary::run_counter_adversary(
      make_dc_snapshot_counter_program(32));
  EXPECT_TRUE(report.knowledge_bound_held);
  EXPECT_TRUE(report.reader_correct) << report.reader_value;
  // f(N) = 2N reader steps: the frontier log3(N/f) <= 0, so the 2-step
  // increments are perfectly legal -- no tension with Theorem 1.
  EXPECT_EQ(report.reader_steps, 2u * 32u);
  EXPECT_LE(report.rounds, 4u) << "2-step increments finish in 2 rounds";
}

}  // namespace
}  // namespace ruco::simalgos
