// The PCT scheduler itself: determinism per seed, seed sensitivity, the
// process filter, completion behavior, and its interaction with crash
// faults (crashed processes must be skipped without burning
// priority-change points).
#include <gtest/gtest.h>

#include <vector>

#include "ruco/sim/fault.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"

namespace ruco::sim {
namespace {

Program three_writers() {
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 3; ++p) {
    prog.add_process([o, p](Ctx& ctx) -> Op {
      for (int i = 0; i < 6; ++i) co_await ctx.write(o, p * 10 + i);
      co_return 0;
    });
  }
  return prog;
}

std::vector<ProcId> schedule_of(const System& sys) {
  std::vector<ProcId> order;
  order.reserve(sys.trace().size());
  for (const auto& e : sys.trace()) order.push_back(e.proc);
  return order;
}

TEST(Pct, DeterministicPerSeed) {
  const Program prog = three_writers();
  System a{prog};
  System b{prog};
  PctOptions opts;
  opts.seed = 42;
  run_pct(a, opts);
  run_pct(b, opts);
  EXPECT_TRUE(all_done(a));
  EXPECT_EQ(schedule_of(a), schedule_of(b));
}

TEST(Pct, SeedsChangeTheSchedule) {
  const Program prog = three_writers();
  std::vector<std::vector<ProcId>> seen;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    System sys{prog};
    PctOptions opts;
    opts.seed = seed;
    opts.max_steps = 64;  // change points land within the run
    run_pct(sys, opts);
    seen.push_back(schedule_of(sys));
  }
  int distinct = 0;
  for (std::size_t i = 1; i < seen.size(); ++i) {
    distinct += (seen[i] != seen[0]) ? 1 : 0;
  }
  EXPECT_GT(distinct, 0) << "priorities must vary across seeds";
}

TEST(Pct, CompletesAllProcesses) {
  const Program prog = three_writers();
  System sys{prog};
  PctOptions opts;
  opts.seed = 5;
  const auto taken = run_pct(sys, opts);
  EXPECT_TRUE(all_done(sys));
  EXPECT_EQ(taken, 18u);
}

TEST(Pct, OnlyFilterRestrictsScheduling) {
  const Program prog = three_writers();
  System sys{prog};
  PctOptions opts;
  opts.seed = 9;
  opts.only = {0, 2};
  run_pct(sys, opts);
  EXPECT_FALSE(sys.active(0));
  EXPECT_FALSE(sys.active(2));
  EXPECT_TRUE(sys.active(1)) << "filtered-out process untouched";
  for (const auto& e : sys.trace()) EXPECT_NE(e.proc, 1u);
}

TEST(Pct, RespectsStepBudget) {
  const Program prog = three_writers();
  System sys{prog};
  PctOptions opts;
  opts.seed = 3;
  opts.max_steps = 7;
  EXPECT_EQ(run_pct(sys, opts), 7u);
  EXPECT_FALSE(all_done(sys));
}

// ------------------------------------------------ crash-fault regression

TEST(PctCrash, CrashMidRunLeavesSurvivorsCompleting) {
  const Program prog = three_writers();
  System sys{prog};
  FaultPlan plan;
  plan.crash_at.push_back(CrashPoint{1, 3, CrashPoint::Basis::kOwnSteps});
  FaultInjector injector{sys, plan};
  PctOptions opts;
  opts.seed = 42;
  const auto taken = run_pct(sys, opts, injector);
  ASSERT_EQ(injector.crash_count(), 1u);
  EXPECT_TRUE(sys.crashed(1));
  EXPECT_EQ(sys.steps_taken(1), 3u);
  EXPECT_TRUE(sys.done(0));
  EXPECT_TRUE(sys.done(2));
  EXPECT_FALSE(sys.crashed(0));
  EXPECT_FALSE(sys.crashed(2));
  // The crash consumed a scheduling slot but no step: the tally equals the
  // applied-event count exactly (this is the regression -- a crash that
  // incremented `taken` would also shift every later change point).
  EXPECT_EQ(taken, sys.trace().size());
  EXPECT_EQ(taken, 6u + 3u + 6u);
}

TEST(PctCrash, CrashDoesNotBurnPriorityChangePoints) {
  // Same seed, same depth: a run whose only difference is an injected
  // crash must demote at the same applied-step indices.  Compare against
  // the fault-free run: the schedule prefix before the crashed process's
  // crash point is identical, which can only hold if crash slots do not
  // advance the change-point clock.
  const Program prog = three_writers();
  PctOptions opts;
  opts.seed = 42;

  System plain{prog};
  run_pct(plain, opts);
  const auto plain_order = schedule_of(plain);

  System faulty{prog};
  FaultPlan plan;
  plan.crash_at.push_back(CrashPoint{1, 3, CrashPoint::Basis::kOwnSteps});
  FaultInjector injector{faulty, plan};
  run_pct(faulty, opts, injector);
  ASSERT_EQ(injector.crash_count(), 1u);
  const auto faulty_order = schedule_of(faulty);

  // Locate the crash in the faulty trace: it fired when p1 had taken 3
  // steps, i.e. right where p1's 4th event would have been.
  const std::uint64_t crash_at = injector.crashes()[0].at_trace_size;
  ASSERT_LE(crash_at, faulty_order.size());
  for (std::uint64_t i = 0; i < crash_at; ++i) {
    EXPECT_EQ(faulty_order[i], plain_order[i])
        << "prefix before the crash diverged at applied step " << i;
  }
}

TEST(PctCrash, FaultyRunIsDeterministic) {
  const Program prog = three_writers();
  auto run_once = [&prog]() {
    System sys{prog};
    FaultPlan plan;
    plan.seed = 4;
    plan.max_random_crashes = 1;
    plan.crash_per_mille = 120;
    FaultInjector injector{sys, plan};
    PctOptions opts;
    opts.seed = 17;
    run_pct(sys, opts, injector);
    return schedule_of(sys);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ruco::sim
