// The PCT scheduler itself: determinism per seed, seed sensitivity, the
// process filter, and completion behavior.
#include <gtest/gtest.h>

#include <vector>

#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"

namespace ruco::sim {
namespace {

Program three_writers() {
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 3; ++p) {
    prog.add_process([o, p](Ctx& ctx) -> Op {
      for (int i = 0; i < 6; ++i) co_await ctx.write(o, p * 10 + i);
      co_return 0;
    });
  }
  return prog;
}

std::vector<ProcId> schedule_of(const System& sys) {
  std::vector<ProcId> order;
  order.reserve(sys.trace().size());
  for (const auto& e : sys.trace()) order.push_back(e.proc);
  return order;
}

TEST(Pct, DeterministicPerSeed) {
  const Program prog = three_writers();
  System a{prog};
  System b{prog};
  PctOptions opts;
  opts.seed = 42;
  run_pct(a, opts);
  run_pct(b, opts);
  EXPECT_TRUE(all_done(a));
  EXPECT_EQ(schedule_of(a), schedule_of(b));
}

TEST(Pct, SeedsChangeTheSchedule) {
  const Program prog = three_writers();
  std::vector<std::vector<ProcId>> seen;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    System sys{prog};
    PctOptions opts;
    opts.seed = seed;
    opts.max_steps = 64;  // change points land within the run
    run_pct(sys, opts);
    seen.push_back(schedule_of(sys));
  }
  int distinct = 0;
  for (std::size_t i = 1; i < seen.size(); ++i) {
    distinct += (seen[i] != seen[0]) ? 1 : 0;
  }
  EXPECT_GT(distinct, 0) << "priorities must vary across seeds";
}

TEST(Pct, CompletesAllProcesses) {
  const Program prog = three_writers();
  System sys{prog};
  PctOptions opts;
  opts.seed = 5;
  const auto taken = run_pct(sys, opts);
  EXPECT_TRUE(all_done(sys));
  EXPECT_EQ(taken, 18u);
}

TEST(Pct, OnlyFilterRestrictsScheduling) {
  const Program prog = three_writers();
  System sys{prog};
  PctOptions opts;
  opts.seed = 9;
  opts.only = {0, 2};
  run_pct(sys, opts);
  EXPECT_FALSE(sys.active(0));
  EXPECT_FALSE(sys.active(2));
  EXPECT_TRUE(sys.active(1)) << "filtered-out process untouched";
  for (const auto& e : sys.trace()) EXPECT_NE(e.proc, 1u);
}

TEST(Pct, RespectsStepBudget) {
  const Program prog = three_writers();
  System sys{prog};
  PctOptions opts;
  opts.seed = 3;
  opts.max_steps = 7;
  EXPECT_EQ(run_pct(sys, opts), 7u);
  EXPECT_FALSE(all_done(sys));
}

}  // namespace
}  // namespace ruco::sim
