// UnboundedAacMaxRegister: the read/write-only, value-sensitive-cost max
// register (AAC switch composition along a Bentley-Yao spine).  Semantics,
// O(log v) step bounds for BOTH operations, envelope enforcement, threaded
// stress with linearizability checking.
#include <gtest/gtest.h>

#include <algorithm>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/maxreg/unbounded_aac_max_register.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/util/bits.h"
#include "ruco/util/rng.h"

namespace ruco::maxreg {
namespace {

TEST(UnboundedAac, FreshReadsNoValue) {
  UnboundedAacMaxRegister reg;
  EXPECT_EQ(reg.read_max(0), kNoValue);
}

TEST(UnboundedAac, TracksMaximum) {
  UnboundedAacMaxRegister reg;
  reg.write_max(0, 10);
  EXPECT_EQ(reg.read_max(1), 10);
  reg.write_max(1, 3);
  EXPECT_EQ(reg.read_max(0), 10);
  reg.write_max(2, 100'000);
  EXPECT_EQ(reg.read_max(0), 100'000);
}

TEST(UnboundedAac, ZeroAndGroupBoundaries) {
  UnboundedAacMaxRegister reg;
  reg.write_max(0, 0);
  EXPECT_EQ(reg.read_max(0), 0);
  // Group boundaries: 2^g - 1 starts group g, 2^g - 2 ends group g-1.
  for (const Value v : {Value{1}, Value{2}, Value{3}, Value{6}, Value{7},
                        Value{14}, Value{15}, Value{30}, Value{31}}) {
    reg.write_max(0, v);
    ASSERT_EQ(reg.read_max(0), v) << "v=" << v;
  }
}

TEST(UnboundedAac, SequentialRandomAgainstOracle) {
  UnboundedAacMaxRegister reg;
  util::SplitMix64 rng{21};
  Value expected = kNoValue;
  for (int i = 0; i < 1000; ++i) {
    const Value v = static_cast<Value>(rng.below(1 << 20));
    reg.write_max(0, v);
    expected = std::max(expected, v);
    ASSERT_EQ(reg.read_max(0), expected);
  }
}

TEST(UnboundedAac, EnvelopeIsLoud) {
  UnboundedAacMaxRegister reg{4};  // values < 2^4 - 1 = 15
  reg.write_max(0, 14);
  EXPECT_EQ(reg.read_max(0), 14);
  EXPECT_THROW(reg.write_max(0, 15), std::out_of_range);
  EXPECT_THROW((UnboundedAacMaxRegister{0}), std::invalid_argument);
  EXPECT_THROW((UnboundedAacMaxRegister{27}), std::invalid_argument);
}

TEST(UnboundedAac, BothOpsCostLogOfValueNotEnvelope) {
  // The headline property: cost scales with the *value*, not with the
  // register's capacity -- reads included (compare: the bounded AAC
  // register always pays log M on reads).
  UnboundedAacMaxRegister reg{26};  // huge envelope
  for (const Value v : {Value{0}, Value{1}, Value{10}, Value{1000},
                        Value{1'000'000}}) {
    const std::uint64_t g = util::floor_log2(static_cast<std::uint64_t>(v) + 1);
    {
      runtime::StepScope s;
      reg.write_max(0, v);
      // 1 spine check + bounded write (<= 2g + 1) + g spine raises.
      EXPECT_LE(s.taken(), 3 * g + 4) << "write v=" << v;
    }
    {
      runtime::StepScope s;
      (void)reg.read_max(0);
      // <= g+1 spine reads + bounded read (<= g + 1).
      EXPECT_LE(s.taken(), 2 * g + 3) << "read after v=" << v;
    }
  }
}

TEST(UnboundedAac, ReadCostGrowsOnlyWithCurrentMax) {
  UnboundedAacMaxRegister small_values{26};
  small_values.write_max(0, 3);
  runtime::StepScope s1;
  (void)small_values.read_max(0);
  const auto cheap = s1.taken();

  UnboundedAacMaxRegister big_values{26};
  big_values.write_max(0, 1 << 20);
  runtime::StepScope s2;
  (void)big_values.read_max(0);
  EXPECT_GT(s2.taken(), cheap)
      << "reads pay for the value actually stored, not the envelope";
}

TEST(UnboundedAac, UsesNoCas) {
  // Indirect check in the production layer: all switch cells are plain
  // stores/loads by construction; here we just assert the class is
  // MaxRegisterLike and behaves under the same typed semantics as the
  // others (the sim layer asserts primitive usage for the bounded AAC).
  UnboundedAacMaxRegister reg;
  for (ProcId p = 0; p < 4; ++p) reg.write_max(p, 7);
  EXPECT_EQ(reg.read_max(0), 7);
}

TEST(UnboundedAacStress, LinearizableUnderThreads) {
  UnboundedAacMaxRegister reg;
  lincheck::Recorder recorder{4};
  runtime::run_threads(4, [&](std::size_t t) {
    util::SplitMix64 rng{900 + t};
    const auto proc = static_cast<ProcId>(t);
    for (int i = 0; i < 60; ++i) {
      if (rng.chance(1, 2)) {
        const Value v = static_cast<Value>(rng.below(1 << 18));
        const auto slot = recorder.begin(proc, "WriteMax", v);
        reg.write_max(proc, v);
        recorder.end(proc, slot, 0);
      } else {
        const auto slot = recorder.begin(proc, "ReadMax", 0);
        recorder.end(proc, slot, reg.read_max(proc));
      }
    }
  });
  const auto res = lincheck::check_linearizable(recorder.harvest(),
                                                lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(UnboundedAacStress, MonotoneReadsAndExactFinal) {
  UnboundedAacMaxRegister reg;
  std::vector<Value> observed;
  runtime::run_threads(4, [&](std::size_t t) {
    if (t == 0) {
      observed.reserve(4000);
      for (int i = 0; i < 4000; ++i) observed.push_back(reg.read_max(0));
    } else {
      for (Value v = 0; v < 1500; ++v) {
        reg.write_max(static_cast<ProcId>(t),
                      v * static_cast<Value>(t) + static_cast<Value>(t));
      }
    }
  });
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_EQ(reg.read_max(0), 1499 * 3 + 3);
}

}  // namespace
}  // namespace ruco::maxreg
