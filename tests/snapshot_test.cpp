// Production snapshots: shared single-writer snapshot semantics (typed),
// per-implementation step bounds (Corollary 1's frontier), restricted-use
// limits, and threaded stress with linearizability checking.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/snapshot/afek_snapshot.h"
#include "ruco/snapshot/double_collect_snapshot.h"
#include "ruco/snapshot/farray_snapshot.h"
#include "ruco/util/bits.h"
#include "ruco/util/rng.h"

namespace ruco::snapshot {
namespace {

constexpr std::uint32_t kProcs = 6;

template <typename S>
class SnapshotSemantics : public ::testing::Test {
 public:
  SnapshotSemantics() : snap{kProcs} {}
  S snap;
};

using AllSnapshots =
    ::testing::Types<DoubleCollectSnapshot, AfekSnapshot, FArraySnapshot>;
TYPED_TEST_SUITE(SnapshotSemantics, AllSnapshots);

TYPED_TEST(SnapshotSemantics, FreshScanIsAllZero) {
  const auto view = this->snap.scan(0);
  EXPECT_EQ(view, std::vector<Value>(kProcs, 0));
}

TYPED_TEST(SnapshotSemantics, ScanSeesOwnUpdate) {
  this->snap.update(2, 7);
  const auto view = this->snap.scan(2);
  EXPECT_EQ(view[2], 7);
}

TYPED_TEST(SnapshotSemantics, ScanSeesAllCompletedUpdates) {
  for (ProcId p = 0; p < kProcs; ++p) {
    this->snap.update(p, static_cast<Value>(p) * 10);
  }
  const auto view = this->snap.scan(0);
  for (ProcId p = 0; p < kProcs; ++p) {
    EXPECT_EQ(view[p], static_cast<Value>(p) * 10);
  }
}

TYPED_TEST(SnapshotSemantics, LaterUpdateOverwritesSegment) {
  this->snap.update(1, 5);
  this->snap.update(1, 3);  // snapshots are write, not max: 3 replaces 5
  EXPECT_EQ(this->snap.scan(0)[1], 3);
}

TYPED_TEST(SnapshotSemantics, ViewHasExactlyNSegments) {
  EXPECT_EQ(this->snap.scan(0).size(), kProcs);
}

TYPED_TEST(SnapshotSemantics, SequentialRandomAgainstOracle) {
  util::SplitMix64 rng{77};
  std::vector<Value> oracle(kProcs, 0);
  for (int i = 0; i < 300; ++i) {
    const auto p = static_cast<ProcId>(rng.below(kProcs));
    const Value v = static_cast<Value>(rng.below(1 << 20));
    this->snap.update(p, v);
    oracle[p] = v;
    ASSERT_EQ(this->snap.scan(p), oracle) << "after update " << i;
  }
}

// ----------------------------------------------------------- step bounds

TEST(FArraySnapshotSteps, ScanIsOneStep) {
  FArraySnapshot snap{32};
  snap.update(3, 9);
  runtime::StepScope scope;
  (void)snap.scan(0);
  EXPECT_EQ(scope.taken(), 1u);
}

class FArraySnapshotStepsTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FArraySnapshotStepsTest, UpdateIsLogN) {
  const std::uint32_t n = GetParam();
  FArraySnapshot snap{n};
  const std::uint64_t levels = util::ceil_log2(n);
  for (int i = 0; i < 10; ++i) {
    runtime::StepScope scope;
    snap.update(static_cast<ProcId>(i % n), i);
    EXPECT_LE(scope.taken(), 8 * levels + 1) << "N=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FArraySnapshotStepsTest,
                         ::testing::Values(2, 4, 16, 64, 256));

TEST(DoubleCollectSteps, SoloScanIsTwoCollects) {
  DoubleCollectSnapshot snap{16};
  snap.update(0, 1);
  runtime::StepScope scope;
  (void)snap.scan(1);
  EXPECT_EQ(scope.taken(), 32u);  // 2 x N reads, uncontended
}

TEST(DoubleCollectSteps, UpdateIsOneStep) {
  DoubleCollectSnapshot snap{16};
  runtime::StepScope scope;
  snap.update(0, 5);
  EXPECT_EQ(scope.taken(), 1u);
}

TEST(AfekSteps, SoloScanIsTwoCollects) {
  AfekSnapshot snap{16};
  snap.update(0, 1);
  runtime::StepScope scope;
  (void)snap.scan(1);
  EXPECT_EQ(scope.taken(), 32u);
}

TEST(AfekSteps, UpdateEmbedsAScan) {
  AfekSnapshot snap{16};
  runtime::StepScope scope;
  snap.update(0, 5);
  EXPECT_EQ(scope.taken(), 33u);  // embedded scan + the publishing write
}

// ----------------------------------------------------- restricted use

TEST(DoubleCollect, RejectsOversizedValue) {
  DoubleCollectSnapshot snap{4};
  EXPECT_THROW(snap.update(0, DoubleCollectSnapshot::kMaxValue + 1),
               std::out_of_range);
  snap.update(0, DoubleCollectSnapshot::kMaxValue);
  EXPECT_EQ(snap.scan(0)[0], DoubleCollectSnapshot::kMaxValue);
}

TEST(Snapshots, RejectNegativeValues) {
  AfekSnapshot a{2};
  FArraySnapshot f{2};
  DoubleCollectSnapshot d{2};
  EXPECT_THROW(a.update(0, -5), std::out_of_range);
  EXPECT_THROW(f.update(0, -5), std::out_of_range);
  EXPECT_THROW(d.update(0, -5), std::out_of_range);
}

TEST(Snapshots, RejectZeroProcesses) {
  EXPECT_THROW((AfekSnapshot{0}), std::invalid_argument);
  EXPECT_THROW((FArraySnapshot{0}), std::invalid_argument);
  EXPECT_THROW((DoubleCollectSnapshot{0}), std::invalid_argument);
}

TEST(FArraySnapshot, VersionsAreMonotonePerSegment) {
  // The product-order monotonicity that makes the double-CAS substitution
  // ABA-free (DESIGN.md): successive root views never regress any
  // segment's sequence number.
  FArraySnapshot snap{4};
  std::vector<std::uint64_t> last(4, 0);
  util::SplitMix64 rng{5};
  for (int i = 0; i < 200; ++i) {
    snap.update(static_cast<ProcId>(rng.below(4)),
                static_cast<Value>(rng.below(100)));
    const auto versions = snap.scan_versions(0);
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_GE(versions[s].second, last[s]);
      last[s] = versions[s].second;
    }
  }
}

// --------------------------------------------------- threaded stress

template <typename S>
void stress_snapshot_lincheck(std::uint32_t threads, int updates, int scans,
                              std::uint64_t seed) {
  S snap{threads};
  lincheck::Recorder recorder{threads};
  runtime::run_threads(threads, [&](std::size_t t) {
    util::SplitMix64 rng{seed + t};
    const auto proc = static_cast<ProcId>(t);
    int ups = updates;
    int scs = scans;
    while (ups > 0 || scs > 0) {
      const bool do_update = scs == 0 || (ups > 0 && rng.chance(1, 2));
      if (do_update) {
        const Value v = static_cast<Value>(rng.below(1000));
        const auto slot = recorder.begin(proc, "Update", v);
        snap.update(proc, v);
        recorder.end(proc, slot, 0);
        --ups;
      } else {
        const auto slot = recorder.begin(proc, "Scan", 0);
        auto view = snap.scan(proc);
        recorder.end(proc, slot, std::move(view));
        --scs;
      }
    }
  });
  const auto res = lincheck::check_linearizable(
      recorder.harvest(), lincheck::SnapshotSpec{threads});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(SnapshotStress, FArrayLinearizable) {
  stress_snapshot_lincheck<FArraySnapshot>(4, 25, 25, 101);
}

TEST(SnapshotStress, AfekLinearizable) {
  stress_snapshot_lincheck<AfekSnapshot>(4, 25, 25, 102);
}

TEST(SnapshotStress, DoubleCollectLinearizable) {
  stress_snapshot_lincheck<DoubleCollectSnapshot>(4, 25, 25, 103);
}

TEST(SnapshotStress, ScannersAgreeOnOrder) {
  // Two scanner threads against one updater: collected views must be
  // totally ordered by per-segment versions (a snapshot object's views
  // form a chain).
  FArraySnapshot snap{4};
  std::vector<std::vector<std::pair<Value, std::uint64_t>>> views[2];
  runtime::run_threads(3, [&](std::size_t t) {
    if (t == 2) {
      for (int i = 0; i < 500; ++i) {
        snap.update(2, i);
        snap.update(3, i * 2);
      }
    } else {
      auto& mine = views[t];
      mine.reserve(500);
      for (int i = 0; i < 500; ++i) mine.push_back(snap.scan_versions(0));
    }
  });
  const auto leq = [](const auto& a, const auto& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].second > b[i].second) return false;
    }
    return true;
  };
  // Merge both scanners' views; every pair must be comparable.
  std::vector<std::vector<std::pair<Value, std::uint64_t>>> all;
  all.insert(all.end(), views[0].begin(), views[0].end());
  all.insert(all.end(), views[1].begin(), views[1].end());
  for (std::size_t i = 0; i + 1 < all.size(); i += 7) {  // sampled pairs
    for (std::size_t j = i + 1; j < all.size(); j += 11) {
      EXPECT_TRUE(leq(all[i], all[j]) || leq(all[j], all[i]))
          << "incomparable views " << i << "," << j;
    }
  }
}

TEST(SnapshotStress, AfekWaitFreeUnderChurn) {
  // All threads update and scan continuously; every scan terminates (the
  // run itself completing is the assertion) and contains plausible values.
  constexpr std::uint32_t kThreads = 6;
  AfekSnapshot snap{kThreads};
  runtime::run_threads(kThreads, [&snap](std::size_t t) {
    const auto proc = static_cast<ProcId>(t);
    for (int i = 1; i <= 300; ++i) {
      snap.update(proc, i);
      const auto view = snap.scan(proc);
      EXPECT_EQ(view.size(), std::size_t{kThreads});
      EXPECT_GE(view[proc], 1) << "own completed update missing";
    }
  });
}

}  // namespace
}  // namespace ruco::snapshot
