// UnboundedMaxRegCounter: counting semantics, value-sensitive step growth
// (read cost tracks log of the count, not of any preset bound), threaded
// stress with linearizability, and the tradeoff placement.
#include <gtest/gtest.h>

#include "ruco/counter/maxreg_counter.h"
#include "ruco/counter/unbounded_maxreg_counter.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/util/bits.h"
#include "ruco/util/rng.h"

namespace ruco::counter {
namespace {

TEST(UnboundedCounter, StartsAtZeroAndCounts) {
  UnboundedMaxRegCounter c{8};
  EXPECT_EQ(c.read(0), 0);
  for (Value i = 1; i <= 200; ++i) {
    c.increment(static_cast<ProcId>(i % 8));
    ASSERT_EQ(c.read(0), i);
  }
}

TEST(UnboundedCounter, NoPresetBoundToExhaust) {
  // Unlike MaxRegCounter{n, max_increments}, there is nothing to trip:
  // run well past any small bound.
  UnboundedMaxRegCounter c{2};
  for (int i = 0; i < 5000; ++i) c.increment(0);
  EXPECT_EQ(c.read(1), 5000);
}

TEST(UnboundedCounter, ReadCostGrowsWithCountNotCapacity) {
  UnboundedMaxRegCounter c{4};
  c.increment(0);
  runtime::StepScope early;
  (void)c.read(0);
  const auto cheap = early.taken();
  for (int i = 0; i < 4000; ++i) c.increment(static_cast<ProcId>(i % 4));
  runtime::StepScope late;
  (void)c.read(0);
  EXPECT_GT(late.taken(), cheap)
      << "reads pay log(count), so they grow as the count does";
  // Bounded by ~2 log2(count) + 3.
  EXPECT_LE(late.taken(), 2 * util::ceil_log2(4001) + 4);
}

TEST(UnboundedCounter, CheaperReadsThanBoundedAtLowCounts) {
  // The value-sensitivity payoff: with only a few increments performed,
  // reads beat the bounded counter configured for a large use budget.
  constexpr std::uint32_t n = 16;
  UnboundedMaxRegCounter unbounded{n};
  MaxRegCounter bounded{n, 1 << 16};
  unbounded.increment(0);
  bounded.increment(0);
  runtime::StepScope u;
  (void)unbounded.read(1);
  const auto u_steps = u.taken();
  runtime::StepScope b;
  (void)bounded.read(1);
  EXPECT_LT(u_steps, b.taken());
}

TEST(UnboundedCounter, ExactUnderThreads) {
  constexpr std::uint32_t kThreads = 6;
  constexpr int kPerThread = 500;
  UnboundedMaxRegCounter c{kThreads};
  runtime::run_threads(kThreads, [&c](std::size_t t) {
    for (int i = 0; i < kPerThread; ++i) {
      c.increment(static_cast<ProcId>(t));
    }
  });
  EXPECT_EQ(c.read(0), kThreads * kPerThread);
}

TEST(UnboundedCounter, LinearizableUnderThreads) {
  constexpr std::uint32_t kThreads = 4;
  UnboundedMaxRegCounter c{kThreads};
  lincheck::Recorder recorder{kThreads};
  runtime::run_threads(kThreads, [&](std::size_t t) {
    util::SplitMix64 rng{33 + t};
    const auto proc = static_cast<ProcId>(t);
    for (int i = 0; i < 40; ++i) {
      if (rng.chance(1, 2)) {
        const auto slot = recorder.begin(proc, "CounterIncrement", 0);
        c.increment(proc);
        recorder.end(proc, slot, 0);
      } else {
        const auto slot = recorder.begin(proc, "CounterRead", 0);
        recorder.end(proc, slot, c.read(proc));
      }
    }
  });
  const auto res = lincheck::check_linearizable(recorder.harvest(),
                                                lincheck::CounterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(UnboundedCounter, ReadsNeverDecrease) {
  UnboundedMaxRegCounter c{3};
  std::vector<Value> observed;
  runtime::run_threads(3, [&](std::size_t t) {
    if (t == 0) {
      observed.reserve(2000);
      for (int i = 0; i < 2000; ++i) observed.push_back(c.read(0));
    } else {
      for (int i = 0; i < 800; ++i) c.increment(static_cast<ProcId>(t));
    }
  });
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_EQ(c.read(0), 1600);
}

}  // namespace
}  // namespace ruco::counter
