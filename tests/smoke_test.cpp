// End-to-end smoke: one test per pillar, so a broken substrate fails fast
// and obviously before the detailed suites run.
#include <gtest/gtest.h>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/adversary/maxreg_adversary.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/ruco.h"
#include "ruco/sim/schedulers.h"
#include "ruco/simalgos/programs.h"

namespace ruco {
namespace {

TEST(Smoke, ProductionMaxRegisterSequential) {
  maxreg::TreeMaxRegister reg{4};
  EXPECT_EQ(reg.read_max(0), kNoValue);
  reg.write_max(0, 7);
  reg.write_max(1, 3);
  EXPECT_EQ(reg.read_max(2), 7);
}

TEST(Smoke, SimTreeMaxRegisterRoundRobin) {
  auto bundle = simalgos::make_tree_maxreg_program(8);
  sim::System sys{bundle.program};
  // Interleave the writers; the reader goes last (its ReadMax is one step,
  // so running it inside the round-robin would linearize before the writes).
  for (ProcId p = 0; p < bundle.num_writers; ++p) {
    while (sys.active(p) || sys.active((p + 3) % bundle.num_writers)) {
      sys.step(p);
      sys.step((p + 3) % bundle.num_writers);
    }
  }
  sim::run_round_robin(sys, 1u << 20);
  EXPECT_TRUE(sim::all_done(sys));
  EXPECT_EQ(sys.result(bundle.reader), 7);  // max operand = num_writers
}

TEST(Smoke, CounterAdversaryRuns) {
  const auto report =
      adversary::run_counter_adversary(simalgos::make_farray_counter_program(16));
  EXPECT_TRUE(report.knowledge_bound_held);
  EXPECT_TRUE(report.reader_correct);
  EXPECT_GE(report.rounds, 2u);
}

TEST(Smoke, MaxRegAdversaryRuns) {
  adversary::MaxRegAdversaryOptions opts;
  opts.min_active = 4;  // small-K demo floor
  const auto report = adversary::run_maxreg_adversary(
      simalgos::make_cas_maxreg_program(32), opts);
  EXPECT_TRUE(report.all_replays_ok);
  EXPECT_TRUE(report.all_invariants_ok);
  EXPECT_TRUE(report.reader_ok);
  EXPECT_GE(report.iterations_completed, 2u);
}

TEST(Smoke, LinCheckAcceptsSequential) {
  lincheck::History h;
  h.ops.push_back({0, "WriteMax", 5, 0, {}, 0, 1});
  h.ops.push_back({1, "ReadMax", 0, 5, {}, 2, 3});
  const auto res = lincheck::check_linearizable(h, lincheck::MaxRegisterSpec{});
  EXPECT_TRUE(res.linearizable);
}

TEST(Smoke, LinCheckRejectsStaleRead) {
  lincheck::History h;
  h.ops.push_back({0, "WriteMax", 5, 0, {}, 0, 1});
  h.ops.push_back({1, "ReadMax", 0, kNoValue, {}, 2, 3});  // misses the write
  const auto res = lincheck::check_linearizable(h, lincheck::MaxRegisterSpec{});
  EXPECT_FALSE(res.linearizable);
}

}  // namespace
}  // namespace ruco
