// Small remaining surfaces: event stringification, trace editing bounds,
// ProcSet equality semantics, program factories' validation, and the
// public umbrella header.
#include <gtest/gtest.h>

#include "ruco/ruco.h"  // the umbrella must compile standalone
#include "ruco/sim/event.h"
#include "ruco/sim/proc_set.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_snapshots.h"

namespace ruco::sim {
namespace {

Event make_event(Prim prim) {
  Event e;
  e.proc = 3;
  e.obj = 7;
  e.prim = prim;
  e.arg = 9;
  e.expected = 2;
  e.observed = prim == Prim::kRead ? 5 : 1;
  e.changed = prim != Prim::kRead;
  return e;
}

TEST(EventString, AllPrimitivesRender) {
  EXPECT_EQ(make_event(Prim::kRead).to_string(), "p3 read o7 -> 5 [trivial]");
  EXPECT_EQ(make_event(Prim::kWrite).to_string(), "p3 write o7 := 9");
  EXPECT_EQ(make_event(Prim::kCas).to_string(), "p3 cas o7(2 -> 9) = ok");
  Event k = make_event(Prim::kKcas);
  k.kcas = {KcasEntry{1, 0, 5}, KcasEntry{2, 3, 4}};
  EXPECT_EQ(k.to_string(), "p3 kcas o1(0->5) o2(3->4) = ok");
  EXPECT_STREQ(to_string(Prim::kKcas), "kcas");
}

TEST(EventString, SameActionIgnoresResponses) {
  Event a = make_event(Prim::kCas);
  Event b = a;
  b.observed = 0;
  b.changed = false;
  EXPECT_TRUE(a.same_action(b));
  b.arg = 100;
  EXPECT_FALSE(a.same_action(b));
}

TEST(EraseProcesses, OutOfRangeProcIdsAreKept) {
  Trace trace;
  Event e = make_event(Prim::kWrite);
  e.proc = 9;  // beyond the erase vector
  trace.push_back(e);
  const Trace kept = erase_processes(trace, std::vector<bool>(2, true));
  EXPECT_EQ(kept.size(), 1u);
}

TEST(ProcSetEquality, ValueSemantics) {
  ProcSet a{64};
  ProcSet b{64};
  EXPECT_EQ(a, b);
  a.add(5);
  EXPECT_NE(a, b);
  b.add(5);
  EXPECT_EQ(a, b);
  a.remove(5);
  b.remove(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ruco::sim

namespace ruco::simalgos {
namespace {

TEST(ProgramFactories, ValidateInputs) {
  EXPECT_THROW((void)make_tree_maxreg_program(1), std::invalid_argument);
  EXPECT_THROW((void)make_cas_maxreg_program(0), std::invalid_argument);
  EXPECT_THROW((void)make_aac_maxreg_program(8, 4), std::invalid_argument);
  EXPECT_THROW((void)make_farray_counter_program(1), std::invalid_argument);
  EXPECT_THROW((void)make_dc_snapshot_counter_program(1),
               std::invalid_argument);
}

TEST(ProgramFactories, ShapesAreConsistent) {
  const auto m = make_tree_maxreg_program(10);
  EXPECT_EQ(m.num_writers, 9u);
  EXPECT_EQ(m.reader, 9u);
  EXPECT_EQ(m.program.num_processes(), 10u);

  const auto c = make_kcas_counter_program(6);
  EXPECT_EQ(c.num_incrementers, 5u);
  EXPECT_EQ(c.reader, 5u);
}

}  // namespace
}  // namespace ruco::simalgos

namespace ruco {
namespace {

TEST(Umbrella, TypesAndConstantsExposed) {
  static_assert(std::is_same_v<Value, std::int64_t>);
  EXPECT_EQ(kNoValue, -1);
  // One object of each family constructed through the umbrella header.
  maxreg::TreeMaxRegister reg{2};
  counter::FArrayCounter counter{2};
  snapshot::FArraySnapshot snap{2};
  farray::SumFArray fa{2, 0};
  kcas::McasArray mcas{2, 0, 2};
  reg.write_max(0, 1);
  counter.increment(0);
  snap.update(0, 1);
  fa.update(0, 1);
  (void)mcas.mcas(0, {kcas::McasWord{0, 0, 1}});
  EXPECT_EQ(reg.read_max(1), 1);
  EXPECT_EQ(counter.read(1), 1);
  EXPECT_EQ(snap.scan(1)[0], 1);
  EXPECT_EQ(fa.read_aggregate(1), 1);
  EXPECT_EQ(mcas.read(1, 0), 1);
}

}  // namespace
}  // namespace ruco
