// Telemetry subsystem tests: metric registry semantics (sharded counters,
// gauges, histograms, snapshot/merge/JSON), Perfetto timeline structural
// validation for both a simulated Algorithm A execution and a real
// 4-thread hardware run, contention accounting from sim traces, and the
// ISSUE's determinism contract: model-checker executions and prune counts
// are byte-identical with and without the telemetry heartbeat installed.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "ruco/farray/farray.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"
#include "ruco/telemetry/metrics.h"
#include "ruco/telemetry/registry.h"
#include "ruco/telemetry/sim_export.h"
#include "ruco/telemetry/timeline.h"

namespace ruco::telemetry {
namespace {

#ifndef RUCO_NO_TELEMETRY

// ------------------------------------------------------------- registry

TEST(Registry, CounterAccumulatesAcrossThreads) {
  Registry reg;
  const Counter c = reg.counter("test", "ops");
  runtime::run_threads(4, [&](std::size_t) {
    for (int i = 0; i < 1000; ++i) c.inc();
  });
  const auto snap = reg.snapshot();
  const auto* m = snap.find("test", "ops");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, Kind::kCounter);
  EXPECT_EQ(m->value, 4000u);
}

TEST(Registry, GaugeLastWriteWins) {
  Registry reg;
  const Gauge g = reg.gauge("test", "level");
  g.set(7);
  g.add(-2);
  const auto snap = reg.snapshot();
  const auto* m = snap.find("test", "level");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, Kind::kGauge);
  EXPECT_EQ(m->gauge, 5);
}

TEST(Registry, HistogramBucketsAndOverflow) {
  Registry reg;
  const Histogram h = reg.histogram("test", "depth", 4);
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(4);    // first overflow value
  h.record(100);  // deep overflow
  const auto snap = reg.snapshot();
  const auto* m = snap.find("test", "depth");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, Kind::kHistogram);
  ASSERT_EQ(m->buckets.size(), 4u);
  EXPECT_EQ(m->buckets[0], 1u);
  EXPECT_EQ(m->buckets[3], 2u);
  EXPECT_EQ(m->overflow, 2u);
  EXPECT_EQ(m->value, 5u);  // total count
}

TEST(Registry, ReRegistrationIsIdempotentAndCheckedForShape) {
  Registry reg;
  const Counter a = reg.counter("d", "x");
  const Counter b = reg.counter("d", "x");  // same cell
  a.inc();
  b.inc();
  EXPECT_EQ(reg.snapshot().find("d", "x")->value, 2u);
  EXPECT_THROW((void)reg.gauge("d", "x"), std::invalid_argument);
  const Histogram h = reg.histogram("d", "h", 8);
  (void)h;
  EXPECT_THROW((void)reg.histogram("d", "h", 16), std::invalid_argument);
}

TEST(Registry, ResetZeroesEverything) {
  Registry reg;
  const Counter c = reg.counter("d", "c");
  const Gauge g = reg.gauge("d", "g");
  c.add(10);
  g.set(3);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.find("d", "c")->value, 0u);
  EXPECT_EQ(snap.find("d", "g")->gauge, 0);
}

TEST(Registry, CapacityExhaustionThrows) {
  Registry reg{4};
  (void)reg.histogram("d", "h", 3);  // 3 buckets + overflow = 4 cells
  EXPECT_THROW((void)reg.counter("d", "one-too-many"), std::length_error);
}

TEST(Snapshot, MergeSumsMatchingMetrics) {
  Registry a;
  Registry b;
  a.counter("d", "c").add(3);
  b.counter("d", "c").add(4);
  b.counter("d", "only-in-b").add(1);
  auto sa = a.snapshot();
  sa.merge(b.snapshot());
  EXPECT_EQ(sa.find("d", "c")->value, 7u);
  ASSERT_NE(sa.find("d", "only-in-b"), nullptr);
  EXPECT_EQ(sa.find("d", "only-in-b")->value, 1u);
}

TEST(Snapshot, JsonIsWellFormedEnoughToGrep) {
  Registry reg;
  reg.counter("dom", "with\"quote").inc();
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("with\\\"quote"), std::string::npos);
}

TEST(ProdMetrics, GlobalHandlesAreWired) {
  // prod() registers against Registry::global(); poking one counter must
  // show up in a global snapshot (delta-based: other tests and the
  // algorithms themselves also bump global metrics).  Touch prod() before
  // snapshotting -- registration is lazy, and in a fresh process (ctest
  // runs each case in isolation) the global registry starts empty.
  const ProdMetrics& pm = prod();
  const auto before = Registry::global().snapshot();
  const MetricSnapshot* m = before.find("maxreg", "cas_attempts");
  ASSERT_NE(m, nullptr);
  const std::uint64_t base = m->value;
  pm.maxreg_cas_attempts.add(5);
  const auto after = Registry::global().snapshot();
  EXPECT_EQ(after.find("maxreg", "cas_attempts")->value, base + 5);
}

// ------------------------------------------- propagation CAS accounting
//
// propagate_cas_attempts must count CASes actually issued (the ISSUE's
// accounting fix: the old code charged 2 per level unconditionally).

std::uint64_t maxreg_metric(const char* name) {
  const auto snap = Registry::global().snapshot();
  const MetricSnapshot* m = snap.find("maxreg", name);
  return m == nullptr ? 0 : m->value;
}

TEST(PropagateAccounting, SoloTreeWriteIssuesOneCasPerLevel) {
  (void)prod();  // force registration
  maxreg::TreeMaxRegister r{16};
  const std::uint64_t attempts = maxreg_metric("propagate_cas_attempts");
  const std::uint64_t failures = maxreg_metric("propagate_cas_failures");
  const std::uint64_t seconds = maxreg_metric("propagate_second_rounds");
  const std::uint64_t skips = maxreg_metric("propagate_cas_skips");
  r.write_max(0, 1);  // B1 leaf at depth 4
  // Solo every first-round CAS wins: exactly one CAS per level, no second
  // rounds, no failures, no skips.
  EXPECT_EQ(maxreg_metric("propagate_cas_attempts"), attempts + 4);
  EXPECT_EQ(maxreg_metric("propagate_cas_failures"), failures);
  EXPECT_EQ(maxreg_metric("propagate_second_rounds"), seconds);
  EXPECT_EQ(maxreg_metric("propagate_cas_skips"), skips);
}

TEST(PropagateAccounting, NoChangeRefreshSkipsEveryCas) {
  (void)prod();
  farray::SumFArray a{8, 0};  // 3 levels
  a.update(0, 5);
  const std::uint64_t attempts = maxreg_metric("propagate_cas_attempts");
  const std::uint64_t skips = maxreg_metric("propagate_cas_skips");
  a.update(0, 5);  // aggregate unchanged at every path node
  EXPECT_EQ(maxreg_metric("propagate_cas_attempts"), attempts);
  EXPECT_EQ(maxreg_metric("propagate_cas_skips"), skips + 3);
}

TEST(PropagateAccounting, RootFastPathCounted) {
  (void)prod();
  maxreg::TreeMaxRegister r{16};
  r.write_max(0, 5);
  const std::uint64_t fast = maxreg_metric("tree_root_fastpath");
  r.write_max(1, 5);  // root already covers 5
  EXPECT_EQ(maxreg_metric("tree_root_fastpath"), fast + 1);
}

#endif  // RUCO_NO_TELEMETRY

// ------------------------------------------------------------- timeline

TEST(Timeline, SimAlgorithmATraceValidates) {
  auto bundle = simalgos::make_tree_maxreg_program(4);
  sim::System sys{bundle.program};
  sim::run_random(sys, /*seed=*/7, /*max_steps=*/10'000);
  TimelineWriter tl;
  sim_timeline(sys, tl);
  EXPECT_EQ(tl.validate(), "") << tl.validate();
  const std::string json = tl.json();
  // One named track per process, plus the named simulator process.
  EXPECT_NE(json.find("\"simulator\""), std::string::npos);
  for (std::uint32_t p = 0; p < sys.num_processes(); ++p) {
    EXPECT_NE(json.find("\"P" + std::to_string(p) + "\""), std::string::npos)
        << "missing track for process " << p;
  }
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Timeline, CrashedSimRunStillValidates) {
  auto bundle = simalgos::make_tree_maxreg_program(3);
  sim::System sys{bundle.program};
  sys.step(0);
  sys.crash(0);
  sim::run_random(sys, /*seed=*/11, /*max_steps=*/10'000);
  TimelineWriter tl;
  sim_timeline(sys, tl);
  EXPECT_EQ(tl.validate(), "") << tl.validate();
  EXPECT_NE(tl.json().find("crash"), std::string::npos);
}

TEST(Timeline, ValidateRejectsUnbalancedSlices) {
  TimelineWriter tl;
  tl.set_process_name(1, "p");
  tl.set_thread_name(1, 1, "t");
  tl.begin(1, 1, "open", 10);
  EXPECT_NE(tl.validate(), "");  // unclosed B
}

TEST(Timeline, ValidateRejectsNonMonotoneTimestamps) {
  TimelineWriter tl;
  tl.set_process_name(1, "p");
  tl.set_thread_name(1, 1, "t");
  tl.complete(1, 1, "late", 100, 5);
  tl.complete(1, 1, "early", 50, 5);
  EXPECT_NE(tl.validate(), "");
}

TEST(Timeline, FourThreadHardwareRunValidates) {
  constexpr std::size_t kThreads = 4;
  OpRecorder rec{kThreads, /*capacity_per_thread=*/256};
  const std::uint32_t op = rec.intern("work");
  runtime::run_threads(kThreads, [&](std::size_t tid) {
    std::uint64_t ts = 0;
    for (int i = 0; i < 100; ++i) {
      rec.record(tid, op, ts, 2);
      ts += 3;  // strictly forward per thread
    }
  });
  EXPECT_EQ(rec.dropped(), 0u);
  TimelineWriter tl;
  rec.export_to(tl, /*pid=*/1, "hw-bench");
  EXPECT_EQ(tl.validate(), "") << tl.validate();
  const std::string json = tl.json();
  EXPECT_NE(json.find("\"hw-bench\""), std::string::npos);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_NE(json.find("thread " + std::to_string(t)), std::string::npos);
  }
}

TEST(Timeline, OpRecorderDropsOnFullLaneAndCounts) {
  OpRecorder rec{1, /*capacity_per_thread=*/2};
  const std::uint32_t op = rec.intern("x");
  rec.record(0, op, 0, 1);
  rec.record(0, op, 2, 1);
  rec.record(0, op, 4, 1);  // lane full
  EXPECT_EQ(rec.dropped(), 1u);
}

// ----------------------------------------------------------- contention

TEST(Contention, ReportMatchesTrace) {
  auto bundle = simalgos::make_cas_maxreg_program(3);
  sim::System sys{bundle.program};
  sim::run_random(sys, /*seed=*/5, /*max_steps=*/10'000);
  const auto report = contention_report(sys);
  EXPECT_EQ(report.total_steps, sys.trace().size());
  std::uint64_t per_obj = 0;
  for (const auto& o : report.objects) per_obj += o.total();
  EXPECT_EQ(per_obj, sys.trace().size());
  std::uint64_t per_proc = 0;
  for (const auto& p : report.procs) per_proc += p.steps;
  EXPECT_EQ(per_proc, sys.trace().size());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"objects\""), std::string::npos);
  EXPECT_NE(json.find("\"processes\""), std::string::npos);
}

// -------------------------------------------- model-checker determinism

std::string maxreg_verdict(const sim::System& sys) {
  const auto res = lincheck::check_linearizable(
      lincheck::from_sim_history(sys.history()),
      lincheck::MaxRegisterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable execution";
}

TEST(ModelCheckTelemetry, HeartbeatDoesNotPerturbExploration) {
  // tree k=2 / cas k=3: small enough for exhaustive exploration (the full
  // tree k=3 space is out of unit-test reach; see por_test's sizes).
  auto bundle = simalgos::make_cas_maxreg_program(3);
  for (const std::uint32_t jobs : {1u, 2u}) {
    for (const bool por : {false, true}) {
      sim::ModelCheckOptions base;
      base.jobs = jobs;
      base.por = por;
      const auto plain =
          sim::model_check(bundle.program, maxreg_verdict, base);

      std::atomic<std::uint64_t> beats{0};
      sim::ModelCheckTelemetry tel;
      tel.interval_executions = 8;
      tel.on_progress = [&](const sim::ModelCheckProgress& p) {
        beats.fetch_add(1);
        EXPECT_GT(p.executions, 0u);
      };
      sim::ModelCheckOptions instrumented = base;
      instrumented.telemetry = &tel;
      const auto traced =
          sim::model_check(bundle.program, maxreg_verdict, instrumented);

      EXPECT_EQ(plain.ok, traced.ok);
      EXPECT_EQ(plain.executions, traced.executions)
          << "jobs=" << jobs << " por=" << por;
      EXPECT_EQ(plain.stats.sleep_pruned, traced.stats.sleep_pruned);
      EXPECT_EQ(plain.stats.persistent_pruned,
                traced.stats.persistent_pruned);
      EXPECT_EQ(plain.stats.depth_hist, traced.stats.depth_hist);
      EXPECT_GT(beats.load(), 0u);
    }
  }
}

TEST(ModelCheckTelemetry, DepthHistogramCountsEveryExecution) {
  auto bundle = simalgos::make_cas_maxreg_program(3);
  const auto res = sim::model_check(bundle.program, maxreg_verdict,
                                    sim::ModelCheckOptions{});
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.stats.depth_hist.size(),
            sim::ModelCheckStats::kDepthBuckets + 1);
  std::uint64_t total = 0;
  for (const std::uint64_t c : res.stats.depth_hist) total += c;
  EXPECT_EQ(total, res.executions);
  ASSERT_EQ(res.stats.worker_executions.size(), 1u);
  EXPECT_EQ(res.stats.worker_executions[0], res.executions);
}

TEST(ModelCheckTelemetry, DepthHistogramDeterministicAcrossRuns) {
  auto bundle = simalgos::make_tree_maxreg_program(2);
  const auto a = sim::model_check(bundle.program, maxreg_verdict,
                                  sim::ModelCheckOptions{});
  const auto b = sim::model_check(bundle.program, maxreg_verdict,
                                  sim::ModelCheckOptions{});
  EXPECT_EQ(a.stats.depth_hist, b.stats.depth_hist);
}

// -------------------------------------------------------- decision log

TEST(DecisionLog, RecordsOnlyWhenEnabled) {
  auto bundle = simalgos::make_tree_maxreg_program(3);
  sim::System sys{bundle.program};
  sys.step(0);
  EXPECT_TRUE(sys.decision_log().empty());  // off by default
  sys.enable_decision_log(true);
  sys.step(1);
  sys.crash(0);
  ASSERT_EQ(sys.decision_log().size(), 2u);
  EXPECT_EQ(sys.decision_log()[0].kind, sim::SchedDecision::Kind::kStep);
  EXPECT_EQ(sys.decision_log()[0].proc, 1u);
  EXPECT_EQ(sys.decision_log()[1].kind, sim::SchedDecision::Kind::kCrash);
  sys.reset();
  EXPECT_TRUE(sys.decision_log().empty());
}

}  // namespace
}  // namespace ruco::telemetry
