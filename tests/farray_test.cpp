// Generic f-array: aggregate semantics across combine functions, step
// bounds, threaded stress, and the documented monotonicity requirement
// (including a demonstration of what breaks without it).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "ruco/farray/farray.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/util/bits.h"
#include "ruco/util/rng.h"

namespace ruco::farray {
namespace {

TEST(FArray, MaxAggregate) {
  MaxFArray fa{8, kNoValue};
  EXPECT_EQ(fa.read_aggregate(0), kNoValue);
  fa.update(3, 17);
  fa.update(5, 9);
  EXPECT_EQ(fa.read_aggregate(0), 17);
  EXPECT_EQ(fa.read_slot(0, 3), 17);
  EXPECT_EQ(fa.read_slot(0, 5), 9);
}

TEST(FArray, SumAggregate) {
  SumFArray fa{5, 0};
  for (ProcId s = 0; s < 5; ++s) fa.update(s, static_cast<Value>(s) + 1);
  EXPECT_EQ(fa.read_aggregate(0), 15);
}

TEST(FArray, MinAggregateWithInfinityIdentity) {
  constexpr Value kInf = std::numeric_limits<Value>::max();
  MinFArray fa{4, kInf};
  EXPECT_EQ(fa.read_aggregate(0), kInf);
  fa.update(2, 100);
  fa.update(1, 42);
  EXPECT_EQ(fa.read_aggregate(0), 42);
}

TEST(FArray, OrAggregateUnionsBits) {
  OrFArray fa{4, 0};
  fa.update(0, 0b0001);
  fa.update(1, 0b0100);
  fa.update(3, 0b1000);
  EXPECT_EQ(fa.read_aggregate(0), 0b1101);
}

TEST(FArray, SingleSlotIsItsOwnRoot) {
  SumFArray fa{1, 0};
  fa.update(0, 7);
  EXPECT_EQ(fa.read_aggregate(0), 7);
}

TEST(FArray, RejectsZeroSlots) {
  EXPECT_THROW((SumFArray{0, 0}), std::invalid_argument);
}

class FArrayStepsTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FArrayStepsTest, UpdateLogNReadOne) {
  const std::uint32_t n = GetParam();
  MaxFArray fa{n, kNoValue};
  const std::uint64_t levels = util::ceil_log2(n);
  runtime::StepScope u;
  fa.update(0, 5);
  EXPECT_LE(u.taken(), 8 * levels + 1);
  runtime::StepScope r;
  (void)fa.read_aggregate(0);
  EXPECT_EQ(r.taken(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FArrayStepsTest,
                         ::testing::Values(1, 2, 3, 8, 100, 1024));

TEST(FArray, ThreadedMonotoneMaxConverges) {
  constexpr std::uint32_t kThreads = 8;
  MaxFArray fa{kThreads, kNoValue};
  runtime::run_threads(kThreads, [&fa](std::size_t t) {
    // Monotone per-slot updates, as the contract requires.
    for (Value v = 0; v <= 2000; ++v) {
      fa.update(static_cast<ProcId>(t), v * static_cast<Value>(t + 1));
    }
  });
  EXPECT_EQ(fa.read_aggregate(0), 2000 * 8);
}

TEST(FArray, ThreadedMonotoneSumIsExact) {
  constexpr std::uint32_t kThreads = 8;
  SumFArray fa{kThreads, 0};
  runtime::run_threads(kThreads, [&fa](std::size_t t) {
    for (Value v = 1; v <= 3000; ++v) fa.update(static_cast<ProcId>(t), v);
  });
  EXPECT_EQ(fa.read_aggregate(0), 3000 * 8);
}

TEST(FArray, ThreadedAggregateNeverRegresses) {
  // Under monotone updates the root is monotone too -- the observable form
  // of the ABA-freedom argument.
  MaxFArray fa{4, kNoValue};
  std::vector<Value> observed;
  runtime::run_threads(4, [&](std::size_t t) {
    if (t == 0) {
      observed.reserve(5000);
      for (int i = 0; i < 5000; ++i) {
        observed.push_back(fa.read_aggregate(0));
      }
    } else {
      for (Value v = 0; v < 2000; ++v) {
        fa.update(static_cast<ProcId>(t), v);
      }
    }
  });
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
}

TEST(FArray, NonMonotoneUpdatesCanRegressTheAggregate) {
  // Contract demonstration: writing a *smaller* value into a Max f-array
  // (non-monotone use) legitimately lowers slots, and the aggregate is not
  // a linearizable "max of current slots" under concurrency -- sequentially
  // it still converges, which is all we promise here.
  MaxFArray fa{2, kNoValue};
  fa.update(0, 100);
  EXPECT_EQ(fa.read_aggregate(0), 100);
  fa.update(0, 5);  // non-monotone slot write
  // Sequentially the refresh recomputes from the slots: aggregate drops.
  EXPECT_EQ(fa.read_aggregate(0), 5)
      << "sequential refresh tracks slots exactly";
}

TEST(FArray, RandomizedAgainstOracle) {
  util::SplitMix64 rng{404};
  constexpr std::uint32_t n = 6;
  SumFArray fa{n, 0};
  std::vector<Value> slots(n, 0);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<ProcId>(rng.below(n));
    slots[s] += static_cast<Value>(rng.below(50));  // monotone growth
    fa.update(s, slots[s]);
    Value sum = 0;
    for (const Value v : slots) sum += v;
    ASSERT_EQ(fa.read_aggregate(0), sum) << "op " << i;
  }
}

}  // namespace
}  // namespace ruco::farray
