// Hot-path overhaul certification: the conditional-refresh pruning and the
// production hot paths are checked three ways --
//   1. model checker: the pruned sim mirror is linearizable on every
//      reachable schedule (exhaustively at small N, preemption-bounded on
//      contended programs) and reaches exactly the same reader results as
//      the paper-literal kAlwaysTwice oracle;
//   2. lincheck stress on real hardware: the production TreeMaxRegister and
//      FArrayCounter (backoff, root fast path) produce linearizable
//      histories under std::thread interleavings;
//   3. crash storms: random schedules with FaultPlan-injected crashes and
//      spurious CAS failures stay linearizable, and the pruned protocol
//      still certifies wait-free.
// The kAsPrinted gap reproduction is re-asserted under the conditional
// policy: pruning must not mask the paper's early-return bug.
//
// What these legs do NOT cover: the hand-tuned sub-seq_cst memory orders
// on weakly-ordered hardware.  The model checker explores a sequentially
// consistent semantics, TSan only reports data races (any std::atomic
// order is race-free by construction), and CI runners are x86/TSO -- so an
// acquire/release mistake that only misbehaves on ARM/POWER is invisible
// to all three.  Those orders are argued in writing per site (DESIGN.md
// "What the certification covers"; the synchronizes-with argument for the
// pruning decisions is in propagate.h), and RUCO_SEQCST_ATOMICS=ON
// collapses them all to seq_cst -- CI's seqcst-fallback job compiles and
// runs this suite in that configuration so weak-memory targets always
// have a machine-validated build.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "ruco/counter/farray_counter.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/sim/certify.h"
#include "ruco/sim/fault.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_counters.h"
#include "ruco/simalgos/sim_max_registers.h"
#include "ruco/util/rng.h"

namespace ruco {
namespace {

using maxreg::Faithfulness;
using maxreg::RefreshPolicy;

std::string maxreg_verdict(const sim::System& sys) {
  const auto res = lincheck::check_linearizable(
      lincheck::from_sim_history(sys.history()),
      lincheck::MaxRegisterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable execution";
}

std::string counter_verdict(const sim::System& sys) {
  const auto res = lincheck::check_linearizable(
      lincheck::from_sim_history(sys.history()), lincheck::CounterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable execution";
}

// ---------------------- model checker: conditional == classic

// Exhaustive at small N: every schedule of the k=2 tree program (1 writer +
// 1 reader) is linearizable under the pruned policy, and the set of reader
// results matches the paper-literal oracle exactly.
TEST(HotPathEquivalence, ExhaustiveTreeReaderSetsMatchClassic) {
  auto reachable = [](RefreshPolicy policy) {
    auto bundle = simalgos::make_tree_maxreg_program(
        2, Faithfulness::kHelpOnDuplicate, policy);
    std::set<Value> results;
    const auto verdict = [&](const sim::System& sys) -> std::string {
      const std::string v = maxreg_verdict(sys);
      if (v.empty()) results.insert(sys.result(1));  // proc 1 = the reader
      return v;
    };
    sim::ModelCheckOptions opts;
    opts.por = true;
    const auto res = sim::model_check(bundle.program, verdict, opts);
    EXPECT_TRUE(res.ok) << res.message;
    EXPECT_TRUE(res.exhaustive);
    return results;
  };
  const auto conditional = reachable(RefreshPolicy::kConditional);
  const auto classic = reachable(RefreshPolicy::kAlwaysTwice);
  EXPECT_EQ(conditional, classic);
  // The reader can run before or after the write: both outcomes reachable.
  EXPECT_EQ(conditional, (std::set<Value>{kNoValue, 1}));
}

// Contended refresh: two incrementers racing on the shared parent of a
// 2-slot f-array (the smallest program where a CAS can lose, the second
// round fires, and the no-change skip can trigger).  Exhaustive
// exploration of the classic side is out of unit-test reach, so both
// policies are explored to preemption bound 3 -- one more than the
// refresh bug depth (tests/bounded_check_test.cpp:
// PropagateOnceNeedsTwoPreemptions) -- and must reach identical reader
// result sets, every execution linearizable.
TEST(HotPathEquivalence, BoundedContendedCounterReaderSetsMatchClassic) {
  auto reachable = [](RefreshPolicy policy) {
    sim::Program prog;
    auto counter =
        std::make_shared<simalgos::SimFArrayCounter>(prog, 2, policy);
    for (int p = 0; p < 2; ++p) {
      prog.add_process([counter](sim::Ctx& ctx) -> sim::Op {
        ctx.mark_invoke("CounterIncrement", 0);
        co_await counter->increment(ctx);
        ctx.mark_return(0);
        co_return 0;
      });
    }
    const ProcId reader = prog.add_process([counter](sim::Ctx& ctx) -> sim::Op {
      ctx.mark_invoke("CounterRead", 0);
      const Value v = co_await counter->read(ctx);
      ctx.mark_return(v);
      co_return v;
    });
    std::set<Value> results;
    const auto verdict = [&](const sim::System& sys) -> std::string {
      const std::string v = counter_verdict(sys);
      if (v.empty()) results.insert(sys.result(reader));
      return v;
    };
    sim::ModelCheckOptions opts;
    opts.preemption_bound = 3;
    const auto res = sim::model_check(prog, verdict, opts);
    EXPECT_TRUE(res.ok) << res.message;
    EXPECT_GT(res.executions, 0u);
    return results;
  };
  const auto conditional = reachable(RefreshPolicy::kConditional);
  const auto classic = reachable(RefreshPolicy::kAlwaysTwice);
  EXPECT_EQ(conditional, classic);
  EXPECT_EQ(conditional, (std::set<Value>{0, 1, 2}));
}

// The pruned side of the same contended program IS exhaustively checkable
// (conditional refresh shrinks the space): every reachable interleaving of
// the two racing increments linearizes.
TEST(HotPathEquivalence, ExhaustiveContendedConditionalIncrements) {
  sim::Program prog;
  auto counter = std::make_shared<simalgos::SimFArrayCounter>(
      prog, 2, RefreshPolicy::kConditional);
  for (int p = 0; p < 2; ++p) {
    prog.add_process([counter](sim::Ctx& ctx) -> sim::Op {
      ctx.mark_invoke("CounterIncrement", 0);
      co_await counter->increment(ctx);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  sim::ModelCheckOptions opts;
  opts.por = true;
  const auto res = sim::model_check(prog, counter_verdict, opts);
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_TRUE(res.exhaustive);
  EXPECT_GT(res.executions, 1u);
}

// Pruning must not mask the paper's early-return gap: kAsPrinted plus the
// conditional policy still produces the non-linearizable execution with a
// single preemption (same construction as bounded_check_test, policy made
// explicit).
TEST(HotPathEquivalence, ConditionalStillFindsPaperGapInPrintedVariant) {
  sim::Program prog;
  auto reg = std::make_shared<simalgos::SimTreeMaxRegister>(
      prog, 4, Faithfulness::kAsPrinted, 2, RefreshPolicy::kConditional);
  for (int w = 0; w < 2; ++w) {
    prog.add_process([reg](sim::Ctx& ctx) -> sim::Op {
      ctx.mark_invoke("WriteMax", 1);
      co_await reg->write_max(ctx, 1);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](sim::Ctx& ctx) -> sim::Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value v = co_await reg->read_max(ctx);
    ctx.mark_return(v);
    co_return v;
  });
  sim::ModelCheckOptions opts;
  opts.preemption_bound = 1;
  const auto res = sim::model_check(prog, maxreg_verdict, opts);
  EXPECT_FALSE(res.ok) << "pruning must not hide the kAsPrinted gap";
  EXPECT_EQ(res.message, "non-linearizable execution");
}

// ------------------------- hardware lincheck stress (production objects)

TEST(HotPathStress, HwTreeMaxRegisterLinearizable) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kOpsPerThread = 24;
  for (std::uint64_t round = 1; round <= 3; ++round) {
    maxreg::TreeMaxRegister reg{kThreads};
    lincheck::Recorder recorder{kThreads};
    runtime::run_threads(kThreads, [&](std::size_t t) {
      util::SplitMix64 rng{round * 101 + t};
      const auto proc = static_cast<ProcId>(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(1, 2)) {
          const Value v = static_cast<Value>(rng.below(12));
          const auto slot = recorder.begin(proc, "WriteMax", v);
          reg.write_max(proc, v);
          recorder.end(proc, slot, 0);
        } else {
          const auto slot = recorder.begin(proc, "ReadMax", 0);
          const Value v = reg.read_max(proc);
          recorder.end(proc, slot, v);
        }
      }
    });
    const auto res = lincheck::check_linearizable(
        recorder.harvest(), lincheck::MaxRegisterSpec{});
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "round " << round << ": " << res.message;
  }
}

TEST(HotPathStress, HwFArrayCounterLinearizable) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kOpsPerThread = 24;
  for (std::uint64_t round = 1; round <= 3; ++round) {
    counter::FArrayCounter c{kThreads};
    lincheck::Recorder recorder{kThreads};
    runtime::run_threads(kThreads, [&](std::size_t t) {
      util::SplitMix64 rng{round * 137 + t};
      const auto proc = static_cast<ProcId>(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.chance(2, 3)) {
          const auto slot = recorder.begin(proc, "CounterIncrement", 0);
          c.increment(proc);
          recorder.end(proc, slot, 0);
        } else {
          const auto slot = recorder.begin(proc, "CounterRead", 0);
          const Value v = c.read(proc);
          recorder.end(proc, slot, v);
        }
      }
    });
    const auto res = lincheck::check_linearizable(recorder.harvest(),
                                                  lincheck::CounterSpec{});
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "round " << round << ": " << res.message;
  }
}

// ----------------------------- crash storms over the pruned sim mirror

TEST(HotPathStress, CrashStormsStayLinearizable) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto bundle = simalgos::make_tree_maxreg_program(
        5, Faithfulness::kHelpOnDuplicate, RefreshPolicy::kConditional);
    sim::System sys{bundle.program};
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.crash_per_mille = 30;
    plan.max_random_crashes = 2;
    plan.spurious_cas_per_mille = 50;
    sim::FaultInjector injector{sys, plan};
    sim::run_random(sys, seed * 7 + 1, 1u << 20, injector);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    // Crashed operations stay pending; the checker handles pending ops
    // natively (a crashed WriteMax may or may not have taken effect).
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    ASSERT_TRUE(res.decided) << "seed " << seed;
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

TEST(HotPathStress, ConditionalMirrorsCertifyWaitFree) {
  const auto tree = simalgos::make_tree_maxreg_program(
      4, Faithfulness::kHelpOnDuplicate, RefreshPolicy::kConditional);
  const auto tree_report = sim::certify_wait_freedom(tree.program);
  EXPECT_TRUE(tree_report.certified) << tree_report.message;

  const auto farray = simalgos::make_farray_counter_program(4);
  const auto farray_report = sim::certify_wait_freedom(farray.program);
  EXPECT_TRUE(farray_report.certified) << farray_report.message;
}

}  // namespace
}  // namespace ruco
