// Unit tests for the util substrate: bit helpers, tree shapes (complete,
// B1, Algorithm A composite), PRNG, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "ruco/util/bits.h"
#include "ruco/util/rng.h"
#include "ruco/util/stats.h"
#include "ruco/util/tree_shape.h"

namespace ruco::util {
namespace {

// ---------------------------------------------------------------- bits

TEST(Bits, FloorLog2Basics) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(UINT64_MAX), 63u);
}

TEST(Bits, FloorLog2ZeroConvention) { EXPECT_EQ(floor_log2(0), 0u); }

TEST(Bits, CeilLog2Basics) {
  EXPECT_EQ(ceil_log2(0), 0u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1u << 20), 20u);
  EXPECT_EQ(ceil_log2((1u << 20) + 1), 21u);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 30));
  EXPECT_FALSE(is_pow2((1u << 30) + 1));
}

TEST(Bits, FloorCeilAgreeOnPowersOfTwo) {
  for (std::uint32_t e = 0; e < 40; ++e) {
    const std::uint64_t x = std::uint64_t{1} << e;
    EXPECT_EQ(floor_log2(x), e);
    EXPECT_EQ(ceil_log2(x), e);
  }
}

// --------------------------------------------------------- tree shapes

void check_structure(const TreeShape& shape) {
  // Parent/child links are mutually consistent; exactly one root; every
  // leaf registered in the leaf table; internal nodes have two children.
  std::size_t roots = 0;
  std::size_t leaves = 0;
  for (TreeShape::NodeId n = 0; n < shape.node_count(); ++n) {
    if (shape.parent(n) == TreeShape::kNil) {
      ++roots;
      EXPECT_EQ(n, shape.root());
    } else {
      const auto p = shape.parent(n);
      EXPECT_TRUE(shape.left(p) == n || shape.right(p) == n);
    }
    if (shape.is_leaf(n)) {
      ++leaves;
      EXPECT_NE(shape.leaf_index(n), TreeShape::kNil);
      EXPECT_EQ(shape.leaf(shape.leaf_index(n)), n);
    } else {
      EXPECT_NE(shape.left(n), TreeShape::kNil);
      EXPECT_NE(shape.right(n), TreeShape::kNil);
      EXPECT_EQ(shape.parent(shape.left(n)), n);
      EXPECT_EQ(shape.parent(shape.right(n)), n);
    }
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(leaves, shape.leaf_count());
  // A full binary tree with L leaves has 2L - 1 nodes.
  EXPECT_EQ(shape.node_count(), 2 * shape.leaf_count() - 1);
}

class CompleteShapeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CompleteShapeTest, StructureAndDepth) {
  const std::uint32_t leaves = GetParam();
  const TreeShape shape = complete_shape(leaves);
  ASSERT_EQ(shape.leaf_count(), leaves);
  check_structure(shape);
  const std::uint32_t max_depth = ceil_log2(leaves);
  for (std::uint32_t i = 0; i < leaves; ++i) {
    EXPECT_LE(shape.depth(shape.leaf(i)), max_depth)
        << "leaf " << i << " of " << leaves;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompleteShapeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33,
                                           64, 100, 127, 128, 129, 1000,
                                           1024));

class B1ShapeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(B1ShapeTest, StructureAndLogarithmicLeafDepth) {
  const std::uint32_t leaves = GetParam();
  const TreeShape shape = b1_shape(leaves);
  ASSERT_EQ(shape.leaf_count(), leaves);
  check_structure(shape);
  // Bentley-Yao property: leaf v at depth O(log v) -- the small-value
  // leaves sit near the root.  Bound: depth(v) <= 2*floor_log2(v+1) + 2.
  for (std::uint32_t v = 0; v < leaves; ++v) {
    const auto depth = shape.depth(shape.leaf(v));
    EXPECT_LE(depth, 2 * floor_log2(v + 1) + 2) << "leaf " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, B1ShapeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 15, 16, 17,
                                           100, 1023, 1024, 4096));

TEST(B1Shape, LeafZeroIsNearRoot) {
  // WriteMax(0) must be O(1): leaf 0's depth is a small constant at every
  // size.
  for (const std::uint32_t leaves : {2u, 16u, 1024u, 65536u}) {
    const TreeShape shape = b1_shape(leaves);
    EXPECT_LE(shape.depth(shape.leaf(0)), 2u) << leaves << " leaves";
  }
}

TEST(B1Shape, DepthGrowsWithValueNotSize) {
  // Depth of a fixed leaf v stabilizes as the tree grows: the B1 layout is
  // value-indexed, not size-balanced.
  const TreeShape small = b1_shape(1024);
  const TreeShape large = b1_shape(65536);
  for (const std::uint32_t v : {0u, 1u, 5u, 100u, 1000u}) {
    EXPECT_EQ(small.depth(small.leaf(v)), large.depth(large.leaf(v)))
        << "leaf " << v;
  }
}

TEST(TreeShape, SiblingIsSymmetric) {
  const TreeShape shape = complete_shape(16);
  for (TreeShape::NodeId n = 0; n < shape.node_count(); ++n) {
    const auto s = shape.sibling(n);
    if (n == shape.root()) {
      EXPECT_EQ(s, TreeShape::kNil);
    } else {
      ASSERT_NE(s, TreeShape::kNil);
      EXPECT_EQ(shape.sibling(s), n);
      EXPECT_EQ(shape.parent(s), shape.parent(n));
    }
  }
}

TEST(TreeShape, RejectsZeroLeaves) {
  EXPECT_THROW((void)complete_shape(0), std::invalid_argument);
  EXPECT_THROW((void)b1_shape(0), std::invalid_argument);
}

class AlgorithmAShapeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AlgorithmAShapeTest, CompositeLayout) {
  const std::uint32_t n = GetParam();
  const AlgorithmATreeShape shape{n};
  EXPECT_EQ(shape.num_processes(), n);
  // 2N leaves total: N value leaves + N process leaves => 4N - 1 nodes.
  EXPECT_EQ(shape.node_count(), 4 * static_cast<std::size_t>(n) - 1);
  // Figure 4: the root's left subtree is the B1 tree (value leaves), the
  // right subtree the complete tree (process leaves).
  for (std::uint32_t v = 0; v < n; ++v) {
    auto node = shape.value_leaf(v);
    while (shape.parent(node) != shape.root()) node = shape.parent(node);
    EXPECT_EQ(node, shape.left(shape.root())) << "value leaf " << v;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    auto node = shape.process_leaf(i);
    while (shape.parent(node) != shape.root()) node = shape.parent(node);
    EXPECT_EQ(node, shape.right(shape.root())) << "process leaf " << i;
  }
}

TEST_P(AlgorithmAShapeTest, DepthBounds) {
  const std::uint32_t n = GetParam();
  const AlgorithmATreeShape shape{n};
  // Theorem 6's two regimes: value leaves at O(log v), process leaves at
  // O(log N).
  for (std::uint32_t v = 0; v < n; ++v) {
    EXPECT_LE(shape.depth(shape.value_leaf(v)),
              2 * util::floor_log2(v + 1) + 3);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_LE(shape.depth(shape.process_leaf(i)), util::ceil_log2(n) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlgorithmAShapeTest,
                         ::testing::Values(1, 2, 3, 4, 8, 13, 64, 100, 512));

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a{42};
  SplitMix64 b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  SplitMix64 rng{7};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  SplitMix64 rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  SplitMix64 rng{3};
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.range(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(Rng, ChanceExtremes) {
  SplitMix64 rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

// ---------------------------------------------------------------- stats

TEST(Summary, BasicMoments) {
  Summary s;
  for (const std::uint64_t x : {2u, 4u, 4u, 4u, 5u, 5u, 7u, 9u}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2u);
  EXPECT_EQ(s.max(), 9u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, EmptyIsSafe) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (std::uint64_t i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.percentile(50), 50u);
  EXPECT_EQ(s.percentile(99), 99u);
  EXPECT_EQ(s.percentile(100), 100u);
  EXPECT_EQ(s.percentile(0), 1u);
  EXPECT_EQ(s.min(), 1u);
  EXPECT_EQ(s.max(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.percentile(50), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Samples, SingleSample) {
  Samples s;
  s.add(42);
  // Every percentile of a one-sample series is that sample, including the
  // p == 0 edge where nearest-rank would otherwise compute rank 0.
  EXPECT_EQ(s.percentile(0), 42u);
  EXPECT_EQ(s.percentile(50), 42u);
  EXPECT_EQ(s.percentile(100), 42u);
  EXPECT_EQ(s.min(), 42u);
  EXPECT_EQ(s.max(), 42u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Samples, PercentileClampsOutOfRange) {
  Samples s;
  for (std::uint64_t i = 1; i <= 10; ++i) s.add(i);
  EXPECT_EQ(s.percentile(-5.0), 1u);
  EXPECT_EQ(s.percentile(250.0), 10u);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h{4};
  for (const std::uint64_t x : {0u, 1u, 1u, 3u, 4u, 100u}) h.add(x);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);  // 4 and 100 both land in overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.to_string(), "0:1 1:2 3:1 >=4:2");
}

TEST(Histogram, OverflowBoundary) {
  Histogram h{4};
  h.add(3);  // last in-range bucket
  h.add(4);  // first overflow value
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, ZeroBucketsSendsEverythingToOverflow) {
  Histogram h{0};
  h.add(0);
  h.add(7);
  EXPECT_EQ(h.bucket_count(), 0u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.to_string(), ">=0:2");
}

}  // namespace
}  // namespace ruco::util
