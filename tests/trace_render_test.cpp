// Trace rendering and knowledge-graph export.
#include <gtest/gtest.h>

#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/sim/trace_render.h"

namespace ruco::sim {
namespace {

Op writer(Ctx& ctx, ObjectId o, Value v) {
  co_await ctx.write(o, v);
  co_return 0;
}
Op reader(Ctx& ctx, ObjectId o) { co_return co_await ctx.read(o); }

TEST(TraceRender, ColumnsPerProcess) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return writer(ctx, o, 5); });
  prog.add_process([o](Ctx& ctx) { return reader(ctx, o); });
  System sys{prog};
  sys.step(0);
  sys.step(1);
  const std::string out = render_trace(sys.trace(), 2);
  EXPECT_NE(out.find("p0"), std::string::npos);
  EXPECT_NE(out.find("p1"), std::string::npos);
  EXPECT_NE(out.find("write o0 := 5"), std::string::npos);
  EXPECT_NE(out.find("read o0 -> 5"), std::string::npos);
  // The read (by p1) is indented into the second column.
  const auto read_line = out.find("read o0");
  ASSERT_NE(read_line, std::string::npos);
  const auto line_start = out.rfind('\n', read_line) + 1;
  EXPECT_GT(read_line - line_start, 0u) << "p1's column is not the first";
}

TEST(TraceRender, MarksTrivialEvents) {
  Program prog;
  const ObjectId o = prog.add_object(5);
  prog.add_process([o](Ctx& ctx) { return writer(ctx, o, 5); });  // trivial
  System sys{prog};
  sys.step(0);
  const std::string out = render_trace(sys.trace(), 1);
  EXPECT_NE(out.find("write o0 := 5 ."), std::string::npos);
}

TEST(TraceRender, TruncatesAtLimit) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    for (int i = 0; i < 10; ++i) co_await ctx.write(o, i);
    co_return 0;
  });
  System sys{prog};
  run_solo(sys, 0, 100);
  TraceRenderOptions options;
  options.max_events = 3;
  const std::string out = render_trace(sys.trace(), 1, options);
  EXPECT_NE(out.find("(7 more)"), std::string::npos);
}

TEST(TraceRender, MarkTrivialOffDropsTheDot) {
  Program prog;
  const ObjectId o = prog.add_object(5);
  prog.add_process([o](Ctx& ctx) { return writer(ctx, o, 5); });  // trivial
  System sys{prog};
  sys.step(0);
  TraceRenderOptions options;
  options.mark_trivial = false;
  const std::string out = render_trace(sys.trace(), 1, options);
  EXPECT_NE(out.find("write o0 := 5"), std::string::npos);
  EXPECT_EQ(out.find("write o0 := 5 ."), std::string::npos);
}

TEST(KnowledgeDot, CrashedProcessKeepsPreCrashEdges) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([a](Ctx& ctx) { return writer(ctx, a, 1); });
  prog.add_process([a, b](Ctx& ctx) -> Op {
    (void)co_await ctx.read(a);
    co_await ctx.write(b, 2);
    co_return 0;
  });
  System sys{prog};
  sys.step(0);
  sys.step(1);  // p1 reads a -> aware of p0
  sys.crash(1);
  ASSERT_TRUE(sys.crashed(1));
  // The crash leaves no trace event; the dot export must still render the
  // flow that happened before the crash and nothing after it.
  const std::string dot =
      knowledge_dot(sys.trace(), sys.num_processes(), sys.num_objects());
  EXPECT_NE(dot.find("p0 -> p1 [label=\"o0\"]"), std::string::npos) << dot;
  EXPECT_EQ(dot.find("p1 -> p0"), std::string::npos) << dot;
}

TEST(KnowledgeDot, EdgesFollowInformationFlow) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([a](Ctx& ctx) { return writer(ctx, a, 1); });
  prog.add_process([a, b](Ctx& ctx) -> Op {
    (void)co_await ctx.read(a);
    co_await ctx.write(b, 2);
    co_return 0;
  });
  prog.add_process([b](Ctx& ctx) { return reader(ctx, b); });
  System sys{prog};
  const std::vector<ProcId> script{0, 1, 1, 2};
  run_script(sys, script);
  const std::string dot =
      knowledge_dot(sys.trace(), sys.num_processes(), sys.num_objects());
  EXPECT_NE(dot.find("p0 -> p1 [label=\"o0\"]"), std::string::npos)
      << dot;
  EXPECT_NE(dot.find("p1 -> p2 [label=\"o1\"]"), std::string::npos)
      << dot;
  EXPECT_NE(dot.find("p0 -> p2"), std::string::npos) << "transitive edge";
  EXPECT_EQ(dot.find("p2 -> p0"), std::string::npos)
      << "no flow back to the writer";
}

TEST(KnowledgeDot, EmptyExecutionHasNoEdges) {
  Program prog;
  prog.add_object(0);
  prog.add_process([](Ctx& ctx) -> Op {
    (void)ctx;
    co_return 0;
  });
  System sys{prog};
  const std::string dot = knowledge_dot(sys.trace(), 1, 1);
  EXPECT_EQ(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace ruco::sim
