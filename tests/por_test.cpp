// Equivalence and soundness tests for the exploration engine's three new
// mechanisms: sleep-set POR (+ persistent-set filter over declared
// footprints), parallel frontier-split exploration, and the replay-light
// iterative DFS vs the legacy recursion.  The contract under test:
//
//   * verdicts are identical across {legacy, iterative} x {por on/off} x
//     jobs in {1, 2, 8};
//   * counterexample traces are identical (POR keeps the DFS-first
//     representative of every equivalence class);
//   * for complete runs, execution counts are identical except that POR
//     may (only) shrink them, and POR node counts never exceed the
//     unreduced count;
//   * budget exhaustion and genuine failure are distinguishable
//     (StopReason), never conflated.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/certify.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_snapshots.h"

namespace ruco::sim {
namespace {

using Engine = ModelCheckOptions::Engine;

std::string maxreg_verdict(const System& sys) {
  const auto res = lincheck::check_linearizable(
      lincheck::from_sim_history(sys.history()),
      lincheck::MaxRegisterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable execution";
}

std::string counter_verdict(const System& sys) {
  const auto res = lincheck::check_linearizable(
      lincheck::from_sim_history(sys.history()), lincheck::CounterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable execution";
}

/// Runs the full engine matrix on one program and checks the equivalence
/// contract against the POR-off jobs=1 iterative baseline.
void expect_matrix_equivalent(const Program& program, const Verdict& verdict,
                              std::uint32_t max_crashes = 0) {
  ModelCheckOptions base;
  base.max_crashes = max_crashes;
  const auto reference = model_check(program, verdict, base);

  // Legacy differential oracle.
  {
    ModelCheckOptions o = base;
    o.engine = Engine::kLegacyRecursive;
    const auto legacy = model_check(program, verdict, o);
    EXPECT_EQ(legacy.ok, reference.ok);
    EXPECT_EQ(legacy.stop, reference.stop);
    EXPECT_EQ(legacy.executions, reference.executions);
    EXPECT_EQ(legacy.counterexample, reference.counterexample);
    EXPECT_EQ(legacy.message, reference.message);
  }

  for (const bool por : {false, true}) {
    for (const std::uint32_t jobs : {1u, 2u, 8u}) {
      ModelCheckOptions o = base;
      o.por = por;
      o.jobs = jobs;
      const auto got = model_check(program, verdict, o);
      SCOPED_TRACE("por=" + std::to_string(por) +
                   " jobs=" + std::to_string(jobs));
      EXPECT_EQ(got.ok, reference.ok);
      EXPECT_EQ(got.stop, reference.stop);
      EXPECT_EQ(got.counterexample, reference.counterexample);
      EXPECT_EQ(got.message, reference.message);
      if (por) {
        EXPECT_LE(got.executions, reference.executions);
        // Node counts are only comparable sequentially: with jobs > 1 a
        // failing run may touch extra nodes in subtrees past the failure
        // root before the stop propagates (verdict stays deterministic).
        if (jobs == 1) {
          EXPECT_LE(got.stats.nodes, reference.stats.nodes);
        }
      } else {
        EXPECT_EQ(got.executions, reference.executions);
      }
      if (reference.stop == StopReason::kComplete) {
        EXPECT_TRUE(got.exhaustive);
      }
    }
  }
}

// ------------------------------------------------------- seed programs pass

TEST(PorEquivalence, AlgorithmATree) {
  auto bundle = simalgos::make_tree_maxreg_program(2);  // 1 writer + reader
  expect_matrix_equivalent(bundle.program, maxreg_verdict);
}

TEST(PorEquivalence, CasMaxReg) {
  auto bundle = simalgos::make_cas_maxreg_program(3);  // 2 writers + reader
  expect_matrix_equivalent(bundle.program, maxreg_verdict);
}

TEST(PorEquivalence, AacMaxReg) {
  auto bundle = simalgos::make_aac_maxreg_program(3, 4);
  expect_matrix_equivalent(bundle.program, maxreg_verdict);
}

TEST(PorEquivalence, DoubleCollectSnapshotCounter) {
  auto bundle = simalgos::make_dc_snapshot_counter_program(2);
  expect_matrix_equivalent(bundle.program, counter_verdict);
}

TEST(PorEquivalence, Lemma1FArrayCounter) {
  // The Lemma 1 construction's target: the f-array counter the Theorem 1
  // adversary starves.
  auto bundle = simalgos::make_farray_counter_program(2);
  expect_matrix_equivalent(bundle.program, counter_verdict);
}

TEST(PorEquivalence, CrashyTreeMaxReg) {
  auto bundle = simalgos::make_tree_maxreg_program(2);
  expect_matrix_equivalent(bundle.program, maxreg_verdict,
                           /*max_crashes=*/1);
}

TEST(PorEquivalence, CrashyCasMaxReg) {
  auto bundle = simalgos::make_cas_maxreg_program(3);
  expect_matrix_equivalent(bundle.program, maxreg_verdict,
                           /*max_crashes=*/2);
}

// ------------------------------------------------ seeded-bug programs fail

/// Two lost-update incrementers: read o, write o+1 without atomicity; the
/// final value must be 2 on sequential schedules but 1 when interleaved.
/// The verdict rejects the lost update, so exploration must find it --
/// with and without POR, at any job count, with the identical DFS-first
/// counterexample.
Program make_lost_update_program() {
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int i = 0; i < 2; ++i) {
    prog.add_process([o](Ctx& ctx) -> Op {
      const Value seen = co_await ctx.read(o);
      co_await ctx.write(o, seen + 1);
      co_return 0;
    });
  }
  return prog;
}

std::string no_lost_update(const System& sys) {
  return sys.value(0) == 2 ? "" : "lost update";
}

TEST(PorSoundness, SeededBugFoundIdenticallyEverywhere) {
  const Program prog = make_lost_update_program();
  expect_matrix_equivalent(prog, no_lost_update);
  // And the bug really is found.
  const auto result = model_check(prog, no_lost_update, ModelCheckOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.stop, StopReason::kCounterexample);
  EXPECT_EQ(result.message, "lost update");
}

TEST(PorSoundness, CrashSeededBugFoundWithPorAndJobs) {
  // A crash of either incrementer leaves the counter below 2: every
  // engine configuration must catch it.
  const Program prog = make_lost_update_program();
  for (const bool por : {false, true}) {
    for (const std::uint32_t jobs : {1u, 2u, 8u}) {
      ModelCheckOptions o;
      o.max_crashes = 1;
      o.por = por;
      o.jobs = jobs;
      const auto result = model_check(prog, no_lost_update, o);
      EXPECT_FALSE(result.ok);
      EXPECT_EQ(result.stop, StopReason::kCounterexample);
    }
  }
}

TEST(PorSoundness, BlockingLockStillRejectedUnderCrashes) {
  // SimLockMaxRegister negative control: crash the lock holder and the
  // survivor spins forever -- surfaced as a max_depth counterexample.  POR
  // and parallelism must not hide it.
  auto bundle = simalgos::make_lock_maxreg_program(2);
  for (const bool por : {false, true}) {
    for (const std::uint32_t jobs : {1u, 2u}) {
      ModelCheckOptions o;
      o.max_crashes = 1;
      o.max_depth = 300;
      o.por = por;
      o.jobs = jobs;
      const auto result = model_check(
          bundle.program, [](const System&) { return std::string{}; }, o);
      EXPECT_FALSE(result.ok) << "por=" << por << " jobs=" << jobs;
      EXPECT_EQ(result.stop, StopReason::kCounterexample);
    }
  }
}

// ------------------------------------------------------- StopReason split

TEST(StopReason, BudgetAndFailureAreDistinguishable) {
  // The old API collapsed "budget exhausted" and "counterexample found"
  // into `ok == false || !exhaustive`; both exits now carry an explicit
  // reason.
  auto bundle = simalgos::make_cas_maxreg_program(3);

  ModelCheckOptions budgeted;
  budgeted.max_executions = 5;
  const auto cut = model_check(bundle.program, maxreg_verdict, budgeted);
  EXPECT_TRUE(cut.ok);
  EXPECT_FALSE(cut.exhaustive);
  EXPECT_EQ(cut.stop, StopReason::kBudget);
  EXPECT_EQ(cut.executions, 5u);

  const Program bug = make_lost_update_program();
  const auto failed =
      model_check(bug, no_lost_update, ModelCheckOptions{});
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.stop, StopReason::kCounterexample);

  const auto complete =
      model_check(bundle.program, maxreg_verdict, ModelCheckOptions{});
  EXPECT_TRUE(complete.ok);
  EXPECT_TRUE(complete.exhaustive);
  EXPECT_EQ(complete.stop, StopReason::kComplete);
}

TEST(StopReason, BoundedCompleteIsNotExhaustive) {
  auto bundle = simalgos::make_cas_maxreg_program(3);
  ModelCheckOptions o;
  o.preemption_bound = 1;
  const auto result = model_check(bundle.program, maxreg_verdict, o);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.stop, StopReason::kComplete);
  EXPECT_FALSE(result.exhaustive);  // covered a subset by design
}

// ------------------------------------------- persistent sets / footprints

Program make_disjoint_writers(std::uint32_t n, std::uint32_t steps) {
  Program prog;
  std::vector<ObjectId> objs;
  for (std::uint32_t p = 0; p < n; ++p) objs.push_back(prog.add_object(0));
  for (std::uint32_t p = 0; p < n; ++p) {
    const ObjectId o = objs[p];
    prog.add_process(
        [o, steps](Ctx& ctx) -> Op {
          for (std::uint32_t s = 1; s <= steps; ++s) {
            co_await ctx.write(o, static_cast<Value>(s));
          }
          co_return 0;
        },
        {o});
  }
  return prog;
}

TEST(PersistentSets, DisjointFootprintsCollapseToOneRepresentative) {
  const Program prog = make_disjoint_writers(3, 3);
  const auto full =
      model_check(prog, [](const System&) { return ""; }, ModelCheckOptions{});
  EXPECT_EQ(full.executions, 1680u);  // 9! / (3!)^3

  ModelCheckOptions por;
  por.por = true;
  const auto reduced =
      model_check(prog, [](const System&) { return ""; }, por);
  EXPECT_TRUE(reduced.ok);
  EXPECT_TRUE(reduced.exhaustive);
  EXPECT_EQ(reduced.executions, 1u);  // fully commuting: one schedule
  EXPECT_GT(reduced.stats.persistent_pruned, 0u);
  EXPECT_LT(reduced.stats.nodes, full.stats.nodes);
}

TEST(PersistentSets, FootprintViolationThrows) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process(
      [b](Ctx& ctx) -> Op {
        co_await ctx.write(b, 1);  // declared {a}, touches b
        co_return 0;
      },
      {a});
  System sys{prog};
  EXPECT_THROW(sys.step(0), std::logic_error);
}

TEST(PersistentSets, EmptyFootprintDeclarationRejected) {
  Program prog;
  EXPECT_THROW(
      prog.add_process([](Ctx&) -> Op { co_return 0; },
                       std::vector<ObjectId>{}),
      std::invalid_argument);
}

// ---------------------------------------------------- certify parallelism

TEST(CertifyJobs, ReportIdenticalAcrossJobCounts) {
  auto bundle = simalgos::make_tree_maxreg_program(4);
  WaitFreedomOptions base;
  base.storm_seeds = 4;
  const auto reference = certify_wait_freedom(bundle.program, base);
  EXPECT_TRUE(reference.certified) << reference.message;
  for (const std::uint32_t jobs : {2u, 8u}) {
    WaitFreedomOptions o = base;
    o.jobs = jobs;
    const auto got = certify_wait_freedom(bundle.program, o);
    EXPECT_EQ(got.certified, reference.certified);
    EXPECT_EQ(got.schedules, reference.schedules);
    EXPECT_EQ(got.step_bound, reference.step_bound);
    EXPECT_EQ(got.worst_survivor_steps, reference.worst_survivor_steps);
    EXPECT_EQ(got.message, reference.message);
  }
}

TEST(CertifyJobs, BlockingNegativeControlFailsIdentically) {
  auto bundle = simalgos::make_lock_maxreg_program(3);
  WaitFreedomOptions base;
  base.storm_seeds = 2;
  base.max_schedule_steps = 1u << 12;
  const auto reference = certify_wait_freedom(bundle.program, base);
  EXPECT_FALSE(reference.certified);
  for (const std::uint32_t jobs : {2u, 8u}) {
    WaitFreedomOptions o = base;
    o.jobs = jobs;
    const auto got = certify_wait_freedom(bundle.program, o);
    EXPECT_FALSE(got.certified);
    EXPECT_EQ(got.schedules, reference.schedules);
    EXPECT_EQ(got.message, reference.message);
  }
}

}  // namespace
}  // namespace ruco::sim
