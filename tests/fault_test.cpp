// Crash-fault injection across the three execution layers: System::crash /
// step_spurious semantics, Herlihy-Wing pending-operation handling of
// crashed operations, FaultPlan/FaultInjector determinism and replay,
// fault-aware schedulers, crash exploration in the model checker, and the
// wait-freedom certifier (with the blocking spinlock register as the
// negative control).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/certify.h"
#include "ruco/sim/fault.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"

namespace ruco::sim {
namespace {

// --------------------------------------------------- System::crash basics

// p0: WriteMax-shaped op with a step after the write, so a crash can land
// between the write becoming visible and the operation returning.
Program writer_then_reader(bool write_first) {
  Program prog;
  const ObjectId o = prog.add_object(kNoValue);
  prog.add_process([o, write_first](Ctx& ctx) -> Op {
    ctx.mark_invoke("WriteMax", 5);
    if (write_first) {
      co_await ctx.write(o, 5);       // effect lands at step 1
      (void)co_await ctx.read(o);     // crash window: visible but pending
    } else {
      (void)co_await ctx.read(o);     // crash window: nothing visible yet
      co_await ctx.write(o, 5);
    }
    ctx.mark_return(0);
    co_return 0;
  });
  prog.add_process([o](Ctx& ctx) -> Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value v = co_await ctx.read(o);
    ctx.mark_return(v);
    co_return v;
  });
  return prog;
}

TEST(Crash, HaltsProcessPermanently) {
  const Program prog = writer_then_reader(true);
  System sys{prog};
  EXPECT_TRUE(sys.step(0));
  EXPECT_TRUE(sys.crash(0));
  EXPECT_TRUE(sys.crashed(0));
  EXPECT_TRUE(sys.done(0));
  EXPECT_FALSE(sys.active(0));
  EXPECT_EQ(sys.enabled(0), nullptr);
  EXPECT_EQ(sys.crash_count(), 1u);
  EXPECT_FALSE(sys.step(0)) << "crashed processes never step again";
  EXPECT_FALSE(sys.crash(0)) << "crash is not repeatable";
  EXPECT_EQ(sys.crash_count(), 1u);
  // The crash is not a shared-memory event.
  EXPECT_EQ(sys.trace().size(), 1u);
  EXPECT_THROW((void)sys.result(0), std::logic_error);
}

TEST(Crash, CompletedProcessIsNotCrashable) {
  const Program prog = writer_then_reader(true);
  System sys{prog};
  run_round_robin(sys, 1u << 20);
  ASSERT_TRUE(all_done(sys));
  EXPECT_FALSE(sys.crash(0));
  EXPECT_FALSE(sys.crashed(0));
  EXPECT_EQ(sys.result(1), 5);
}

TEST(Crash, BeforeFirstStepDiscardsTheBufferedInvoke) {
  const Program prog = writer_then_reader(true);
  System sys{prog};
  // p0 never stepped: its operation never started in the model, so it must
  // not appear in the history even as pending.
  EXPECT_TRUE(sys.crash(0));
  EXPECT_TRUE(sys.step(1));
  run_round_robin(sys, 16);
  ASSERT_TRUE(all_done(sys));
  const auto history = lincheck::from_sim_history(sys.history());
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history.ops[0].op, "ReadMax");
  EXPECT_EQ(history.ops[0].ret, kNoValue);
  EXPECT_EQ(history.pending_count(), 0u);
}

// ------------------------- lincheck pending-op semantics under crashes

TEST(CrashLincheck, LandedWriteOfACrashedWriterLinearizesAsCommitted) {
  const Program prog = writer_then_reader(true);
  System sys{prog};
  ASSERT_TRUE(sys.step(0));  // the write lands
  ASSERT_TRUE(sys.crash(0));
  run_round_robin(sys, 16);  // reader runs, sees 5
  ASSERT_TRUE(all_done(sys));
  EXPECT_EQ(sys.result(1), 5);
  const auto history = lincheck::from_sim_history(sys.history());
  EXPECT_EQ(history.pending_count(), 1u);
  const auto res =
      lincheck::check_linearizable(history, lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable)
      << "the crashed WriteMax must be linearizable as committed";
  // The witness must have linearized the pending write (the read returned
  // its value).
  EXPECT_EQ(res.witness.size(), 2u);
}

TEST(CrashLincheck, InvisibleCrashedWriteIsDroppable) {
  const Program prog = writer_then_reader(false);
  System sys{prog};
  ASSERT_TRUE(sys.step(0));  // only the read: nothing visible yet
  ASSERT_TRUE(sys.crash(0));
  run_round_robin(sys, 16);
  ASSERT_TRUE(all_done(sys));
  EXPECT_EQ(sys.result(1), kNoValue) << "the write never landed";
  const auto history = lincheck::from_sim_history(sys.history());
  EXPECT_EQ(history.pending_count(), 1u);
  const auto res =
      lincheck::check_linearizable(history, lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable)
      << "a never-visible crashed WriteMax must be droppable";
  EXPECT_EQ(res.witness.size(), 1u) << "the witness drops the pending op";
}

TEST(CrashLincheck, LandedCrashedWriteCannotBeIgnoredByTheSpec) {
  // Sanity inversion: with the write landed and read back, a checker that
  // *had* to drop pending ops would fail.  without_pending() removes the
  // crashed writer's op; the resulting history is NOT linearizable, which
  // is exactly why the checker must keep pending ops.
  const Program prog = writer_then_reader(true);
  System sys{prog};
  ASSERT_TRUE(sys.step(0));
  ASSERT_TRUE(sys.crash(0));
  run_round_robin(sys, 16);
  const auto history =
      lincheck::from_sim_history(sys.history()).without_pending();
  const auto res =
      lincheck::check_linearizable(history, lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_FALSE(res.linearizable);
}

// ------------------------------------------------------- spurious weak CAS

TEST(SpuriousCas, FailsWithoutApplyingAndIsRecorded) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    const Value ok = co_await ctx.cas(o, 0, 7);
    co_return ok;
  });
  System sys{prog};
  ASSERT_TRUE(sys.step_spurious(0));
  EXPECT_EQ(sys.value(o), 0) << "a spurious failure must not apply";
  ASSERT_TRUE(sys.done(0));
  EXPECT_EQ(sys.result(0), 0) << "the CAS reports failure";
  ASSERT_EQ(sys.trace().size(), 1u);
  EXPECT_TRUE(sys.trace()[0].spurious);
  EXPECT_FALSE(sys.trace()[0].changed);
  EXPECT_EQ(sys.trace()[0].observed, 0);
}

TEST(SpuriousCas, OnlyPendingCasEventsAreEligible) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    co_await ctx.write(o, 1);
    co_return 0;
  });
  System sys{prog};
  EXPECT_FALSE(sys.step_spurious(0)) << "pending write: not spuriously failable";
  EXPECT_TRUE(sys.step(0));
  EXPECT_FALSE(sys.step_spurious(0)) << "completed: nothing pending";
}

TEST(SpuriousCas, FaultyTraceReplaysExactly) {
  auto bundle = simalgos::make_tree_maxreg_program(5);
  System sys{bundle.program};
  FaultPlan plan;
  plan.seed = 11;
  plan.spurious_cas_per_mille = 300;
  FaultInjector injector{sys, plan};
  run_random(sys, 3, 1u << 20, injector);
  ASSERT_TRUE(all_done(sys));
  ASSERT_GT(injector.spurious_count(), 0u) << "plan must actually fire";
  // Replay with response checking: the spurious failures are re-injected
  // from the trace, so responses (and hence the whole execution) match.
  System fresh{bundle.program};
  const auto replay = replay_trace(fresh, sys.trace(), true);
  EXPECT_TRUE(replay.ok) << replay.message;
  // The history stays linearizable: a spurious CAS failure is just a
  // failed CAS to the algorithm, and Algorithm A retries per level.
  const auto res = lincheck::check_linearizable(
      lincheck::from_sim_history(sys.history()),
      lincheck::MaxRegisterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable);
}

// ------------------------------------------------ FaultInjector / plans

TEST(FaultInjector, ExplicitCrashPointFiresAtOwnStepThreshold) {
  const Program prog = writer_then_reader(true);
  System sys{prog};
  FaultPlan plan;
  plan.crash_at.push_back(CrashPoint{0, 1, CrashPoint::Basis::kOwnSteps});
  FaultInjector injector{sys, plan};
  run_round_robin(sys, 1u << 10, injector);
  ASSERT_EQ(injector.crash_count(), 1u);
  EXPECT_EQ(injector.unfired_placements(), 0u);
  EXPECT_EQ(injector.crashes()[0].proc, 0u);
  EXPECT_EQ(injector.crashes()[0].own_steps, 1u);
  EXPECT_TRUE(sys.crashed(0));
  EXPECT_EQ(sys.steps_taken(0), 1u) << "crashed after exactly one own step";
  EXPECT_FALSE(sys.crashed(1));
  EXPECT_EQ(sys.result(1), 5);
}

TEST(FaultInjector, GlobalStepBasisCountsSystemSteps) {
  // Round-robin order: p0 writes (global step 1), p1 reads (2), then p0 is
  // reselected with the trace already at 2 -- the threshold fires there.
  const Program prog = writer_then_reader(true);
  System sys{prog};
  FaultPlan plan;
  plan.crash_at.push_back(
      CrashPoint{0, 2, CrashPoint::Basis::kGlobalSteps});
  FaultInjector injector{sys, plan};
  run_round_robin(sys, 1u << 10, injector);
  ASSERT_EQ(injector.crash_count(), 1u);
  EXPECT_TRUE(sys.crashed(0));
  EXPECT_EQ(injector.crashes()[0].at_trace_size, 2u);
  EXPECT_EQ(injector.crashes()[0].own_steps, 1u);
  EXPECT_FALSE(sys.crashed(1));
  EXPECT_EQ(sys.result(1), 5) << "the reader saw the landed write";
}

TEST(FaultInjector, PlacementOnACompletedProcessNeverFires) {
  // cas maxreg: writer p0 writes operand 1 and can finish in one step when
  // a larger value is already installed -- a placement at own step >= 1 on
  // a process that completed first stays unfired, and the injector says so.
  const Program prog = writer_then_reader(true);
  System sys{prog};
  FaultPlan plan;
  plan.crash_at.push_back(CrashPoint{1, 5, CrashPoint::Basis::kOwnSteps});
  FaultInjector injector{sys, plan};
  run_round_robin(sys, 1u << 10, injector);
  ASSERT_TRUE(all_done(sys));
  EXPECT_EQ(injector.crash_count(), 0u);
  EXPECT_EQ(injector.unfired_placements(), 1u);
}

TEST(FaultInjector, RandomStormRespectsQuotaAndMinSurvivors) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto bundle = simalgos::make_cas_maxreg_program(6);
    System sys{bundle.program};
    FaultPlan plan;
    plan.seed = seed;
    plan.max_random_crashes = 4;
    plan.crash_per_mille = 400;  // aggressive: quota must still bind
    plan.min_survivors = 2;
    FaultInjector injector{sys, plan};
    run_random(sys, seed, 1u << 20, injector);
    ASSERT_TRUE(all_done(sys));
    EXPECT_LE(injector.crash_count(), 4u);
    std::size_t survivors = 0;
    for (ProcId p = 0; p < sys.num_processes(); ++p) {
      survivors += sys.crashed(p) ? 0 : 1;
    }
    EXPECT_GE(survivors, 2u) << "min_survivors violated at seed " << seed;
  }
}

TEST(FaultInjector, FaultScheduleIsSeedDeterministicAndReplayable) {
  auto bundle = simalgos::make_tree_maxreg_program(6);
  auto run_once = [&bundle](Trace& trace, std::vector<CrashRecord>& log) {
    System sys{bundle.program};
    FaultPlan plan;
    plan.seed = 7;
    plan.max_random_crashes = 3;
    plan.crash_per_mille = 60;
    plan.spurious_cas_per_mille = 50;
    FaultInjector injector{sys, plan};
    run_random(sys, 21, 1u << 20, injector);
    ASSERT_TRUE(all_done(sys));
    trace = sys.trace();
    log = injector.crashes();
  };
  Trace t1;
  Trace t2;
  std::vector<CrashRecord> l1;
  std::vector<CrashRecord> l2;
  run_once(t1, l1);
  run_once(t2, l2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_TRUE(t1[i].same_action(t2[i])) << "diverged at event " << i;
    EXPECT_EQ(t1[i].spurious, t2[i].spurious);
  }
  ASSERT_EQ(l1.size(), l2.size());
  for (std::size_t i = 0; i < l1.size(); ++i) {
    EXPECT_EQ(l1[i].proc, l2[i].proc);
    EXPECT_EQ(l1[i].at_trace_size, l2[i].at_trace_size);
  }
  // And the faulty execution replays exactly on a fresh system.
  System fresh{bundle.program};
  const auto replay = replay_trace(fresh, t1, true);
  EXPECT_TRUE(replay.ok) << replay.message;
}

TEST(FaultInjector, CrashedHistoryStaysLinearizable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto bundle = simalgos::make_tree_maxreg_program(5);
    System sys{bundle.program};
    FaultPlan plan;
    plan.seed = seed;
    plan.max_random_crashes = 3;
    plan.crash_per_mille = 100;
    FaultInjector injector{sys, plan};
    run_random(sys, seed * 13, 1u << 20, injector);
    ASSERT_TRUE(all_done(sys));
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "seed " << seed << " with "
                                  << injector.crash_count() << " crashes";
  }
}

// ----------------------------------------------- model checker crashes

std::string maxreg_lin_verdict(const System& sys) {
  const auto res = lincheck::check_linearizable(
      lincheck::from_sim_history(sys.history()),
      lincheck::MaxRegisterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable";
}

TEST(ModelCheckCrash, CrashChoicesEnlargeTheScheduleSpace) {
  auto bundle = simalgos::make_cas_maxreg_program(3);
  ModelCheckOptions plain;
  const auto without = model_check(bundle.program, maxreg_lin_verdict, plain);
  ModelCheckOptions crashy;
  crashy.max_crashes = 1;
  const auto with = model_check(bundle.program, maxreg_lin_verdict, crashy);
  EXPECT_TRUE(without.ok);
  EXPECT_TRUE(with.ok);
  EXPECT_GT(with.executions, without.executions)
      << "every crash placement adds executions";
}

TEST(ModelCheckCrash, CounterexampleEncodesTheCrashChoice) {
  auto bundle = simalgos::make_cas_maxreg_program(3);
  ModelCheckOptions options;
  options.max_crashes = 1;
  // Reject any execution containing a crash: the first counterexample is
  // the earliest crash placement in DFS order.
  const auto result = model_check(
      bundle.program,
      [](const System& sys) {
        return sys.crash_count() != 0 ? "crash happened" : "";
      },
      options);
  ASSERT_FALSE(result.ok);
  bool found_crash_choice = false;
  for (const ProcId choice : result.counterexample) {
    found_crash_choice = found_crash_choice || is_crash_choice(choice);
  }
  EXPECT_TRUE(found_crash_choice);
  const std::string rendered =
      render_schedule(bundle.program, result.counterexample);
  EXPECT_NE(rendered.find("CRASH"), std::string::npos) << rendered;
}

TEST(ModelCheckCrash, TwoWriterCasMaxRegLinearizableUnderEveryCrashPair) {
  auto bundle = simalgos::make_cas_maxreg_program(3);
  ModelCheckOptions options;
  options.max_crashes = 2;
  const auto result =
      model_check(bundle.program, maxreg_lin_verdict, options);
  EXPECT_TRUE(result.ok) << result.message << "\n"
                         << render_schedule(bundle.program,
                                            result.counterexample);
  EXPECT_TRUE(result.exhaustive);
}

// The acceptance configuration: Algorithm A, 2 writers + 1 reader, small
// preemption bound, every <=1-crash placement.
TEST(ModelCheckCrash, AlgorithmALinearizableUnderEveryOneCrashPlacement) {
  auto bundle = simalgos::make_tree_maxreg_program(3);
  ModelCheckOptions options;
  options.preemption_bound = 1;
  options.max_crashes = 1;
  const auto result =
      model_check(bundle.program, maxreg_lin_verdict, options);
  EXPECT_TRUE(result.ok) << result.message << "\n"
                         << render_schedule(bundle.program,
                                            result.counterexample);
  EXPECT_GT(result.executions, 0u);
}

// --------------------------------------------- wait-freedom certification

TEST(Certifier, CertifiesTheWaitFreeMaxRegisters) {
  const struct {
    const char* name;
    simalgos::MaxRegProgram bundle;
  } targets[] = {
      {"tree", simalgos::make_tree_maxreg_program(5)},
      {"cas", simalgos::make_cas_maxreg_program(5)},
      {"aac", simalgos::make_aac_maxreg_program(5, 8)},
      {"uaac", simalgos::make_unbounded_aac_maxreg_program(5)},
  };
  for (const auto& target : targets) {
    const auto report = certify_wait_freedom(target.bundle.program);
    EXPECT_TRUE(report.certified)
        << target.name << ": " << report.message;
    EXPECT_GT(report.schedules, 0u);
    EXPECT_LE(report.worst_survivor_steps, report.step_bound);
  }
}

TEST(Certifier, CertifiesTheWaitFreeCounters) {
  const auto farray = simalgos::make_farray_counter_program(5);
  const auto report = certify_wait_freedom(farray.program);
  EXPECT_TRUE(report.certified) << report.message;
}

TEST(Certifier, FailsTheBlockingLockRegister) {
  const auto bundle = simalgos::make_lock_maxreg_program(4);
  const auto report = certify_wait_freedom(bundle.program);
  EXPECT_FALSE(report.certified)
      << "a spinlock register must not certify: survivors spin when the "
         "lock holder crashes";
  EXPECT_NE(report.message.find("p"), std::string::npos);
  EXPECT_FALSE(report.message.empty());
}

TEST(Certifier, ReportIsDeterministic) {
  const auto bundle = simalgos::make_tree_maxreg_program(4);
  const auto a = certify_wait_freedom(bundle.program);
  const auto b = certify_wait_freedom(bundle.program);
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.step_bound, b.step_bound);
  EXPECT_EQ(a.worst_survivor_steps, b.worst_survivor_steps);
}

// ------------------------------------------------------- kcas guardrail

TEST(KcasGuard, EmptyEntryListIsRejected) {
  Program prog;
  (void)prog.add_object(0);
  prog.add_process([](Ctx& ctx) -> Op {
    co_await ctx.kcas({});
    co_return 0;
  });
  // The body throws at its first resume, which happens during System
  // construction (processes run to their first suspension).
  EXPECT_THROW({ System sys{prog}; }, std::invalid_argument);
}

}  // namespace
}  // namespace ruco::sim
