// Parameterized sweeps of both adversaries across sizes and targets: the
// machine-checked invariants (knowledge growth, essential-set properties,
// replays, reader probes) must hold at every combination, not just the
// spot sizes of adversary_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/adversary/maxreg_adversary.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_snapshots.h"

namespace ruco::adversary {
namespace {

// ---------------------------------- Theorem 1 sweep: counter x size

using CounterCase = std::tuple<std::string, std::uint32_t>;

class CounterSweep : public ::testing::TestWithParam<CounterCase> {};

simalgos::CounterProgram make_counter(const std::string& kind,
                                      std::uint32_t n) {
  if (kind == "maxreg") {
    return simalgos::make_maxreg_counter_program(n, static_cast<Value>(n));
  }
  if (kind == "kcas") return simalgos::make_kcas_counter_program(n);
  if (kind == "dcsnap") {
    return simalgos::make_dc_snapshot_counter_program(n);
  }
  return simalgos::make_farray_counter_program(n);
}

TEST_P(CounterSweep, InvariantsAndCorrectness) {
  const auto& [kind, n] = GetParam();
  const auto report = run_counter_adversary(make_counter(kind, n));
  EXPECT_TRUE(report.knowledge_bound_held)
      << kind << " N=" << n << ": M(E_j) <= 3^j violated";
  EXPECT_TRUE(report.reader_correct)
      << kind << " N=" << n << ": reader got " << report.reader_value;
  EXPECT_EQ(report.reader_awareness, static_cast<std::size_t>(n))
      << kind << " N=" << n << ": Lemma 3 awareness";
  // Universal floor: rounds >= log3(N / reader_steps).
  const double bound =
      std::log(static_cast<double>(n) /
               std::max<double>(static_cast<double>(report.reader_steps), 1)) /
      std::log(3.0);
  EXPECT_GE(static_cast<double>(report.rounds), bound) << kind << " N=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Families, CounterSweep,
    ::testing::Combine(::testing::Values("farray", "maxreg", "kcas",
                                         "dcsnap"),
                       ::testing::Values(8u, 16u, 33u, 64u, 100u)),
    [](const ::testing::TestParamInfo<CounterCase>& param_info) {
      return std::get<0>(param_info.param) + "_" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------- Theorem 3 sweep: register x size

using MaxRegCase = std::tuple<std::string, std::uint32_t>;

class MaxRegSweep : public ::testing::TestWithParam<MaxRegCase> {};

simalgos::MaxRegProgram make_register(const std::string& kind,
                                      std::uint32_t k) {
  if (kind == "tree") return simalgos::make_tree_maxreg_program(k);
  if (kind == "aac") {
    return simalgos::make_aac_maxreg_program(k, static_cast<Value>(k));
  }
  if (kind == "uaac") return simalgos::make_unbounded_aac_maxreg_program(k);
  return simalgos::make_cas_maxreg_program(k);
}

TEST_P(MaxRegSweep, EssentialSetMachinerySound) {
  const auto& [kind, k] = GetParam();
  MaxRegAdversaryOptions opts;
  opts.min_active = 8;
  opts.max_iterations = 20;
  const auto report = run_maxreg_adversary(make_register(kind, k), opts);
  EXPECT_TRUE(report.all_replays_ok) << kind << " K=" << k;
  EXPECT_TRUE(report.all_invariants_ok)
      << kind << " K=" << k << ": " << report.stop_reason;
  EXPECT_TRUE(report.all_size_bounds_ok) << kind << " K=" << k;
  EXPECT_TRUE(report.reader_ok)
      << kind << " K=" << k << ": reader " << report.reader_value;
  EXPECT_GE(report.iterations_completed, 1u) << kind << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Families, MaxRegSweep,
    ::testing::Combine(::testing::Values("cas", "tree", "aac", "uaac"),
                       ::testing::Values(32u, 64u, 150u, 256u)),
    [](const ::testing::TestParamInfo<MaxRegCase>& param_info) {
      return std::get<0>(param_info.param) + "_" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace ruco::adversary
