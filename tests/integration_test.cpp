// Cross-module integration: the Corollary 1 reduction end to end, concepts
// conformance, mixed-object workloads, and the production/simulation layers
// exercised together the way the benchmarks use them.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <numeric>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/ruco.h"
#include "ruco/sim/schedulers.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_counters.h"
#include "ruco/util/rng.h"

namespace ruco {
namespace {

// --------------------------------------------------- concept conformance

static_assert(MaxRegisterLike<maxreg::TreeMaxRegister>);
static_assert(MaxRegisterLike<maxreg::AacMaxRegister>);
static_assert(MaxRegisterLike<maxreg::CasMaxRegister>);
static_assert(MaxRegisterLike<maxreg::LockMaxRegister>);
static_assert(MaxRegisterLike<maxreg::UnboundedAacMaxRegister>);
static_assert(CounterLike<counter::FArrayCounter>);
static_assert(CounterLike<counter::MaxRegCounter>);
static_assert(CounterLike<counter::FetchAddCounter>);
static_assert(CounterLike<counter::KcasCounter>);
static_assert(CounterLike<counter::UnboundedMaxRegCounter>);
static_assert(
    CounterLike<counter::SnapshotCounter<snapshot::FArraySnapshot>>);
static_assert(SnapshotLike<snapshot::DoubleCollectSnapshot>);
static_assert(SnapshotLike<snapshot::AfekSnapshot>);
static_assert(SnapshotLike<snapshot::FArraySnapshot>);
static_assert(!MaxRegisterLike<counter::FArrayCounter>);
static_assert(!CounterLike<maxreg::TreeMaxRegister>);

// ------------------------------------------- Corollary 1, both directions

TEST(Corollary1, SnapshotCounterInheritsScanCost) {
  // Counter built on the O(1)-scan f-array snapshot: its read is O(1)
  // steps plus local summing; its increment pays the snapshot's O(log N)
  // update -- i.e. the reduction lands exactly on the f-array counter's
  // point of the tradeoff curve.
  constexpr std::uint32_t n = 64;
  counter::SnapshotCounter<snapshot::FArraySnapshot> via_snapshot{n};
  counter::FArrayCounter direct{n};
  via_snapshot.increment(0);
  direct.increment(0);

  runtime::StepScope r1;
  (void)via_snapshot.read(1);
  const auto via_read_steps = r1.taken();
  runtime::StepScope r2;
  (void)direct.read(1);
  EXPECT_EQ(via_read_steps, r2.taken())
      << "both reads are a single root load";

  runtime::StepScope u1;
  via_snapshot.increment(2);
  const auto via_steps = u1.taken();
  runtime::StepScope u2;
  direct.increment(2);
  const auto direct_steps = u2.taken();
  // Same Theta(log N); the snapshot route pays a constant factor more
  // (views vs sums) but not an asymptotic one.
  EXPECT_LE(via_steps, 2 * direct_steps + 4);
}

TEST(Corollary1, AllSnapshotBackedCountersCountCorrectly) {
  constexpr std::uint32_t kThreads = 4;
  constexpr int kPer = 200;
  counter::SnapshotCounter<snapshot::FArraySnapshot> c1{kThreads};
  counter::SnapshotCounter<snapshot::AfekSnapshot> c2{kThreads};
  runtime::run_threads(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kPer; ++i) {
      c1.increment(static_cast<ProcId>(t));
      c2.increment(static_cast<ProcId>(t));
    }
  });
  EXPECT_EQ(c1.read(0), kThreads * kPer);
  EXPECT_EQ(c2.read(0), kThreads * kPer);
}

// --------------------------------------------- mixed-object workloads

TEST(Integration, MaxRegisterPlusCounterPipeline) {
  // The motivating combo from the introduction: a counter numbers events, a
  // max register publishes the high watermark of processed event ids.
  constexpr std::uint32_t kThreads = 4;
  counter::FArrayCounter sequencer{kThreads};
  maxreg::TreeMaxRegister watermark{kThreads};
  // Watchdog-supervised: if the pipeline ever livelocks, CI gets a loud
  // failure naming the stuck thread instead of a hang.
  runtime::WatchdogOptions watchdog;
  watchdog.deadline = std::chrono::minutes{2};
  const auto run = runtime::run_threads(
      kThreads,
      [&](std::size_t t) {
        for (int i = 0; i < 500; ++i) {
          sequencer.increment(static_cast<ProcId>(t));
          const Value id = sequencer.read(static_cast<ProcId>(t));
          watermark.write_max(static_cast<ProcId>(t), id);
        }
      },
      watchdog);
  ASSERT_TRUE(run.completed_in_time) << run.hang.diagnostic;
  EXPECT_EQ(sequencer.read(0), 2000);
  // The watermark saw some read of the counter; after quiescence it must
  // equal the final count (the last incrementer read >= its own final id...
  // in fact every read happens after the process's own increment, so the
  // max over reads is the max over "count at some instant" = final count
  // only if some process read after the global last increment; at minimum
  // it is >= count/kThreads).
  EXPECT_GE(watermark.read_max(0), 2000 / kThreads);
  EXPECT_LE(watermark.read_max(0), 2000);
}

TEST(Integration, SimAndProductionAgreeOnWorkloadOutcome) {
  // Drive the same deterministic workload through both layers; terminal
  // counter values must agree.
  constexpr std::uint32_t n = 8;
  constexpr int kOpsPerProc = 20;
  counter::FArrayCounter prod{n};
  for (int i = 0; i < kOpsPerProc; ++i) {
    for (ProcId p = 0; p < n; ++p) prod.increment(p);
  }

  sim::Program prog;
  simalgos::SimFArrayCounter twin{prog, n};
  for (ProcId p = 0; p < n; ++p) {
    prog.add_process([&twin](sim::Ctx& ctx) -> sim::Op {
      for (int i = 0; i < kOpsPerProc; ++i) co_await twin.increment(ctx);
      co_return 0;
    });
  }
  sim::System sys{prog};
  sim::run_random(sys, 1234, 1u << 24);
  ASSERT_TRUE(sim::all_done(sys));

  sim::Program probe_prog;  // fresh read through production layer
  EXPECT_EQ(prod.read(0), static_cast<Value>(n) * kOpsPerProc);
  // Sim root object holds the same count.
  EXPECT_EQ(sys.value(twin.root_object()),
            static_cast<Value>(n) * kOpsPerProc);
}

TEST(Integration, RestrictedUseBoundSurvivesConcurrency) {
  // Hammer a MaxRegCounter right at its bound from several threads; the
  // object must either count correctly or throw length_error -- never
  // corrupt.
  constexpr std::uint32_t kThreads = 4;
  constexpr Value kBound = 64;
  counter::MaxRegCounter c{kThreads, kBound};
  std::atomic<int> throws{0};
  runtime::run_threads(kThreads, [&](std::size_t t) {
    for (int i = 0; i < 20; ++i) {
      try {
        c.increment(static_cast<ProcId>(t));
      } catch (const std::length_error&) {
        throws.fetch_add(1);
      }
    }
  });
  const Value final_count = c.read(0);
  EXPECT_EQ(final_count + throws.load(), 80);
  EXPECT_LE(final_count, kBound);
}

// ------------------------------------ step accounting across the stack

TEST(Integration, StepCountsComposeAcrossObjects) {
  maxreg::TreeMaxRegister reg{8};
  counter::FArrayCounter counter{8};
  runtime::StepScope total;
  reg.write_max(0, 3);
  runtime::StepScope counter_only;
  counter.increment(0);
  const auto counter_steps = counter_only.taken();
  reg.write_max(0, 200);
  EXPECT_GT(total.taken(), counter_steps)
      << "outer scope sees all objects' events";
}

// --------------------------------- adversary vs snapshot-counter route

TEST(Integration, AdversaryBoundsHoldAcrossCounterFamilies) {
  // Theorem 1's round bound log_3(N/f(N)) with the measured f: for the
  // f-array f = 1 step, for the AAC counter f = Theta(log U).  Both
  // families' adversary runs must satisfy rounds >= log_3(N / f_measured).
  constexpr std::uint32_t n = 81;
  const auto fa =
      adversary::run_counter_adversary(simalgos::make_farray_counter_program(n));
  const double fa_bound =
      std::log(static_cast<double>(n) /
               static_cast<double>(fa.reader_steps)) /
      std::log(3.0);
  EXPECT_GE(static_cast<double>(fa.rounds), fa_bound);

  const auto mr = adversary::run_counter_adversary(
      simalgos::make_maxreg_counter_program(n, 1 << 10));
  const double mr_bound =
      std::log(static_cast<double>(n) /
               static_cast<double>(mr.reader_steps)) /
      std::log(3.0);
  EXPECT_GE(static_cast<double>(mr.rounds), mr_bound);
}

}  // namespace
}  // namespace ruco
