// Randomized cross-checking harness ("fuzzing" the whole stack): generated
// multi-op workloads over every simulated object, executed under random and
// PCT schedules, validated by the Wing-Gong checker -- plus determinism and
// replay closure properties of the simulator itself.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/awareness.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/sim_counters.h"
#include "ruco/simalgos/sim_max_registers.h"
#include "ruco/util/rng.h"

namespace ruco::simalgos {
namespace {

/// A generated workload: each process runs a random sequence of WriteMax /
/// ReadMax ops (multi-op bodies, unlike the single-op adversary programs).
struct MaxRegWorkload {
  sim::Program program;
  std::shared_ptr<SimTreeMaxRegister> reg;
};

MaxRegWorkload make_workload(std::uint64_t seed, std::uint32_t procs,
                             int ops_per_proc) {
  MaxRegWorkload w;
  w.reg = std::make_shared<SimTreeMaxRegister>(
      w.program, procs, maxreg::Faithfulness::kHelpOnDuplicate);
  util::SplitMix64 rng{seed};
  for (ProcId p = 0; p < procs; ++p) {
    auto script = std::make_shared<std::vector<std::pair<bool, Value>>>();
    for (int i = 0; i < ops_per_proc; ++i) {
      script->emplace_back(rng.chance(1, 2),
                           static_cast<Value>(rng.below(3 * procs)));
    }
    w.program.add_process(
        [reg = w.reg, script](sim::Ctx& ctx) -> sim::Op {
          for (const auto& [is_write, v] : *script) {
            if (is_write) {
              ctx.mark_invoke("WriteMax", v);
              co_await reg->write_max(ctx, v);
              ctx.mark_return(0);
            } else {
              ctx.mark_invoke("ReadMax", 0);
              const Value got = co_await reg->read_max(ctx);
              ctx.mark_return(got);
            }
          }
          co_return 0;
        });
  }
  return w;
}

TEST(Fuzz, MultiOpWorkloadsLinearizableUnderRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto w = make_workload(seed, 5, 4);
    sim::System sys{w.program};
    sim::run_random(sys, seed * 7919, 1u << 22);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    ASSERT_TRUE(res.decided) << "seed " << seed;
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

TEST(Fuzz, MultiOpWorkloadsLinearizableUnderPct) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto w = make_workload(seed, 5, 4);
    sim::System sys{w.program};
    sim::PctOptions opts;
    opts.seed = seed;
    opts.depth = 4;
    sim::run_pct(sys, opts);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

TEST(Fuzz, PctFindsThePropagateOnceBugFasterThanUniform) {
  // Bug-finding power check on a known bug (the 1-attempt propagation):
  // PCT's targeted preemptions should expose it within few seeds.
  int pct_hits = 0;
  int uniform_hits = 0;
  constexpr int kSeeds = 60;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    for (const bool use_pct : {true, false}) {
      sim::Program prog;
      auto reg = std::make_shared<SimTreeMaxRegister>(
          prog, 4, maxreg::Faithfulness::kHelpOnDuplicate, 1);
      for (Value v = 1; v <= 2; ++v) {
        prog.add_process([reg, v](sim::Ctx& ctx) -> sim::Op {
          ctx.mark_invoke("WriteMax", v);
          co_await reg->write_max(ctx, v);
          ctx.mark_return(0);
          co_return 0;
        });
      }
      prog.add_process([reg](sim::Ctx& ctx) -> sim::Op {
        ctx.mark_invoke("ReadMax", 0);
        const Value got = co_await reg->read_max(ctx);
        ctx.mark_return(got);
        co_return got;
      });
      sim::System sys{prog};
      if (use_pct) {
        sim::PctOptions opts;
        opts.seed = seed;
        opts.depth = 3;
        opts.max_steps = 200;  // tight budget => change points in range
        opts.only = {0, 1};    // writers race; reader strictly afterwards
        sim::run_pct(sys, opts);
      } else {
        // Uniform random over the writers only (same protocol).
        util::SplitMix64 rng{seed};
        std::vector<ProcId> live{0, 1};
        while (!live.empty()) {
          const auto i = static_cast<std::size_t>(rng.below(live.size()));
          sys.step(live[i]);
          if (!sys.active(live[i])) {
            live[i] = live.back();
            live.pop_back();
          }
        }
      }
      sim::run_solo(sys, 2, 1u << 20);  // the verifying reader
      ASSERT_TRUE(sim::all_done(sys));
      const auto res = lincheck::check_linearizable(
          lincheck::from_sim_history(sys.history()),
          lincheck::MaxRegisterSpec{});
      if (res.decided && !res.linearizable) {
        (use_pct ? pct_hits : uniform_hits) += 1;
      }
    }
  }
  // Both schedulers should be able to find it across 60 seeds; record the
  // comparison (PCT is typically at least as good).
  EXPECT_GT(pct_hits + uniform_hits, 0)
      << "the known bug must be findable by schedule fuzzing";
}

TEST(Fuzz, SimulatorIsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ull, 9ull, 77ull}) {
    auto w1 = make_workload(3, 4, 3);
    auto w2 = make_workload(3, 4, 3);
    sim::System a{w1.program};
    sim::System b{w2.program};
    sim::run_random(a, seed, 1u << 20);
    sim::run_random(b, seed, 1u << 20);
    ASSERT_EQ(a.trace().size(), b.trace().size());
    for (std::size_t i = 0; i < a.trace().size(); ++i) {
      ASSERT_TRUE(a.trace()[i].same_action(b.trace()[i])) << i;
      ASSERT_EQ(a.trace()[i].observed, b.trace()[i].observed) << i;
    }
  }
}

TEST(Fuzz, FullTraceAlwaysReplays) {
  // Closure property: any recorded execution replays response-exact on a
  // fresh system (no hidden nondeterminism anywhere in the stack).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto w = make_workload(seed + 100, 6, 3);
    sim::System sys{w.program};
    sim::run_random(sys, seed, 1u << 22);
    ASSERT_TRUE(sim::all_done(sys));
    sim::System fresh{w.program};
    const auto replay = sim::replay_trace(fresh, sys.trace(), true);
    EXPECT_TRUE(replay.ok) << "seed " << seed << ": " << replay.message;
  }
}

TEST(Fuzz, OnlineKnowledgeAlwaysContainsOffline) {
  // The documented containment: the online conservative tracker is a
  // superset of the literal Definition 1-4 recomputation, on arbitrary
  // workloads.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto w = make_workload(seed + 500, 6, 3);
    sim::System sys{w.program};
    sim::run_random(sys, seed, 1u << 22);
    const auto offline = sim::recompute_knowledge(
        sys.trace(), sys.num_processes(), sys.num_objects());
    for (ProcId p = 0; p < sys.num_processes(); ++p) {
      for (const ProcId q : offline.awareness[p].members()) {
        EXPECT_TRUE(sys.awareness(p).contains(q))
            << "seed " << seed << " p" << p << " q" << q;
      }
    }
    for (sim::ObjectId o = 0; o < sys.num_objects(); ++o) {
      for (const ProcId q : offline.familiarity[o].members()) {
        EXPECT_TRUE(sys.familiarity(o).contains(q))
            << "seed " << seed << " o" << o << " q" << q;
      }
    }
  }
}

TEST(Fuzz, CountersEndExactUnderAnySchedule) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Program prog;
    SimFArrayCounter counter{prog, 7};
    constexpr int kOps = 5;
    for (ProcId p = 0; p < 7; ++p) {
      prog.add_process([&counter](sim::Ctx& ctx) -> sim::Op {
        for (int i = 0; i < kOps; ++i) co_await counter.increment(ctx);
        co_return 0;
      });
    }
    sim::System sys{prog};
    if (seed % 2 == 0) {
      sim::run_random(sys, seed, 1u << 22);
    } else {
      sim::PctOptions opts;
      opts.seed = seed;
      sim::run_pct(sys, opts);
    }
    ASSERT_TRUE(sim::all_done(sys));
    EXPECT_EQ(sys.value(counter.root_object()), 7 * kOps) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ruco::simalgos
