// The k-CAS extension (Attiya & Hendler, reference [6]): primitive
// semantics in the simulator, awareness/familiarity flow through multi-word
// events, the generalized Lemma 1 growth bound, and the 2-CAS counter --
// which beats Theorem 1's frontier solo (legal: stronger primitive) and is
// starved to Theta(N) rounds by the adversary (it is lock-free, not
// wait-free).
#include <gtest/gtest.h>

#include <cmath>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/adversary/lemma_one.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/awareness.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"
#include "ruco/simalgos/sim_counters.h"

namespace ruco::sim {
namespace {

Op kcas_two(Ctx& ctx, ObjectId a, ObjectId b, Value ea, Value eb, Value da,
            Value db) {
  // No initializer_list inside coroutines (GCC 12 limitation).
  std::vector<KcasEntry> words(2);
  words[0] = KcasEntry{a, ea, da};
  words[1] = KcasEntry{b, eb, db};
  co_return co_await ctx.kcas(std::move(words));
}

TEST(Kcas, SucceedsWhenAllMatch) {
  Program prog;
  const ObjectId a = prog.add_object(1);
  const ObjectId b = prog.add_object(2);
  prog.add_process([=](Ctx& ctx) { return kcas_two(ctx, a, b, 1, 2, 10, 20); });
  System sys{prog};
  run_solo(sys, 0, 10);
  EXPECT_EQ(sys.result(0), 1);
  EXPECT_EQ(sys.value(a), 10);
  EXPECT_EQ(sys.value(b), 20);
  EXPECT_EQ(sys.steps_taken(0), 1u) << "a k-CAS is one step";
}

TEST(Kcas, FailsAtomicallyOnAnyMismatch) {
  Program prog;
  const ObjectId a = prog.add_object(1);
  const ObjectId b = prog.add_object(99);  // mismatch
  prog.add_process([=](Ctx& ctx) { return kcas_two(ctx, a, b, 1, 2, 10, 20); });
  System sys{prog};
  run_solo(sys, 0, 10);
  EXPECT_EQ(sys.result(0), 0);
  EXPECT_EQ(sys.value(a), 1) << "no partial installation";
  EXPECT_EQ(sys.value(b), 99);
}

TEST(Kcas, TrivialWhenDesiredEqualsCurrent) {
  Program prog;
  const ObjectId a = prog.add_object(1);
  const ObjectId b = prog.add_object(2);
  prog.add_process([=](Ctx& ctx) { return kcas_two(ctx, a, b, 1, 2, 1, 2); });
  System sys{prog};
  run_solo(sys, 0, 10);
  EXPECT_EQ(sys.result(0), 1) << "reports success";
  EXPECT_FALSE(sys.trace().back().changed) << "but changes nothing";
}

TEST(Kcas, PendingInspectionSeesAllWords) {
  Program prog;
  const ObjectId a = prog.add_object(1);
  const ObjectId b = prog.add_object(2);
  prog.add_process([=](Ctx& ctx) { return kcas_two(ctx, a, b, 1, 2, 10, 20); });
  System sys{prog};
  const Pending* pending = sys.enabled(0);
  ASSERT_NE(pending, nullptr);
  EXPECT_EQ(pending->prim, Prim::kKcas);
  ASSERT_EQ(pending->kcas.size(), 2u);
  EXPECT_TRUE(sys.pending_would_change(0));
}

TEST(Kcas, WouldChangeTracksStaleness) {
  Program prog;
  const ObjectId a = prog.add_object(1);
  const ObjectId b = prog.add_object(2);
  prog.add_process([=](Ctx& ctx) { return kcas_two(ctx, a, b, 1, 2, 10, 20); });
  prog.add_process([=](Ctx& ctx) -> Op {
    co_await ctx.write(b, 7);
    co_return 0;
  });
  System sys{prog};
  EXPECT_TRUE(sys.pending_would_change(0));
  sys.step(1);  // b := 7, staling the k-CAS
  EXPECT_FALSE(sys.pending_would_change(0));
}

TEST(Kcas, AwarenessFlowsThroughEveryWord) {
  // p0 writes a; p1 writes b; p2's (even failing) k-CAS over {a, b} learns
  // of both writers.
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([=](Ctx& ctx) -> Op {
    co_await ctx.write(a, 1);
    co_return 0;
  });
  prog.add_process([=](Ctx& ctx) -> Op {
    co_await ctx.write(b, 2);
    co_return 0;
  });
  prog.add_process(
      [=](Ctx& ctx) { return kcas_two(ctx, a, b, 5, 5, 6, 6); });
  System sys{prog};
  sys.step(0);
  sys.step(1);
  sys.step(2);  // fails (expected 5s) but observes both objects
  EXPECT_EQ(sys.result(2), 0);
  EXPECT_TRUE(sys.awareness(2).contains(0));
  EXPECT_TRUE(sys.awareness(2).contains(1));
}

TEST(Kcas, SuccessfulKcasVisibleOnChangedWordsOnly) {
  Program prog;
  const ObjectId a = prog.add_object(1);
  const ObjectId b = prog.add_object(2);
  // Changes a, leaves b at its current value (desired == expected).
  prog.add_process([=](Ctx& ctx) { return kcas_two(ctx, a, b, 1, 2, 9, 2); });
  System sys{prog};
  sys.step(0);
  EXPECT_TRUE(sys.familiarity(a).contains(0));
  EXPECT_FALSE(sys.familiarity(b).contains(0))
      << "no value change on b, nothing visible there";
}

TEST(Kcas, OfflineRecomputationAgreesOnKcasFlows) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([=](Ctx& ctx) -> Op {
    co_await ctx.write(a, 3);
    co_return 0;
  });
  prog.add_process([=](Ctx& ctx) { return kcas_two(ctx, a, b, 3, 0, 4, 1); });
  prog.add_process([=](Ctx& ctx) -> Op {
    co_return co_await ctx.read(b);
  });
  System sys{prog};
  run_round_robin(sys, 100);
  const auto offline =
      recompute_knowledge(sys.trace(), sys.num_processes(), sys.num_objects());
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    EXPECT_EQ(offline.awareness[p], sys.awareness(p)) << "p" << p;
  }
  // p2 read b, which p1's successful k-CAS changed after observing p0's
  // write to a: transitive flow p0 -> p1 -> p2.
  EXPECT_TRUE(sys.awareness(2).contains(0));
  EXPECT_TRUE(sys.awareness(2).contains(1));
}

TEST(Kcas, ReplayReproducesKcasResponses) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  for (int i = 0; i < 3; ++i) {
    prog.add_process(
        [=](Ctx& ctx) { return kcas_two(ctx, a, b, 0, 0, 1, 1); });
  }
  System sys{prog};
  sys.step(0);  // wins
  sys.step(1);  // fails
  sys.step(2);  // fails
  System fresh{prog};
  const auto replay = replay_trace(fresh, sys.trace(), true);
  EXPECT_TRUE(replay.ok) << replay.message;
}

TEST(KcasLemmaOne, GeneralizedGrowthBound) {
  // With k-word CAS a round can multiply knowledge by more than 3, but at
  // most (2k+1) (cf. Attiya-Hendler): each k-CAS absorbs <= k familiarity
  // sets and a winner re-publishes them.  Check the k=2 bound (<= 5x) over
  // the 2-CAS counter workload.
  auto bundle = simalgos::make_kcas_counter_program(64);
  sim::System sys{bundle.program};
  std::vector<ProcId> procs;
  for (ProcId p = 0; p < bundle.num_incrementers; ++p) procs.push_back(p);
  for (int round = 0; round < 400; ++round) {
    std::vector<ProcId> active;
    for (const ProcId p : procs) {
      if (sys.active(p)) active.push_back(p);
    }
    if (active.empty()) break;
    const auto r = adversary::lemma_one_round(sys, active);
    EXPECT_LE(r.knowledge_after,
              5 * std::max<std::size_t>(r.knowledge_before, 1))
        << "round " << round;
  }
}

}  // namespace
}  // namespace ruco::sim

namespace ruco::simalgos {
namespace {

TEST(KcasCounter, CountsSequentially) {
  sim::Program prog;
  SimKcasCounter counter{prog, 4};
  prog.add_process([&counter](sim::Ctx& ctx) -> sim::Op {
    for (int i = 0; i < 5; ++i) co_await counter.increment(ctx);
    co_return co_await counter.read(ctx);
  });
  sim::System sys{prog};
  sim::run_solo(sys, 0, 1000);
  EXPECT_EQ(sys.result(0), 5);
}

TEST(KcasCounter, SoloIncrementIsThreeSteps) {
  // Below Theorem 1's frontier -- which is fine, 2-CAS is outside the
  // model (the same caveat as fetch_add in the production layer).
  sim::Program prog;
  SimKcasCounter counter{prog, 4};
  prog.add_process(
      [&counter](sim::Ctx& ctx) { return counter.increment(ctx); });
  sim::System sys{prog};
  sim::run_solo(sys, 0, 100);
  EXPECT_EQ(sys.steps_taken(0), 3u);
}

TEST(KcasCounter, LinearizableUnderRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto bundle = make_kcas_counter_program(8);
    sim::System sys{bundle.program};
    sim::run_random(sys, seed, 1u << 22);
    ASSERT_TRUE(sim::all_done(sys)) << "seed " << seed;
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()), lincheck::CounterSpec{});
    ASSERT_TRUE(res.decided);
    EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.message;
  }
}

TEST(KcasCounter, AdversaryStarvesToLinearRounds) {
  // The punchline: the wait-free f-array finishes in Theta(log N) rounds;
  // the lock-free 2-CAS counter needs Theta(N) rounds because the
  // adversary lets exactly one k-CAS win per attempt wave.
  const auto kcas = adversary::run_counter_adversary(
      make_kcas_counter_program(64));
  const auto farray = adversary::run_counter_adversary(
      make_farray_counter_program(64));
  EXPECT_TRUE(kcas.reader_correct);
  EXPECT_GE(kcas.rounds, 63u) << "at least one wave per incrementer";
  EXPECT_GT(kcas.rounds, 2 * farray.rounds)
      << "starvable despite the stronger primitive";
  EXPECT_GE(kcas.max_increment_steps, 3u * 60u)
      << "some process retried nearly every wave";
}

}  // namespace
}  // namespace ruco::simalgos
