// Iterative context bounding in the model checker: schedule-count
// semantics, subset relation to full exploration, and the headline use --
// finding the printed Algorithm A's linearizability gap *automatically*
// with a single preemption, on a program far beyond the unbounded
// checker's reach.
#include <gtest/gtest.h>

#include <memory>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/sim_max_registers.h"

namespace ruco::sim {
namespace {

Program two_writers_one_object(int steps_each) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 2; ++p) {
    prog.add_process([o, steps_each](Ctx& ctx) -> Op {
      for (int i = 0; i < steps_each; ++i) co_await ctx.write(o, i);
      co_return 0;
    });
  }
  return prog;
}

TEST(BoundedCheck, BoundZeroIsProcessOrderings) {
  // No preemptions: each process runs to completion; the only choice is
  // the order -- 2 processes => 2 schedules.
  const Program prog = two_writers_one_object(4);
  ModelCheckOptions options;
  options.preemption_bound = 0;
  const auto result =
      model_check(prog, [](const System&) { return ""; }, options);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.executions, 2u);
  EXPECT_FALSE(result.exhaustive) << "bounded search reports non-exhaustive";
}

TEST(BoundedCheck, ScheduleCountGrowsWithBound) {
  const Program prog = two_writers_one_object(4);
  std::uint64_t prev = 0;
  for (const std::uint32_t bound : {0u, 1u, 2u, 3u}) {
    ModelCheckOptions options;
    options.preemption_bound = bound;
    const auto result =
        model_check(prog, [](const System&) { return ""; }, options);
    EXPECT_GT(result.executions, prev) << "bound " << bound;
    prev = result.executions;
  }
  // Large bound == classic exhaustive count: C(8,4) = 70.
  const auto full = model_check(prog, [](const System&) { return ""; });
  EXPECT_EQ(full.executions, 70u);
  ModelCheckOptions options;
  options.preemption_bound = 7;  // >= steps: every schedule reachable
  const auto result =
      model_check(prog, [](const System&) { return ""; }, options);
  EXPECT_EQ(result.executions, full.executions);
}

TEST(BoundedCheck, FindsPaperGapWithOnePreemption) {
  // Two writers of the SAME operand + a reader over the printed Algorithm
  // A.  Unbounded exploration of this program is astronomically large
  // (writers take ~30 steps each); with one preemption the checker finds
  // the early-return violation in well under a second.
  Program prog;
  auto reg = std::make_shared<simalgos::SimTreeMaxRegister>(
      prog, 4, maxreg::Faithfulness::kAsPrinted);
  for (int w = 0; w < 2; ++w) {
    prog.add_process([reg](Ctx& ctx) -> Op {
      ctx.mark_invoke("WriteMax", 1);
      co_await reg->write_max(ctx, 1);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](Ctx& ctx) -> Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value v = co_await reg->read_max(ctx);
    ctx.mark_return(v);
    co_return v;
  });
  const auto verdict = [](const System& sys) -> std::string {
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    if (!res.decided) return "undecided";
    return res.linearizable ? "" : "non-linearizable execution";
  };
  ModelCheckOptions options;
  options.preemption_bound = 1;
  const auto result = model_check(prog, verdict, options);
  EXPECT_FALSE(result.ok) << "the gap needs exactly one preemption";
  EXPECT_EQ(result.message, "non-linearizable execution");
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(BoundedCheck, FixedVariantSurvivesOnePreemption) {
  Program prog;
  auto reg = std::make_shared<simalgos::SimTreeMaxRegister>(
      prog, 4, maxreg::Faithfulness::kHelpOnDuplicate);
  for (int w = 0; w < 2; ++w) {
    prog.add_process([reg](Ctx& ctx) -> Op {
      ctx.mark_invoke("WriteMax", 1);
      co_await reg->write_max(ctx, 1);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](Ctx& ctx) -> Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value v = co_await reg->read_max(ctx);
    ctx.mark_return(v);
    co_return v;
  });
  const auto verdict = [](const System& sys) -> std::string {
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    if (!res.decided) return "undecided";
    return res.linearizable ? "" : "non-linearizable execution";
  };
  ModelCheckOptions options;
  options.preemption_bound = 1;
  const auto result = model_check(prog, verdict, options);
  EXPECT_TRUE(result.ok) << result.message << "\n"
                         << render_schedule(prog, result.counterexample);
  EXPECT_GT(result.executions, 100u);
}

TEST(BoundedCheck, PropagateOnceNeedsTwoPreemptions) {
  // The other design ablation has bug depth 2 (the early-return gap has
  // depth 1): the losing CAS owner must be preempted once mid-propagation
  // AND the winner must have read the children before the loser's leaf
  // write -- two ordering constraints.  Bound 1 finds nothing; bound 2
  // finds the violation.
  Program prog;
  auto reg = std::make_shared<simalgos::SimTreeMaxRegister>(
      prog, 4, maxreg::Faithfulness::kHelpOnDuplicate, 1);
  for (Value v = 1; v <= 2; ++v) {
    prog.add_process([reg, v](Ctx& ctx) -> Op {
      ctx.mark_invoke("WriteMax", v);
      co_await reg->write_max(ctx, v);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](Ctx& ctx) -> Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value v = co_await reg->read_max(ctx);
    ctx.mark_return(v);
    co_return v;
  });
  const auto verdict = [](const System& sys) -> std::string {
    const auto res = lincheck::check_linearizable(
        lincheck::from_sim_history(sys.history()),
        lincheck::MaxRegisterSpec{});
    if (!res.decided) return "undecided";
    return res.linearizable ? "" : "non-linearizable execution";
  };
  ModelCheckOptions options;
  options.preemption_bound = 1;
  const auto at_one = model_check(prog, verdict, options);
  EXPECT_TRUE(at_one.ok) << "depth-2 bug invisible at bound 1";
  options.preemption_bound = 2;
  const auto at_two = model_check(prog, verdict, options);
  EXPECT_FALSE(at_two.ok) << "bound 2 must expose the lost write";
}

}  // namespace
}  // namespace ruco::sim
