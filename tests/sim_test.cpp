// The simulated shared-memory system: primitive semantics, enabled-event
// inspection, trace recording, the awareness/familiarity tracker
// (Definitions 1-4), erasure + replay (Lemma 2 / Claim 1), offline
// recomputation, schedulers, and the model checker.
#include <gtest/gtest.h>

#include <vector>

#include "ruco/sim/awareness.h"
#include "ruco/sim/event.h"
#include "ruco/sim/model_checker.h"
#include "ruco/sim/op.h"
#include "ruco/sim/proc_set.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"

namespace ruco::sim {
namespace {

// ------------------------------------------------------------- ProcSet

TEST(ProcSet, AddRemoveContains) {
  ProcSet s{130};
  EXPECT_TRUE(s.empty());
  s.add(0);
  s.add(64);
  s.add(129);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(129));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.count(), 3u);
  s.remove(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.count(), 2u);
}

TEST(ProcSet, UniteAndIntersect) {
  ProcSet a{100};
  ProcSet b{100};
  a.add(1);
  a.add(50);
  b.add(50);
  b.add(99);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.intersection(b), std::vector<ProcId>{50});
  a.unite(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.members(), (std::vector<ProcId>{1, 50, 99}));
}

TEST(ProcSet, DisjointDoNotIntersect) {
  ProcSet a{10};
  ProcSet b{10};
  a.add(1);
  b.add(2);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersection(b).empty());
}

// --------------------------------------------------------- primitives

Op write_then_read(Ctx& ctx, ObjectId o, Value v, Value* out) {
  co_await ctx.write(o, v);
  *out = co_await ctx.read(o);
  co_return *out;
}

TEST(System, WriteThenReadRoundTrip) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  Value seen = -1;
  prog.add_process(
      [o, &seen](Ctx& ctx) { return write_then_read(ctx, o, 42, &seen); });
  System sys{prog};
  EXPECT_TRUE(sys.active(0));
  run_solo(sys, 0, 100);
  EXPECT_TRUE(sys.done(0));
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(sys.result(0), 42);
  EXPECT_EQ(sys.value(o), 42);
  EXPECT_EQ(sys.steps_taken(0), 2u);
}

Op single_cas(Ctx& ctx, ObjectId o, Value expected, Value desired) {
  co_return co_await ctx.cas(o, expected, desired);
}

TEST(System, CasSucceedsOnMatch) {
  Program prog;
  const ObjectId o = prog.add_object(5);
  prog.add_process([o](Ctx& ctx) { return single_cas(ctx, o, 5, 9); });
  System sys{prog};
  run_solo(sys, 0, 10);
  EXPECT_EQ(sys.result(0), 1);
  EXPECT_EQ(sys.value(o), 9);
  EXPECT_TRUE(sys.trace().back().changed);
}

TEST(System, CasFailsOnMismatch) {
  Program prog;
  const ObjectId o = prog.add_object(5);
  prog.add_process([o](Ctx& ctx) { return single_cas(ctx, o, 4, 9); });
  System sys{prog};
  run_solo(sys, 0, 10);
  EXPECT_EQ(sys.result(0), 0);
  EXPECT_EQ(sys.value(o), 5);
  EXPECT_FALSE(sys.trace().back().changed);
}

TEST(System, CasToSameValueIsTrivial) {
  Program prog;
  const ObjectId o = prog.add_object(5);
  prog.add_process([o](Ctx& ctx) { return single_cas(ctx, o, 5, 5); });
  System sys{prog};
  run_solo(sys, 0, 10);
  EXPECT_EQ(sys.result(0), 1) << "CAS reports success";
  EXPECT_FALSE(sys.trace().back().changed) << "but the event is trivial";
}

TEST(System, EnabledEventIsInspectableBeforeStepping) {
  Program prog;
  const ObjectId o = prog.add_object(7);
  prog.add_process([o](Ctx& ctx) { return single_cas(ctx, o, 7, 8); });
  System sys{prog};
  const Pending* pending = sys.enabled(0);
  ASSERT_NE(pending, nullptr);
  EXPECT_EQ(pending->obj, o);
  EXPECT_EQ(pending->prim, Prim::kCas);
  EXPECT_EQ(pending->expected, 7);
  EXPECT_EQ(pending->arg, 8);
  EXPECT_TRUE(sys.pending_would_change(0));
  sys.step(0);
  EXPECT_EQ(sys.enabled(0), nullptr);
  EXPECT_FALSE(sys.step(0)) << "completed processes are not steppable";
}

TEST(System, PendingWouldChangeTracksCurrentValue) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return single_cas(ctx, o, 0, 1); });
  prog.add_process(
      [o](Ctx& ctx) -> Op { co_await ctx.write(o, 1); co_return 0; });
  System sys{prog};
  EXPECT_TRUE(sys.pending_would_change(0));
  EXPECT_TRUE(sys.pending_would_change(1));
  sys.step(1);  // o becomes 1
  EXPECT_FALSE(sys.pending_would_change(0)) << "CAS expected 0, now stale";
}

TEST(System, TraceRecordsEverything) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([a, b](Ctx& ctx) -> Op {
    co_await ctx.write(a, 1);
    (void)co_await ctx.read(b);
    (void)co_await ctx.cas(b, 0, 2);
    co_return 0;
  });
  System sys{prog};
  run_solo(sys, 0, 10);
  ASSERT_EQ(sys.trace().size(), 3u);
  EXPECT_EQ(sys.trace()[0].prim, Prim::kWrite);
  EXPECT_EQ(sys.trace()[1].prim, Prim::kRead);
  EXPECT_EQ(sys.trace()[2].prim, Prim::kCas);
  EXPECT_EQ(sys.trace()[0].obj, a);
  EXPECT_EQ(sys.trace()[1].obj, b);
  EXPECT_TRUE(sys.trace()[2].changed);
}

TEST(System, NestedOpsPropagateSuspension) {
  // An op awaiting a sub-op must surface the sub-op's primitives one at a
  // time, exactly like inline code.
  Program prog;
  const ObjectId o = prog.add_object(3);
  prog.add_process([o](Ctx& ctx) -> Op {
    Value twice = 0;
    {
      Value once = co_await [](Ctx& c, ObjectId obj) -> Op {
        co_return co_await c.read(obj);
      }(ctx, o);
      twice = once * 2;
    }
    co_await ctx.write(o, twice);
    co_return twice;
  });
  System sys{prog};
  EXPECT_EQ(sys.enabled(0)->prim, Prim::kRead);
  sys.step(0);
  EXPECT_EQ(sys.enabled(0)->prim, Prim::kWrite);
  EXPECT_EQ(sys.enabled(0)->arg, 6);
  sys.step(0);
  EXPECT_TRUE(sys.done(0));
  EXPECT_EQ(sys.result(0), 6);
}

TEST(System, HistoryMarksCarryTimestamps) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    ctx.mark_invoke("Write", 5);
    co_await ctx.write(o, 5);
    ctx.mark_return(0);
    co_return 0;
  });
  System sys{prog};
  run_solo(sys, 0, 10);
  ASSERT_EQ(sys.history().size(), 2u);
  EXPECT_EQ(sys.history()[0].kind, HistoryEvent::Kind::kInvoke);
  EXPECT_EQ(sys.history()[1].kind, HistoryEvent::Kind::kReturn);
  EXPECT_LT(sys.history()[0].time, sys.history()[1].time);
}

// ----------------------------------------- awareness and familiarity

Op write_one(Ctx& ctx, ObjectId o, Value v) {
  co_await ctx.write(o, v);
  co_return 0;
}
Op read_one(Ctx& ctx, ObjectId o) { co_return co_await ctx.read(o); }

TEST(Awareness, ReaderLearnsOfWriter) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 1); });
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  System sys{prog};
  EXPECT_EQ(sys.awareness(1).count(), 1u) << "initially self-aware only";
  sys.step(0);  // p0 writes -> o familiar with p0
  EXPECT_TRUE(sys.familiarity(o).contains(0));
  sys.step(1);  // p1 reads -> p1 aware of p0
  EXPECT_TRUE(sys.awareness(1).contains(0));
  EXPECT_FALSE(sys.awareness(0).contains(1)) << "writes learn nothing";
}

TEST(Awareness, ReadBeforeWriteLearnsNothing) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 1); });
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  System sys{prog};
  sys.step(1);  // read first
  sys.step(0);  // write after
  EXPECT_FALSE(sys.awareness(1).contains(0));
}

TEST(Awareness, TransitiveThroughIntermediary) {
  // p0 writes a; p1 reads a (learns p0) then writes b; p2 reads b and must
  // transitively learn of p0 (Definition 2 case 2).
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([a](Ctx& ctx) { return write_one(ctx, a, 1); });
  prog.add_process([a, b](Ctx& ctx) -> Op {
    (void)co_await ctx.read(a);
    co_await ctx.write(b, 2);
    co_return 0;
  });
  prog.add_process([b](Ctx& ctx) { return read_one(ctx, b); });
  System sys{prog};
  sys.step(0);
  sys.step(1);
  sys.step(1);
  sys.step(2);
  EXPECT_TRUE(sys.awareness(2).contains(0)) << "transitive flow p0->p1->p2";
  EXPECT_TRUE(sys.awareness(2).contains(1));
}

TEST(Awareness, TrivialWriteIsInvisible) {
  Program prog;
  const ObjectId o = prog.add_object(7);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 7); });  // same
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  System sys{prog};
  sys.step(0);
  EXPECT_FALSE(sys.familiarity(o).contains(0)) << "no change, no trace";
  sys.step(1);
  EXPECT_FALSE(sys.awareness(1).contains(0));
}

TEST(Awareness, FailedCasStillObserves) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 3); });
  prog.add_process([o](Ctx& ctx) { return single_cas(ctx, o, 0, 9); });
  System sys{prog};
  sys.step(0);
  sys.step(1);  // CAS fails (expected 0, found 3) but reads the object
  EXPECT_EQ(sys.result(1), 0);
  EXPECT_TRUE(sys.awareness(1).contains(0));
  EXPECT_FALSE(sys.familiarity(o).contains(1)) << "failed CAS is invisible";
}

TEST(Awareness, SuccessfulCasIsVisibleAndObserves) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return single_cas(ctx, o, 0, 9); });
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  System sys{prog};
  sys.step(0);
  EXPECT_TRUE(sys.familiarity(o).contains(0));
  sys.step(1);
  EXPECT_TRUE(sys.awareness(1).contains(0));
}

TEST(Awareness, OverwrittenWriteIsRetracted) {
  // Definition 1's second clause: p0's write is immediately overwritten by
  // p1 before anyone (including p0) observes it -> invisible, and o ends up
  // familiar only with p1.
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 1); });
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 2); });
  System sys{prog};
  sys.step(0);
  EXPECT_TRUE(sys.familiarity(o).contains(0));
  sys.step(1);
  EXPECT_FALSE(sys.familiarity(o).contains(0)) << "hidden by overwrite";
  EXPECT_TRUE(sys.familiarity(o).contains(1));
}

TEST(Awareness, InterveningReadBlocksRetraction) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 1); });
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 2); });
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  System sys{prog};
  sys.step(0);
  sys.step(2);  // someone observed p0's write
  sys.step(1);
  EXPECT_TRUE(sys.familiarity(o).contains(0)) << "observed writes stay";
  EXPECT_TRUE(sys.familiarity(o).contains(1));
}

TEST(Awareness, IssuerStepBlocksRetraction) {
  // p0 writes o then steps elsewhere; a later overwrite of o no longer
  // hides p0's write (Definition 1 requires the issuer to take no steps).
  Program prog;
  const ObjectId o = prog.add_object(0);
  const ObjectId other = prog.add_object(0);
  prog.add_process([o, other](Ctx& ctx) -> Op {
    co_await ctx.write(o, 1);
    (void)co_await ctx.read(other);
    co_return 0;
  });
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 2); });
  System sys{prog};
  sys.step(0);  // write o
  sys.step(0);  // read other (issuer stepped)
  sys.step(1);  // overwrite o
  EXPECT_TRUE(sys.familiarity(o).contains(0));
}

TEST(Awareness, WriteChainKeepsOnlyLastVisible) {
  // Lemma 1's sigma_2 argument: consecutive unobserved writes leave only
  // the final writer in the familiarity set.
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (Value v = 1; v <= 4; ++v) {
    prog.add_process([o, v](Ctx& ctx) { return write_one(ctx, o, v); });
  }
  System sys{prog};
  for (ProcId p = 0; p < 4; ++p) sys.step(p);
  EXPECT_EQ(sys.familiarity(o).count(), 1u);
  EXPECT_TRUE(sys.familiarity(o).contains(3));
}

TEST(Awareness, MaxKnowledgeTracksLargestSet) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 1); });
  prog.add_process([o](Ctx& ctx) -> Op {
    (void)co_await ctx.read(o);
    co_await ctx.write(o, 2);
    co_return 0;
  });
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  System sys{prog};
  EXPECT_EQ(sys.max_knowledge(), 1u);
  sys.step(0);           // F(o) = {0}
  sys.step(1);           // AW(1) = {0,1}
  sys.step(1);           // F(o) = {0,1} (overwrite retracts, then adds AW(1))
  sys.step(2);           // AW(2) = {0,1,2}
  EXPECT_EQ(sys.max_knowledge(), 3u);
}

// ------------------------------------- offline recomputation (Defs 1-4)

TEST(OfflineKnowledge, MatchesOnlineOnSimpleFlows) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([a](Ctx& ctx) { return write_one(ctx, a, 1); });
  prog.add_process([a, b](Ctx& ctx) -> Op {
    (void)co_await ctx.read(a);
    co_await ctx.write(b, 2);
    co_return 0;
  });
  prog.add_process([b](Ctx& ctx) { return read_one(ctx, b); });
  System sys{prog};
  run_round_robin(sys, 100);
  const auto offline =
      recompute_knowledge(sys.trace(), sys.num_processes(), sys.num_objects());
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    EXPECT_EQ(offline.awareness[p], sys.awareness(p)) << "p" << p;
  }
  for (ObjectId o = 0; o < sys.num_objects(); ++o) {
    EXPECT_EQ(offline.familiarity[o], sys.familiarity(o)) << "o" << o;
  }
}

TEST(OfflineKnowledge, LiteralTrivialWriteHiding) {
  // Online keeps the first writer's contribution when a *trivial* write
  // lands on top (conservative); the literal Definition 1 hides it.  The
  // offline pass implements the literal rule: offline subset-of online.
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 5); });
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 5); });  // same v
  System sys{prog};
  sys.step(0);
  sys.step(1);
  EXPECT_TRUE(sys.familiarity(o).contains(0)) << "online: conservative";
  const auto offline =
      recompute_knowledge(sys.trace(), sys.num_processes(), sys.num_objects());
  EXPECT_FALSE(offline.familiarity[o].contains(0)) << "literal Def. 1";
}

TEST(OfflineKnowledge, FirstAwareIndex) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 1); });
  prog.add_process([o](Ctx& ctx) -> Op {
    (void)co_await ctx.read(o);  // event 1: becomes aware of p0
    (void)co_await ctx.read(o);  // event 2
    co_return 0;
  });
  System sys{prog};
  sys.step(0);
  sys.step(1);
  sys.step(1);
  const auto first =
      first_aware_index(sys.trace(), sys.num_processes(), sys.num_objects(), 0);
  EXPECT_EQ(first[0], 0u) << "a process is aware of itself at its 1st event";
  EXPECT_EQ(first[1], 1u);
}

// ------------------------------------------- erasure + replay (Lemma 2)

TEST(Erasure, RemovingUnobservedProcessReplays) {
  Program prog;
  const ObjectId a = prog.add_object(0);
  const ObjectId b = prog.add_object(0);
  prog.add_process([a](Ctx& ctx) { return write_one(ctx, a, 1); });
  prog.add_process([b](Ctx& ctx) -> Op {  // touches only b: hidden from p0
    co_await ctx.write(b, 2);
    co_return co_await ctx.read(b);
  });
  System sys{prog};
  run_round_robin(sys, 100);
  std::vector<bool> erase(2, false);
  erase[1] = true;
  const Trace kept = erase_processes(sys.trace(), erase);
  EXPECT_EQ(kept.size(), 1u);
  System fresh{prog};
  const auto replay = replay_trace(fresh, kept, /*check_responses=*/true);
  EXPECT_TRUE(replay.ok) << replay.message;
}

TEST(Erasure, RemovingObservedProcessBreaksReplay) {
  // p1 read p0's write; erasing p0 alone changes p1's response -> the
  // filtered trace is NOT an execution, and replay detects it.
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 42); });
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  System sys{prog};
  sys.step(0);
  sys.step(1);
  ASSERT_EQ(sys.result(1), 42);
  std::vector<bool> erase(2, false);
  erase[0] = true;
  const Trace kept = erase_processes(sys.trace(), erase);
  System fresh{prog};
  const auto replay = replay_trace(fresh, kept, /*check_responses=*/true);
  EXPECT_FALSE(replay.ok) << "p1 must observe a different value";
}

TEST(Erasure, EraseAwareOfImplementsTheorem1Cut) {
  // Theorem 1 / Lemma 3's construction: erase pi plus every suffix of
  // events aware of pi; what remains replays cleanly.
  Program prog;
  const ObjectId o = prog.add_object(0);
  const ObjectId side = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 42); });
  prog.add_process([o, side](Ctx& ctx) -> Op {
    co_await ctx.write(side, 1);   // before learning of p0: kept
    (void)co_await ctx.read(o);    // learns of p0: cut from here
    co_await ctx.write(side, 2);   // dropped
    co_return 0;
  });
  System sys{prog};
  sys.step(1);
  sys.step(0);
  sys.step(1);
  sys.step(1);
  const Trace cut =
      erase_aware_of(sys.trace(), sys.num_processes(), sys.num_objects(), 0);
  ASSERT_EQ(cut.size(), 1u) << "only p1's first write survives";
  EXPECT_EQ(cut[0].obj, side);
  System fresh{prog};
  EXPECT_TRUE(replay_trace(fresh, cut, true).ok);
}

// ----------------------------------------------------------- schedulers

TEST(Schedulers, SoloRunsToCompletion) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    for (int i = 0; i < 5; ++i) co_await ctx.write(o, i);
    co_return 0;
  });
  System sys{prog};
  EXPECT_EQ(run_solo(sys, 0, 100), 5u);
  EXPECT_TRUE(all_done(sys));
}

TEST(Schedulers, RandomIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Program prog;
    const ObjectId o = prog.add_object(0);
    for (int p = 0; p < 3; ++p) {
      prog.add_process([o, p](Ctx& ctx) -> Op {
        for (int i = 0; i < 4; ++i) co_await ctx.write(o, p * 10 + i);
        co_return 0;
      });
    }
    System sys{prog};
    run_random(sys, seed, 1000);
    std::vector<ProcId> order;
    for (const auto& e : sys.trace()) order.push_back(e.proc);
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Schedulers, ScriptFollowsExactly) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 2; ++p) {
    prog.add_process([o](Ctx& ctx) -> Op {
      co_await ctx.write(o, 1);
      co_await ctx.write(o, 2);
      co_return 0;
    });
  }
  System sys{prog};
  const std::vector<ProcId> script{1, 0, 0, 1};
  EXPECT_EQ(run_script(sys, script), 4u);
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(sys.trace()[i].proc, script[i]);
  }
}

TEST(Schedulers, RoundRobinRespectsBudget) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 2; ++p) {
    prog.add_process([o](Ctx& ctx) -> Op {
      for (int i = 0; i < 100; ++i) co_await ctx.write(o, i);
      co_return 0;
    });
  }
  System sys{prog};
  EXPECT_EQ(run_round_robin(sys, 17), 17u);
  EXPECT_FALSE(all_done(sys));
}

// -------------------------------------------------------- model checker

TEST(ModelChecker, CountsInterleavings) {
  // Two processes, two steps each: C(4,2) = 6 schedules.
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 2; ++p) {
    prog.add_process([o](Ctx& ctx) -> Op {
      co_await ctx.write(o, 1);
      co_await ctx.write(o, 2);
      co_return 0;
    });
  }
  const auto result = model_check(prog, [](const System&) { return ""; });
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.exhaustive);
  EXPECT_EQ(result.executions, 6u);
}

TEST(ModelChecker, FindsCounterexample) {
  // Verdict rejects executions where p1's read missed p0's write; some
  // interleavings do that, and the checker must surface one.
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) { return write_one(ctx, o, 1); });
  prog.add_process([o](Ctx& ctx) { return read_one(ctx, o); });
  const auto result = model_check(prog, [](const System& sys) {
    return sys.result(1) == 1 ? "" : "read missed the write";
  });
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.message, "read missed the write");
  ASSERT_FALSE(result.counterexample.empty());
  EXPECT_EQ(result.counterexample[0], 1u) << "reader scheduled first";
  EXPECT_FALSE(render_schedule(prog, result.counterexample).empty());
}

TEST(ModelChecker, BudgetCutsExploration) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 3; ++p) {
    prog.add_process([o](Ctx& ctx) -> Op {
      for (int i = 0; i < 3; ++i) co_await ctx.write(o, i);
      co_return 0;
    });
  }
  ModelCheckOptions options;
  options.max_executions = 10;
  const auto result =
      model_check(prog, [](const System&) { return ""; }, options);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.exhaustive);
  EXPECT_EQ(result.executions, 10u);
}

}  // namespace
}  // namespace ruco::sim
