// Golden step counts: exact shared-memory event counts for representative
// operations, pinned so constant-factor regressions (an extra read in a
// hot loop, a lost early-out) fail loudly instead of silently shifting the
// benchmarks.  These are *exact* values of the current algorithms -- when
// an intentional change shifts one, update it deliberately and note why.
#include <gtest/gtest.h>

#include "ruco/ruco.h"

namespace ruco {
namespace {

template <typename F>
std::uint64_t steps(F&& f) {
  runtime::StepScope scope;
  f();
  return scope.taken();
}

TEST(GoldenSteps, TreeMaxRegisterWrites) {
  // N = 16; fresh register per case.  Conditional refresh (see
  // ruco/maxreg/propagate.h): solo, every first-round CAS wins and prunes
  // the second round, so a level costs 4 events (node + 2 children + CAS)
  // instead of the paper-literal 8.  Total = 1 root-fastpath read + 2 leaf
  // events + 4 x depth.
  {
    maxreg::TreeMaxRegister r{16};
    EXPECT_EQ(steps([&] { r.write_max(0, 0); }), 11u);  // leaf 0: depth 2
  }
  {
    maxreg::TreeMaxRegister r{16};
    EXPECT_EQ(steps([&] { r.write_max(0, 1); }), 19u);  // depth 4
  }
  {
    maxreg::TreeMaxRegister r{16};
    EXPECT_EQ(steps([&] { r.write_max(0, 15); }), 23u);  // last B1 leaf
  }
  {
    maxreg::TreeMaxRegister r{16};
    EXPECT_EQ(steps([&] { r.write_max(3, 100); }), 23u);  // TR leaf: depth 5
  }
  {
    // Duplicate operand with the root already covering it: the root-check
    // fast path returns after a single read (was a full helping
    // propagation before the fast path).
    maxreg::TreeMaxRegister r{16};
    r.write_max(0, 5);
    EXPECT_EQ(steps([&] { r.write_max(1, 5); }), 1u);
  }
  {
    maxreg::TreeMaxRegister r{16};
    EXPECT_EQ(steps([&] { (void)r.read_max(0); }), 1u);
  }
}

TEST(GoldenSteps, AacMaxRegister) {
  // M = 1024 (10 levels): reads 11 (any_write + 10 switches); writes 11
  // for both the all-left and all-right extremes (10 switch ops +
  // any_write).
  maxreg::AacMaxRegister r{1024};
  EXPECT_EQ(steps([&] { r.write_max(0, 0); }), 11u);
  EXPECT_EQ(steps([&] { r.write_max(0, 1023); }), 11u);
  EXPECT_EQ(steps([&] { (void)r.read_max(0); }), 11u);
}

TEST(GoldenSteps, UnboundedAacMaxRegister) {
  maxreg::UnboundedAacMaxRegister r{20};
  EXPECT_EQ(steps([&] { r.write_max(0, 0); }), 2u);  // spine check + group 0
  EXPECT_EQ(steps([&] { r.write_max(0, 1000); }), 20u);  // group 9
  EXPECT_EQ(steps([&] { (void)r.read_max(0); }), 20u);
}

TEST(GoldenSteps, Counters) {
  {
    counter::FArrayCounter c{64};  // 6 levels x 4 (conditional) + leaf write
    EXPECT_EQ(steps([&] { c.increment(9); }), 25u);
    EXPECT_EQ(steps([&] { (void)c.read(0); }), 1u);
  }
  {
    counter::MaxRegCounter c{16, 255};  // U = 255: 8-level registers
    EXPECT_EQ(steps([&] { c.increment(0); }), 70u);
    EXPECT_EQ(steps([&] { (void)c.read(1); }), 9u);
  }
  {
    counter::UnboundedMaxRegCounter c{16};
    c.increment(0);
    EXPECT_EQ(steps([&] { c.increment(0); }), 35u);  // count = 2: tiny logs
    EXPECT_EQ(steps([&] { (void)c.read(1); }), 4u);
  }
  {
    counter::FetchAddCounter c;
    EXPECT_EQ(steps([&] { c.increment(0); }), 1u);
    EXPECT_EQ(steps([&] { (void)c.read(0); }), 1u);
  }
}

TEST(GoldenSteps, Snapshots) {
  {
    snapshot::FArraySnapshot s{32};  // 5 levels x 4 (conditional) + leaf write
    EXPECT_EQ(steps([&] { s.update(7, 3); }), 21u);
    EXPECT_EQ(steps([&] { (void)s.scan(0); }), 1u);
  }
  {
    snapshot::AfekSnapshot s{12};
    EXPECT_EQ(steps([&] { s.update(0, 1); }), 25u);  // embedded scan + write
    EXPECT_EQ(steps([&] { (void)s.scan(1); }), 24u);
  }
  {
    snapshot::DoubleCollectSnapshot s{12};
    EXPECT_EQ(steps([&] { s.update(0, 1); }), 1u);
    EXPECT_EQ(steps([&] { (void)s.scan(1); }), 24u);
  }
}

TEST(GoldenSteps, FArrayNoChangeSkipsCas) {
  // Writing the value a slot already holds leaves every path node's
  // aggregate unchanged, so conditional refresh skips all CASes: 1 leaf
  // write + 3 reads per level (node + 2 children, no CAS).
  farray::SumFArray a{8, 0};  // 3 levels
  a.update(0, 5);
  EXPECT_EQ(steps([&] { a.update(0, 5); }), 10u);
}

TEST(GoldenSteps, SoftwareMcas) {
  kcas::McasArray a{4, 0, 2};
  // 2-word MCAS, uncontended: status load + 2 x (RDCSS cas + complete's
  // control load + complete's cas) + status cas + status load + 2 release
  // CASes = 11 cell/status events.
  EXPECT_EQ(steps([&] {
              (void)a.mcas(0, {kcas::McasWord{0, 0, 1},
                               kcas::McasWord{2, 0, 1}});
            }),
            11u);
  EXPECT_EQ(steps([&] { (void)a.read(0, 1); }), 1u);
}

}  // namespace
}  // namespace ruco
