// Edge cases of the simulation runtime: exception propagation out of
// coroutines, System teardown with suspended coroutines, zero-step bodies,
// Op move semantics, many-object programs, and the markdown Table helper.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "ruco/core/table.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"

namespace ruco::sim {
namespace {

TEST(SimEdge, ExceptionInsideOpSurfacesAtStep) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    (void)co_await ctx.read(o);
    throw std::runtime_error{"algorithm bug"};
  });
  System sys{prog};
  EXPECT_THROW(sys.step(0), std::runtime_error);
}

TEST(SimEdge, ExceptionBeforeFirstSuspensionSurfacesAtConstruction) {
  Program prog;
  prog.add_process([](Ctx&) -> Op {
    throw std::logic_error{"broken body"};
    co_return 0;  // unreachable; makes the lambda a coroutine
  });
  EXPECT_THROW((System{prog}), std::logic_error);
}

TEST(SimEdge, ExceptionInNestedOpPropagatesThroughAwait) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    const Value v = co_await [](Ctx& c, ObjectId obj) -> Op {
      (void)co_await c.read(obj);
      throw std::runtime_error{"inner"};
    }(ctx, o);
    co_return v;
  });
  System sys{prog};
  EXPECT_THROW(sys.step(0), std::runtime_error);
}

TEST(SimEdge, ZeroStepBodyCompletesAtSpawn) {
  Program prog;
  prog.add_object(0);
  prog.add_process([](Ctx&) -> Op { co_return 42; });
  System sys{prog};
  EXPECT_TRUE(sys.done(0));
  EXPECT_EQ(sys.result(0), 42);
  EXPECT_FALSE(sys.step(0));
  EXPECT_TRUE(sys.trace().empty());
}

TEST(SimEdge, TeardownWithSuspendedCoroutinesIsClean) {
  // Destroying a System mid-execution must free every coroutine frame
  // (verified for real by the ASan/LSan build; here we just exercise it).
  Program prog;
  const ObjectId o = prog.add_object(0);
  for (int p = 0; p < 8; ++p) {
    prog.add_process([o](Ctx& ctx) -> Op {
      for (int i = 0; i < 100; ++i) co_await ctx.write(o, i);
      co_return 0;
    });
  }
  auto sys = std::make_unique<System>(prog);
  run_round_robin(*sys, 37);  // leave everyone suspended mid-op
  sys.reset();                // must not crash or leak
}

TEST(SimEdge, ManyObjectsManyProcesses) {
  Program prog;
  constexpr int kObjects = 2000;
  constexpr int kProcs = 300;
  std::vector<ObjectId> objs;
  objs.reserve(kObjects);
  for (int i = 0; i < kObjects; ++i) objs.push_back(prog.add_object(0));
  for (int p = 0; p < kProcs; ++p) {
    prog.add_process([&objs, p](Ctx& ctx) -> Op {
      co_await ctx.write(objs[p * 6 % kObjects], p);
      co_return co_await ctx.read(objs[(p * 6 + 3) % kObjects]);
    });
  }
  System sys{prog};
  run_round_robin(sys, 1u << 20);
  EXPECT_TRUE(all_done(sys));
  EXPECT_EQ(sys.trace().size(), 2u * kProcs);
}

TEST(SimEdge, ResultOfUnfinishedProcessIsAnError) {
  // result() on a live coroutine handle is meaningless; ruco surfaces the
  // promise's current value only after done().  Guard with active().
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op { co_return co_await ctx.read(o); });
  System sys{prog};
  ASSERT_TRUE(sys.active(0));
  sys.step(0);
  ASSERT_TRUE(sys.done(0));
  EXPECT_EQ(sys.result(0), 0);
}

TEST(SimEdge, StepCountsPerProcessAreIndependent) {
  Program prog;
  const ObjectId o = prog.add_object(0);
  prog.add_process([o](Ctx& ctx) -> Op {
    for (int i = 0; i < 3; ++i) co_await ctx.write(o, i);
    co_return 0;
  });
  prog.add_process([o](Ctx& ctx) -> Op {
    for (int i = 0; i < 7; ++i) (void)co_await ctx.read(o);
    co_return 0;
  });
  System sys{prog};
  run_round_robin(sys, 1000);
  EXPECT_EQ(sys.steps_taken(0), 3u);
  EXPECT_EQ(sys.steps_taken(1), 7u);
}

}  // namespace
}  // namespace ruco::sim

namespace ruco {
namespace {

TEST(Table, RendersAlignedMarkdown) {
  Table t{{"name", "value"}};
  t.add("x", 1);
  t.add("longer-name", 2.5);
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos) << s;
  EXPECT_NE(s.find("| x           | 1     |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer-name | 2.50  |"), std::string::npos) << s;
  EXPECT_NE(s.find("| ----------- | ----- |"), std::string::npos) << s;
}

TEST(Table, EmptyTableIsJustHeader) {
  Table t{{"a"}};
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str(), "| a |\n| - |\n");
}

TEST(Table, MixedCellTypes) {
  Table t{{"s", "i", "d", "b"}};
  t.add(std::string{"str"}, std::uint64_t{7}, 1.0 / 3.0, "yes");
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("0.33"), std::string::npos);
}

}  // namespace
}  // namespace ruco
