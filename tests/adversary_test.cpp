// The lower-bound constructions as runnable artifacts: Lemma 1's 3x
// knowledge-growth bound, the Theorem 1 counter adversary (round counts,
// familiarity bound, Lemma 3's reader awareness), and the Theorem 3
// essential-set adversary (hidden/supreme/step invariants, Lemma 4's size
// bound, erasure replays, Lemma 5/6 reader probe).
#include <gtest/gtest.h>

#include <cmath>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/adversary/lemma_one.h"
#include "ruco/adversary/maxreg_adversary.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"

namespace ruco::adversary {
namespace {

// ---------------------------------------------------------------- Lemma 1

TEST(LemmaOne, SingleRoundTriplesAtMost) {
  // Repeated rounds over the f-array counter: the bound M(E sigma) <=
  // 3 M(E) must hold at every round.
  auto bundle = simalgos::make_farray_counter_program(64);
  sim::System sys{bundle.program};
  std::vector<ProcId> procs;
  for (ProcId p = 0; p < bundle.num_incrementers; ++p) procs.push_back(p);
  for (int round = 0; round < 200; ++round) {
    std::vector<ProcId> active;
    for (const ProcId p : procs) {
      if (sys.active(p)) active.push_back(p);
    }
    if (active.empty()) break;
    const auto r = lemma_one_round(sys, active);
    EXPECT_TRUE(r.bound_held())
        << "round " << round << ": " << r.knowledge_before << " -> "
        << r.knowledge_after;
  }
}

TEST(LemmaOne, QuietRoundAddsNoFamiliarity) {
  // A round of pure reads leaves every familiarity set unchanged.
  sim::Program prog;
  const auto o = prog.add_object(0);
  for (int i = 0; i < 8; ++i) {
    prog.add_process([o](sim::Ctx& ctx) -> sim::Op {
      co_return co_await ctx.read(o);
    });
  }
  sim::System sys{prog};
  std::vector<ProcId> all;
  for (ProcId p = 0; p < 8; ++p) all.push_back(p);
  const auto r = lemma_one_round(sys, all);
  EXPECT_EQ(r.scheduled, 8u);
  EXPECT_EQ(sys.familiarity(o).count(), 0u);
  EXPECT_EQ(r.knowledge_after, 1u);
}

TEST(LemmaOne, WritePhaseLeavesOneVisibleWriter) {
  sim::Program prog;
  const auto o = prog.add_object(0);
  for (int i = 0; i < 8; ++i) {
    prog.add_process([o, i](sim::Ctx& ctx) -> sim::Op {
      co_await ctx.write(o, i + 1);
      co_return 0;
    });
  }
  sim::System sys{prog};
  std::vector<ProcId> all;
  for (ProcId p = 0; p < 8; ++p) all.push_back(p);
  lemma_one_round(sys, all);
  EXPECT_EQ(sys.familiarity(o).count(), 1u)
      << "Definition 1 hides every overwritten write";
}

TEST(LemmaOne, CasPhaseOneSuccessRestTrivial) {
  sim::Program prog;
  const auto o = prog.add_object(0);
  for (int i = 0; i < 8; ++i) {
    prog.add_process([o, i](sim::Ctx& ctx) -> sim::Op {
      co_return co_await ctx.cas(o, 0, i + 1);
    });
  }
  sim::System sys{prog};
  std::vector<ProcId> all;
  for (ProcId p = 0; p < 8; ++p) all.push_back(p);
  lemma_one_round(sys, all);
  int succeeded = 0;
  for (ProcId p = 0; p < 8; ++p) succeeded += (sys.result(p) == 1) ? 1 : 0;
  EXPECT_EQ(succeeded, 1) << "exactly the first scheduled CAS wins";
  EXPECT_EQ(sys.familiarity(o).count(), 1u);
}

// ------------------------------------------------------------- Theorem 1

class CounterAdversaryTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(CounterAdversaryTest, FArrayRoundsMeetTheLowerBound) {
  const std::uint32_t n = GetParam();
  const auto report =
      run_counter_adversary(simalgos::make_farray_counter_program(n));
  EXPECT_TRUE(report.knowledge_bound_held) << "M(E_j) <= 3^j must hold";
  EXPECT_TRUE(report.reader_correct)
      << "got " << report.reader_value << ", want " << n - 1;
  // Theorem 1 with f(N) = 1 (the f-array's O(1) read): some increment must
  // take >= log_3(N) steps, and since each round advances every active
  // process by one step, rounds >= log_3(N).
  const double bound = std::log(static_cast<double>(n)) / std::log(3.0);
  EXPECT_GE(static_cast<double>(report.rounds), bound) << "N=" << n;
  EXPECT_GE(static_cast<double>(report.max_increment_steps), bound);
  // Lemma 3: the reader must end up aware of every process.
  EXPECT_EQ(report.reader_awareness, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CounterAdversaryTest,
                         ::testing::Values(4, 9, 27, 81, 243));

TEST(CounterAdversary, MaxRegCounterSurvivesAdversary) {
  const auto report = run_counter_adversary(
      simalgos::make_maxreg_counter_program(27, 1 << 10));
  EXPECT_TRUE(report.knowledge_bound_held);
  EXPECT_TRUE(report.reader_correct);
  // AAC counter increments are Theta(log N log U) steps: strictly more
  // rounds than the f-array under the same adversary.
  const auto farray =
      run_counter_adversary(simalgos::make_farray_counter_program(27));
  EXPECT_GT(report.rounds, farray.rounds);
}

TEST(CounterAdversary, ReaderTouchesManyObjectsWhenReadIsCheap) {
  // The information argument: the f-array reader does 1 step, so the
  // *counter itself* must have funneled N processes' worth of awareness
  // into the root -- familiarity of the root is full.
  const auto report =
      run_counter_adversary(simalgos::make_farray_counter_program(81));
  EXPECT_EQ(report.reader_steps, 1u);
  EXPECT_EQ(report.reader_awareness, 81u)
      << "one read must deliver awareness of everyone (Lemma 3)";
}

// ------------------------------------------------------------- Theorem 3

void expect_all_iterations_sound(const MaxRegAdversaryReport& report) {
  EXPECT_TRUE(report.all_replays_ok) << report.stop_reason;
  EXPECT_TRUE(report.all_invariants_ok) << report.stop_reason;
  for (const auto& it : report.iterations) {
    EXPECT_TRUE(it.replay_ok) << "iter " << it.index << ": " << it.diagnostic;
    EXPECT_TRUE(it.invariants_ok)
        << "iter " << it.index << ": " << it.diagnostic;
    EXPECT_TRUE(it.size_bound_held())
        << "iter " << it.index << ": |E| " << it.essential_after << " vs m "
        << it.active_before;
  }
}

TEST(MaxRegAdversary, CasRegisterStretchedManyIterations) {
  MaxRegAdversaryOptions opts;
  opts.min_active = 8;
  opts.max_iterations = 40;
  const auto report =
      run_maxreg_adversary(simalgos::make_cas_maxreg_program(64), opts);
  expect_all_iterations_sound(report);
  EXPECT_TRUE(report.reader_ok);
  // The CAS loop reads O(1): Theorem 3 promises Omega(log log K)
  // iterations; the CAS register actually yields far more (one halted
  // writer per CAS round), so this is a very weak floor:
  EXPECT_GE(report.iterations_completed, 4u);
  EXPECT_GE(report.final_essential, 8u);
}

TEST(MaxRegAdversary, TreeRegisterInvariantsHold) {
  MaxRegAdversaryOptions opts;
  opts.min_active = 8;
  opts.max_iterations = 40;
  const auto report =
      run_maxreg_adversary(simalgos::make_tree_maxreg_program(128), opts);
  expect_all_iterations_sound(report);
  EXPECT_TRUE(report.reader_ok);
  EXPECT_GE(report.iterations_completed, 3u);
}

TEST(MaxRegAdversary, UnboundedAacInvariantsHold) {
  MaxRegAdversaryOptions opts;
  opts.min_active = 8;
  opts.max_iterations = 40;
  const auto report = run_maxreg_adversary(
      simalgos::make_unbounded_aac_maxreg_program(128), opts);
  expect_all_iterations_sound(report);
  EXPECT_TRUE(report.reader_ok);
}

TEST(MaxRegAdversary, AacRegisterInvariantsHold) {
  MaxRegAdversaryOptions opts;
  opts.min_active = 8;
  opts.max_iterations = 40;
  const auto report = run_maxreg_adversary(
      simalgos::make_aac_maxreg_program(128, 128), opts);
  expect_all_iterations_sound(report);
  EXPECT_TRUE(report.reader_ok);
}

TEST(MaxRegAdversary, PaperFloorRunsAtScale) {
  // With the Lemma 4 floor (m >= 81) honored, a K=4096 CAS register still
  // sustains several iterations -- every survivor's WriteMax stretched to
  // i* steps while staying hidden.
  MaxRegAdversaryOptions opts;
  opts.max_iterations = 24;
  const auto report =
      run_maxreg_adversary(simalgos::make_cas_maxreg_program(1024), opts);
  expect_all_iterations_sound(report);
  EXPECT_GE(report.iterations_completed, 6u);
  EXPECT_GE(report.final_essential, 81u);
}

TEST(MaxRegAdversary, EssentialSetDecayRespectsEquation4) {
  // |E_i| = Omega(K^(1/3^i)): check the per-iteration recurrence
  // |E_{i+1}| >= sqrt(m)/3 - 2 transitively gives the claimed decay.
  MaxRegAdversaryOptions opts;
  opts.min_active = 4;
  opts.max_iterations = 16;
  const auto report =
      run_maxreg_adversary(simalgos::make_tree_maxreg_program(256), opts);
  double lower = 255.0;  // |E_0| = K - 1
  for (const auto& it : report.iterations) {
    lower = std::max(0.0, std::sqrt(lower) / 3.0 - 2.0);
    EXPECT_GE(static_cast<double>(it.essential_after), lower)
        << "iteration " << it.index;
  }
}

TEST(MaxRegAdversary, HaltedProcessesStopSteppingButRemain) {
  MaxRegAdversaryOptions opts;
  opts.min_active = 4;
  opts.max_iterations = 12;
  const auto report =
      run_maxreg_adversary(simalgos::make_cas_maxreg_program(64), opts);
  std::size_t halts = 0;
  for (const auto& it : report.iterations) halts += it.halted ? 1 : 0;
  EXPECT_GE(halts, 1u) << "the CAS register forces high-contention rounds";
}

TEST(MaxRegAdversary, StopReasonIsAlwaysSet) {
  MaxRegAdversaryOptions opts;
  opts.min_active = 16;
  opts.max_iterations = 8;
  const auto report =
      run_maxreg_adversary(simalgos::make_tree_maxreg_program(64), opts);
  EXPECT_FALSE(report.stop_reason.empty());
}

}  // namespace
}  // namespace ruco::adversary
