// Software multi-word CAS (Harris-Fraser-Pratt) and the 2-CAS counter
// built on it: sequential semantics, atomicity (no partial installs ever
// observable), input validation, threaded stress with helping, and
// linearizability of the derived counter.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ruco/counter/kcas_counter.h"
#include "ruco/kcas/mcas.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/util/rng.h"

namespace ruco::kcas {
namespace {

TEST(Mcas, InitializesAllCells) {
  McasArray arr{4, 7, 2};
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(arr.read(0, i), 7);
}

TEST(Mcas, SucceedsWhenAllMatch) {
  McasArray arr{3, 0, 2};
  EXPECT_TRUE(arr.mcas(0, {McasWord{0, 0, 10}, McasWord{2, 0, 30}}));
  EXPECT_EQ(arr.read(0, 0), 10);
  EXPECT_EQ(arr.read(0, 1), 0) << "untouched cell unchanged";
  EXPECT_EQ(arr.read(0, 2), 30);
}

TEST(Mcas, FailsAtomicallyOnAnyMismatch) {
  McasArray arr{3, 0, 2};
  EXPECT_FALSE(arr.mcas(0, {McasWord{0, 0, 10}, McasWord{2, 99, 30}}));
  EXPECT_EQ(arr.read(0, 0), 0) << "no partial install";
  EXPECT_EQ(arr.read(0, 2), 0);
}

TEST(Mcas, SingleWordDegeneratesToCas) {
  McasArray arr{1, 5, 1};
  EXPECT_TRUE(arr.mcas(0, {McasWord{0, 5, 6}}));
  EXPECT_FALSE(arr.mcas(0, {McasWord{0, 5, 7}}));
  EXPECT_EQ(arr.read(0, 0), 6);
}

TEST(Mcas, EmptyIsVacuouslyTrue) {
  McasArray arr{1, 0, 1};
  EXPECT_TRUE(arr.mcas(0, {}));
}

TEST(Mcas, UnsortedInputIsSortedInternally) {
  McasArray arr{4, 1, 1};
  EXPECT_TRUE(arr.mcas(0, {McasWord{3, 1, 4}, McasWord{0, 1, 2}}));
  EXPECT_EQ(arr.read(0, 0), 2);
  EXPECT_EQ(arr.read(0, 3), 4);
}

TEST(Mcas, RejectsBadInput) {
  McasArray arr{2, 0, 1};
  EXPECT_THROW(arr.mcas(0, {McasWord{5, 0, 1}}), std::out_of_range);
  EXPECT_THROW(arr.mcas(0, {McasWord{0, 0, 1}, McasWord{0, 0, 2}}),
               std::invalid_argument);
  EXPECT_THROW(arr.mcas(0, {McasWord{0, 0, McasArray::kMaxValue + 1}}),
               std::out_of_range);
  EXPECT_THROW((McasArray{0, 0, 1}), std::invalid_argument);
}

TEST(Mcas, NegativeValuesRoundTrip) {
  McasArray arr{1, -5, 1};
  EXPECT_EQ(arr.read(0, 0), -5);
  EXPECT_TRUE(arr.mcas(0, {McasWord{0, -5, McasArray::kMinValue}}));
  EXPECT_EQ(arr.read(0, 0), McasArray::kMinValue);
}

TEST(Mcas, SequentialRandomAgainstOracle) {
  constexpr std::uint32_t kCells = 6;
  McasArray arr{kCells, 0, 1};
  std::vector<Value> oracle(kCells, 0);
  util::SplitMix64 rng{71};
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.below(kCells));
    auto b = static_cast<std::uint32_t>(rng.below(kCells));
    if (b == a) b = (b + 1) % kCells;
    // Half the time feed a stale expected value: must fail cleanly.
    const bool stale = rng.chance(1, 2);
    const Value ea = stale ? oracle[a] + 1000 : oracle[a];
    const bool ok = arr.mcas(0, {McasWord{a, ea, oracle[a] + 1},
                                 McasWord{b, oracle[b], oracle[b] + 1}});
    EXPECT_EQ(ok, !stale) << "op " << i;
    if (ok) {
      ++oracle[a];
      ++oracle[b];
    }
    for (std::uint32_t c = 0; c < kCells; ++c) {
      ASSERT_EQ(arr.read(0, c), oracle[c]) << "op " << i << " cell " << c;
    }
  }
}

TEST(Mcas, UncontendedStepCost) {
  // ~3k+1 CAS-object steps for a k-word MCAS: the software price of the
  // stronger primitive.
  McasArray arr{4, 0, 1};
  runtime::StepScope scope;
  (void)arr.mcas(0, {McasWord{0, 0, 1}, McasWord{1, 0, 1}});
  EXPECT_LE(scope.taken(), 16u);
  EXPECT_GE(scope.taken(), 7u);
}

TEST(McasStress, DisjointPairsNeverInterfere) {
  // Threads 0/1 hammer cells {0,1}, threads 2/3 hammer {2,3}: totals per
  // pair must be exact (atomicity within a pair, isolation across pairs).
  constexpr int kPerThread = 4000;
  McasArray arr{4, 0, 4};
  runtime::run_threads(4, [&arr](std::size_t t) {
    const auto proc = static_cast<ProcId>(t);
    const std::uint32_t base = t < 2 ? 0 : 2;
    for (int i = 0; i < kPerThread; ++i) {
      for (;;) {
        const Value a = arr.read(proc, base);
        const Value b = arr.read(proc, base + 1);
        if (arr.mcas(proc, {McasWord{base, a, a + 1},
                            McasWord{base + 1, b, b + 1}})) {
          break;
        }
      }
    }
  });
  EXPECT_EQ(arr.read(0, 0), 2 * kPerThread);
  EXPECT_EQ(arr.read(0, 1), 2 * kPerThread);
  EXPECT_EQ(arr.read(0, 2), 2 * kPerThread);
  EXPECT_EQ(arr.read(0, 3), 2 * kPerThread);
}

TEST(McasStress, OverlappingWordsStayCoupled) {
  // Every thread 2-CASes (own cell, shared cell) keeping the invariant
  // shared == sum(own cells); readers must never observe it broken.
  constexpr std::uint32_t kThreads = 4;
  constexpr int kPerThread = 2500;
  McasArray arr{kThreads + 1, 0, kThreads + 1};
  std::atomic<bool> broken{false};
  runtime::run_threads(kThreads + 1, [&](std::size_t t) {
    const auto proc = static_cast<ProcId>(t);
    if (t == kThreads) {
      // Auditor: snapshot-free spot checks -- the shared total must always
      // be >= each own cell's value and <= kThreads * kPerThread.
      for (int i = 0; i < 20'000; ++i) {
        const Value total = arr.read(proc, kThreads);
        if (total < 0 || total > kThreads * kPerThread) broken.store(true);
      }
      return;
    }
    for (int i = 0; i < kPerThread; ++i) {
      for (;;) {
        const Value own = arr.read(proc, static_cast<std::uint32_t>(t));
        const Value total = arr.read(proc, kThreads);
        if (arr.mcas(proc,
                     {McasWord{static_cast<std::uint32_t>(t), own, own + 1},
                      McasWord{kThreads, total, total + 1}})) {
          break;
        }
      }
    }
  });
  EXPECT_FALSE(broken.load());
  Value sum = 0;
  for (std::uint32_t c = 0; c < kThreads; ++c) sum += arr.read(0, c);
  EXPECT_EQ(sum, kThreads * kPerThread);
  EXPECT_EQ(arr.read(0, kThreads), kThreads * kPerThread)
      << "the coupled total never drifts from the sum";
}

}  // namespace
}  // namespace ruco::kcas

namespace ruco::counter {
namespace {

TEST(KcasCounter, CountsSequentially) {
  KcasCounter c{4};
  EXPECT_EQ(c.read(0), 0);
  for (int i = 1; i <= 20; ++i) {
    c.increment(static_cast<ProcId>(i % 4));
    EXPECT_EQ(c.read(0), i);
  }
  EXPECT_EQ(c.mine(0), 5);
}

TEST(KcasCounter, ExactUnderThreads) {
  constexpr std::uint32_t kThreads = 6;
  constexpr int kPerThread = 3000;
  KcasCounter c{kThreads};
  runtime::run_threads(kThreads, [&c](std::size_t t) {
    for (int i = 0; i < kPerThread; ++i) {
      c.increment(static_cast<ProcId>(t));
    }
  });
  EXPECT_EQ(c.read(0), kThreads * kPerThread);
  for (ProcId p = 0; p < kThreads; ++p) EXPECT_EQ(c.mine(p), kPerThread);
}

TEST(KcasCounter, LinearizableUnderThreads) {
  constexpr std::uint32_t kThreads = 4;
  KcasCounter c{kThreads};
  lincheck::Recorder recorder{kThreads};
  runtime::run_threads(kThreads, [&](std::size_t t) {
    util::SplitMix64 rng{70 + t};
    const auto proc = static_cast<ProcId>(t);
    for (int i = 0; i < 50; ++i) {
      if (rng.chance(1, 2)) {
        const auto slot = recorder.begin(proc, "CounterIncrement", 0);
        c.increment(proc);
        recorder.end(proc, slot, 0);
      } else {
        const auto slot = recorder.begin(proc, "CounterRead", 0);
        recorder.end(proc, slot, c.read(proc));
      }
    }
  });
  const auto res = lincheck::check_linearizable(recorder.harvest(),
                                                lincheck::CounterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(KcasCounter, ReadsNeverDecrease) {
  KcasCounter c{3};
  std::vector<Value> observed;
  runtime::run_threads(3, [&](std::size_t t) {
    if (t == 0) {
      observed.reserve(5000);
      for (int i = 0; i < 5000; ++i) observed.push_back(c.read(0));
    } else {
      for (int i = 0; i < 2000; ++i) c.increment(static_cast<ProcId>(t));
    }
  });
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_EQ(c.read(0), 4000);
}

}  // namespace
}  // namespace ruco::counter
