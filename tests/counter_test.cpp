// Production counters: shared semantics (typed tests), per-implementation
// step bounds -- the measured side of Theorem 1's tradeoff -- restricted-use
// bound enforcement, and threaded stress with linearizability checking.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ruco/counter/farray_counter.h"
#include "ruco/counter/fetch_add_counter.h"
#include "ruco/counter/maxreg_counter.h"
#include "ruco/counter/snapshot_counter.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/snapshot/afek_snapshot.h"
#include "ruco/snapshot/double_collect_snapshot.h"
#include "ruco/snapshot/farray_snapshot.h"
#include "ruco/util/bits.h"
#include "ruco/util/rng.h"

namespace ruco::counter {
namespace {

constexpr std::uint32_t kProcs = 8;
constexpr Value kMaxIncrements = 1 << 12;

struct FArrayAdapter : FArrayCounter {
  FArrayAdapter() : FArrayCounter{kProcs} {}
};
struct MaxRegAdapter : MaxRegCounter {
  MaxRegAdapter() : MaxRegCounter{kProcs, kMaxIncrements} {}
};
struct FetchAddAdapter : FetchAddCounter {};
struct SnapshotFArrayAdapter : SnapshotCounter<snapshot::FArraySnapshot> {
  SnapshotFArrayAdapter() : SnapshotCounter{kProcs} {}
};
struct SnapshotAfekAdapter : SnapshotCounter<snapshot::AfekSnapshot> {
  SnapshotAfekAdapter() : SnapshotCounter{kProcs} {}
};
struct SnapshotDoubleCollectAdapter
    : SnapshotCounter<snapshot::DoubleCollectSnapshot> {
  SnapshotDoubleCollectAdapter() : SnapshotCounter{kProcs} {}
};

template <typename C>
class CounterSemantics : public ::testing::Test {};

using AllCounters =
    ::testing::Types<FArrayAdapter, MaxRegAdapter, FetchAddAdapter,
                     SnapshotFArrayAdapter, SnapshotAfekAdapter,
                     SnapshotDoubleCollectAdapter>;
TYPED_TEST_SUITE(CounterSemantics, AllCounters);

TYPED_TEST(CounterSemantics, StartsAtZero) {
  TypeParam c;
  EXPECT_EQ(c.read(0), 0);
}

TYPED_TEST(CounterSemantics, CountsSequentialIncrements) {
  TypeParam c;
  for (Value i = 1; i <= 50; ++i) {
    c.increment(static_cast<ProcId>(i % kProcs));
    ASSERT_EQ(c.read(0), i);
  }
}

TYPED_TEST(CounterSemantics, EveryProcessContributes) {
  TypeParam c;
  for (ProcId p = 0; p < kProcs; ++p) {
    c.increment(p);
    c.increment(p);
  }
  EXPECT_EQ(c.read(kProcs - 1), 2 * static_cast<Value>(kProcs));
}

TYPED_TEST(CounterSemantics, ReadIsIdempotent) {
  TypeParam c;
  c.increment(0);
  c.increment(1);
  EXPECT_EQ(c.read(2), c.read(3));
  EXPECT_EQ(c.read(2), 2);
}

// --------------------------------------------- step bounds (Theorem 1)

TEST(FArrayCounterSteps, ReadIsOneStep) {
  FArrayCounter c{64};
  c.increment(5);
  runtime::StepScope scope;
  (void)c.read(0);
  EXPECT_EQ(scope.taken(), 1u);
}

class FArrayStepsTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FArrayStepsTest, IncrementIsLogN) {
  const std::uint32_t n = GetParam();
  FArrayCounter c{n};
  const std::uint64_t levels = util::ceil_log2(n);
  for (int i = 0; i < 20; ++i) {
    runtime::StepScope scope;
    c.increment(static_cast<ProcId>(i % n));
    EXPECT_LE(scope.taken(), 8 * levels + 1) << "N=" << n;
    // Theorem 1 says it cannot be o(log N) given the O(1) read -- and
    // indeed each increment walks the whole path:
    EXPECT_GE(scope.taken(), levels + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FArrayStepsTest,
                         ::testing::Values(2, 4, 8, 64, 256, 1024));

class MaxRegCounterStepsTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(MaxRegCounterStepsTest, ReadLogUIncrementLogNLogU) {
  const std::uint32_t n = GetParam();
  MaxRegCounter c{n, kMaxIncrements};
  const std::uint64_t log_u = util::ceil_log2(kMaxIncrements + 1);
  const std::uint64_t log_n = util::ceil_log2(n);
  c.increment(0);
  runtime::StepScope r;
  (void)c.read(1);
  EXPECT_LE(r.taken(), log_u + 2) << "read should be one ReadMax";
  runtime::StepScope w;
  c.increment(1);
  // Per level: two child reads (each <= log_u + 2) plus one WriteMax
  // (<= 2 log_u + 1).
  EXPECT_LE(w.taken(), (log_n + 1) * (4 * log_u + 8) + 2) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MaxRegCounterStepsTest,
                         ::testing::Values(2, 4, 16, 64, 256));

TEST(CounterTradeoffShape, FArrayPaysOnUpdatesMaxRegOnReads) {
  // The two read-optimal designs sit at different points of the Theorem 1
  // frontier: f-array reads 1 step but increments Theta(log N); the AAC
  // counter reads Theta(log U) and increments Theta(log N log U).
  constexpr std::uint32_t n = 256;
  FArrayCounter fa{n};
  MaxRegCounter mr{n, kMaxIncrements};
  fa.increment(0);
  mr.increment(0);
  runtime::StepScope fr;
  (void)fa.read(0);
  const auto fa_read = fr.taken();
  runtime::StepScope mrr;
  (void)mr.read(0);
  const auto mr_read = mrr.taken();
  EXPECT_LT(fa_read, mr_read);
  runtime::StepScope fi;
  fa.increment(1);
  const auto fa_inc = fi.taken();
  runtime::StepScope mri;
  mr.increment(1);
  const auto mr_inc = mri.taken();
  EXPECT_LT(fa_inc, mr_inc);
}

// ------------------------------------------------- restricted-use bounds

TEST(MaxRegCounter, EnforcesIncrementBound) {
  MaxRegCounter c{2, 4};
  for (int i = 0; i < 4; ++i) c.increment(0);
  EXPECT_THROW(c.increment(0), std::length_error);
  EXPECT_EQ(c.read(1), 4) << "counter still readable after bound hit";
}

TEST(MaxRegCounter, RejectsSillyBound) {
  EXPECT_THROW((MaxRegCounter{4, 0}), std::invalid_argument);
}

// --------------------------------------------------- threaded stress

template <typename C>
void stress_counter_lincheck(C& c, std::uint32_t threads, int increments,
                             int reads, std::uint64_t seed) {
  lincheck::Recorder recorder{threads};
  runtime::run_threads(threads, [&](std::size_t t) {
    util::SplitMix64 rng{seed + t};
    const auto proc = static_cast<ProcId>(t);
    int incs = increments;
    int rds = reads;
    while (incs > 0 || rds > 0) {
      const bool do_inc = rds == 0 || (incs > 0 && rng.chance(1, 2));
      if (do_inc) {
        const auto slot = recorder.begin(proc, "CounterIncrement", 0);
        c.increment(proc);
        recorder.end(proc, slot, 0);
        --incs;
      } else {
        const auto slot = recorder.begin(proc, "CounterRead", 0);
        const Value v = c.read(proc);
        recorder.end(proc, slot, v);
        --rds;
      }
    }
  });
  const auto res = lincheck::check_linearizable(recorder.harvest(),
                                                lincheck::CounterSpec{});
  ASSERT_TRUE(res.decided);
  EXPECT_TRUE(res.linearizable) << res.message;
}

TEST(CounterStress, FArrayLinearizable) {
  FArrayCounter c{kProcs};
  stress_counter_lincheck(c, 4, 30, 30, 11);
}

TEST(CounterStress, MaxRegLinearizable) {
  MaxRegCounter c{kProcs, kMaxIncrements};
  stress_counter_lincheck(c, 4, 30, 30, 12);
}

TEST(CounterStress, SnapshotCounterLinearizable) {
  SnapshotCounter<snapshot::FArraySnapshot> c{kProcs};
  stress_counter_lincheck(c, 4, 30, 30, 13);
}

TEST(CounterStress, FArrayExactFinalCount) {
  constexpr std::uint32_t kThreads = 8;
  constexpr int kPerThread = 2000;
  FArrayCounter c{kThreads};
  runtime::run_threads(kThreads, [&c](std::size_t t) {
    for (int i = 0; i < kPerThread; ++i) c.increment(static_cast<ProcId>(t));
  });
  EXPECT_EQ(c.read(0), static_cast<Value>(kThreads) * kPerThread);
}

TEST(CounterStress, ReadsNeverDecrease) {
  FArrayCounter c{4};
  std::vector<Value> observed;
  runtime::run_threads(4, [&](std::size_t t) {
    if (t == 0) {
      observed.reserve(3000);
      for (int i = 0; i < 3000; ++i) observed.push_back(c.read(0));
    } else {
      for (int i = 0; i < 1000; ++i) c.increment(static_cast<ProcId>(t));
    }
  });
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_EQ(c.read(0), 3000);
}

TEST(CounterStress, ReadsNeverOvershootInFlight) {
  // A read must never exceed the number of increment *invocations* so far.
  // Verified post-hoc through the recorder's timestamps.
  constexpr std::uint32_t kThreads = 4;
  FArrayCounter c{kThreads};
  lincheck::Recorder recorder{kThreads};
  runtime::run_threads(kThreads, [&](std::size_t t) {
    const auto proc = static_cast<ProcId>(t);
    for (int i = 0; i < 200; ++i) {
      if (t == 0) {
        const auto slot = recorder.begin(proc, "CounterRead", 0);
        recorder.end(proc, slot, c.read(proc));
      } else {
        const auto slot = recorder.begin(proc, "CounterIncrement", 0);
        c.increment(proc);
        recorder.end(proc, slot, 0);
      }
    }
  });
  const auto history = recorder.harvest();
  for (const auto& read : history.ops) {
    if (read.op != "CounterRead") continue;
    Value invoked_before = 0;
    Value completed_before = 0;
    for (const auto& inc : history.ops) {
      if (inc.op != "CounterIncrement") continue;
      if (inc.invoked < read.returned) ++invoked_before;
      if (inc.returned < read.invoked) ++completed_before;
    }
    EXPECT_LE(read.ret, invoked_before);
    EXPECT_GE(read.ret, completed_before);
  }
}

}  // namespace
}  // namespace ruco::counter
