// The linearizability checker itself: known-good and known-bad histories
// for all three specs, pending-operation semantics, precedence edge cases,
// the recorder, and the sim-history bridge.
#include <gtest/gtest.h>

#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/history.h"
#include "ruco/lincheck/specs.h"
#include "ruco/runtime/thread_harness.h"

namespace ruco::lincheck {
namespace {

OpRecord op(ProcId p, const char* name, Value arg, Value ret,
            std::uint64_t inv, std::uint64_t rtn) {
  OpRecord r;
  r.proc = p;
  r.op = name;
  r.arg = arg;
  r.ret = ret;
  r.invoked = inv;
  r.returned = rtn;
  return r;
}

OpRecord pending_op(ProcId p, const char* name, Value arg,
                    std::uint64_t inv) {
  OpRecord r;
  r.proc = p;
  r.op = name;
  r.arg = arg;
  r.invoked = inv;
  return r;
}

// ------------------------------------------------------ max register

TEST(MaxRegCheck, EmptyHistoryIsLinearizable) {
  const auto res = check_linearizable(History{}, MaxRegisterSpec{});
  EXPECT_TRUE(res.linearizable);
}

TEST(MaxRegCheck, ConcurrentReadMayGoEitherWay) {
  // Write and read overlap: returning either -inf or the value is legal.
  for (const Value read_result : {kNoValue, Value{5}}) {
    History h;
    h.ops.push_back(op(0, "WriteMax", 5, 0, 0, 10));
    h.ops.push_back(op(1, "ReadMax", 0, read_result, 1, 9));
    const auto res = check_linearizable(h, MaxRegisterSpec{});
    EXPECT_TRUE(res.linearizable) << "read=" << read_result;
  }
}

TEST(MaxRegCheck, ReadCannotInventValues) {
  History h;
  h.ops.push_back(op(0, "WriteMax", 5, 0, 0, 1));
  h.ops.push_back(op(1, "ReadMax", 0, 7, 2, 3));
  const auto res = check_linearizable(h, MaxRegisterSpec{});
  EXPECT_FALSE(res.linearizable);
}

TEST(MaxRegCheck, NewOldInversionRejected) {
  // Two sequential reads around a write: 5 then -inf is impossible.
  History h;
  h.ops.push_back(op(0, "WriteMax", 5, 0, 0, 1));
  h.ops.push_back(op(1, "ReadMax", 0, 5, 2, 3));
  h.ops.push_back(op(1, "ReadMax", 0, kNoValue, 4, 5));
  const auto res = check_linearizable(h, MaxRegisterSpec{});
  EXPECT_FALSE(res.linearizable) << "max registers never regress";
}

TEST(MaxRegCheck, PendingWriteMayExplainRead) {
  // A never-returned WriteMax(9) may still have taken effect.
  History h;
  h.ops.push_back(pending_op(0, "WriteMax", 9, 0));
  h.ops.push_back(op(1, "ReadMax", 0, 9, 5, 6));
  const auto res = check_linearizable(h, MaxRegisterSpec{});
  EXPECT_TRUE(res.linearizable);
}

TEST(MaxRegCheck, PendingWriteMayAlsoNotHaveHappened) {
  History h;
  h.ops.push_back(pending_op(0, "WriteMax", 9, 0));
  h.ops.push_back(op(1, "ReadMax", 0, kNoValue, 5, 6));
  const auto res = check_linearizable(h, MaxRegisterSpec{});
  EXPECT_TRUE(res.linearizable);
}

TEST(MaxRegCheck, CompletedWriteMustBeSeen) {
  // The paper-gap scenario, hand-written: WriteMax(1) completed before the
  // read, which returned -inf.  Another WriteMax(1) is still pending.
  History h;
  h.ops.push_back(pending_op(0, "WriteMax", 1, 0));
  h.ops.push_back(op(1, "WriteMax", 1, 0, 1, 2));
  h.ops.push_back(op(2, "ReadMax", 0, kNoValue, 3, 4));
  const auto res = check_linearizable(h, MaxRegisterSpec{});
  EXPECT_FALSE(res.linearizable);
}

TEST(MaxRegCheck, UnknownOperationRejected) {
  History h;
  h.ops.push_back(op(0, "Frobnicate", 1, 0, 0, 1));
  EXPECT_FALSE(check_linearizable(h, MaxRegisterSpec{}).linearizable);
}

// ----------------------------------------------------------- counter

TEST(CounterCheck, OverlappingIncrementsAllCount) {
  History h;
  h.ops.push_back(op(0, "CounterIncrement", 0, 0, 0, 5));
  h.ops.push_back(op(1, "CounterIncrement", 0, 0, 1, 6));
  h.ops.push_back(op(2, "CounterRead", 0, 2, 7, 8));
  EXPECT_TRUE(check_linearizable(h, CounterSpec{}).linearizable);
}

TEST(CounterCheck, ReadCannotExceedInvokedIncrements) {
  History h;
  h.ops.push_back(op(0, "CounterIncrement", 0, 0, 0, 1));
  h.ops.push_back(op(1, "CounterRead", 0, 2, 2, 3));
  EXPECT_FALSE(check_linearizable(h, CounterSpec{}).linearizable);
}

TEST(CounterCheck, ReadCannotMissCompletedIncrements) {
  History h;
  h.ops.push_back(op(0, "CounterIncrement", 0, 0, 0, 1));
  h.ops.push_back(op(1, "CounterRead", 0, 0, 2, 3));
  EXPECT_FALSE(check_linearizable(h, CounterSpec{}).linearizable);
}

TEST(CounterCheck, ConcurrentReadStraddles) {
  // Read overlaps one increment: 0 or 1 both fine, 2 not.
  for (const auto& [ret, want] :
       std::vector<std::pair<Value, bool>>{{0, true}, {1, true}, {2, false}}) {
    History h;
    h.ops.push_back(op(0, "CounterIncrement", 0, 0, 2, 6));
    h.ops.push_back(op(1, "CounterRead", 0, ret, 1, 7));
    EXPECT_EQ(check_linearizable(h, CounterSpec{}).linearizable, want)
        << "ret=" << ret;
  }
}

// ---------------------------------------------------------- snapshot

OpRecord scan_op(ProcId p, std::vector<Value> view, std::uint64_t inv,
                 std::uint64_t rtn) {
  OpRecord r;
  r.proc = p;
  r.op = "Scan";
  r.ret_vec = std::move(view);
  r.invoked = inv;
  r.returned = rtn;
  return r;
}

TEST(SnapshotCheck, SequentialUpdatesVisible) {
  History h;
  h.ops.push_back(op(0, "Update", 4, 0, 0, 1));
  h.ops.push_back(op(1, "Update", 9, 0, 2, 3));
  h.ops.push_back(scan_op(2, {4, 9, 0}, 4, 5));
  EXPECT_TRUE(check_linearizable(h, SnapshotSpec{3}).linearizable);
}

TEST(SnapshotCheck, TornScanRejected) {
  // u0 completes before u1 starts; a scan after both cannot show u1's
  // value without u0's.
  History h;
  h.ops.push_back(op(0, "Update", 4, 0, 0, 1));
  h.ops.push_back(op(1, "Update", 9, 0, 2, 3));
  h.ops.push_back(scan_op(2, {0, 9, 0}, 4, 5));
  EXPECT_FALSE(check_linearizable(h, SnapshotSpec{3}).linearizable);
}

TEST(SnapshotCheck, ConcurrentScanMayTakeEitherSide) {
  for (const Value seg0 : {Value{0}, Value{4}}) {
    History h;
    h.ops.push_back(op(0, "Update", 4, 0, 0, 6));
    h.ops.push_back(scan_op(2, {seg0, 0, 0}, 1, 5));
    EXPECT_TRUE(check_linearizable(h, SnapshotSpec{3}).linearizable)
        << "seg0=" << seg0;
  }
}

TEST(SnapshotCheck, ScansMustAgreeOnOrder) {
  // Two sequential scans must not observe updates in opposite orders.
  History h;
  h.ops.push_back(op(0, "Update", 1, 0, 0, 10));
  h.ops.push_back(op(1, "Update", 2, 0, 0, 10));
  h.ops.push_back(scan_op(2, {1, 0, 0}, 11, 12));
  h.ops.push_back(scan_op(2, {0, 2, 0}, 13, 14));
  EXPECT_FALSE(check_linearizable(h, SnapshotSpec{3}).linearizable);
}

// ---------------------------------------------------------- machinery

TEST(History, PrecedenceRequiresReturnBeforeInvoke) {
  const auto a = op(0, "ReadMax", 0, 0, 0, 5);
  const auto b = op(1, "ReadMax", 0, 0, 6, 7);
  const auto c = op(2, "ReadMax", 0, 0, 3, 8);
  EXPECT_TRUE(a.precedes(b));
  EXPECT_FALSE(b.precedes(a));
  EXPECT_FALSE(a.precedes(c)) << "overlapping ops are concurrent";
  EXPECT_FALSE(c.precedes(a));
}

TEST(History, PendingNeverPrecedes) {
  const auto p = pending_op(0, "WriteMax", 1, 0);
  const auto b = op(1, "ReadMax", 0, 0, 100, 101);
  EXPECT_FALSE(p.precedes(b));
  EXPECT_TRUE(p.pending());
}

TEST(History, WithoutPendingFilters) {
  History h;
  h.ops.push_back(pending_op(0, "WriteMax", 1, 0));
  h.ops.push_back(op(1, "ReadMax", 0, 0, 1, 2));
  EXPECT_EQ(h.pending_count(), 1u);
  EXPECT_EQ(h.without_pending().size(), 1u);
}

TEST(Recorder, HarvestSortsByInvocation) {
  Recorder rec{2};
  const auto s0 = rec.begin(0, "WriteMax", 1);
  const auto s1 = rec.begin(1, "ReadMax", 0);
  rec.end(1, s1, kNoValue);
  rec.end(0, s0, 0);
  const auto h = rec.harvest();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.ops[0].op, "WriteMax");
  EXPECT_EQ(h.ops[1].op, "ReadMax");
  EXPECT_LT(h.ops[0].invoked, h.ops[1].invoked);
  EXPECT_LT(h.ops[1].returned, h.ops[0].returned);
}

TEST(Recorder, ThreadedStampsAreConsistent) {
  Recorder rec{4};
  runtime::run_threads(4, [&rec](std::size_t t) {
    for (int i = 0; i < 100; ++i) {
      const auto slot = rec.begin(static_cast<ProcId>(t), "ReadMax", 0);
      rec.end(static_cast<ProcId>(t), slot, 0);
    }
  });
  const auto h = rec.harvest();
  ASSERT_EQ(h.size(), 400u);
  for (const auto& o : h.ops) EXPECT_LT(o.invoked, o.returned);
}

TEST(Checker, BudgetExhaustionIsUndecidedNotFalse) {
  History h;
  for (int i = 0; i < 12; ++i) {
    h.ops.push_back(op(static_cast<ProcId>(i), "CounterIncrement", 0, 0, 0,
                       1000));  // all concurrent
  }
  h.ops.push_back(op(12, "CounterRead", 0, 6, 0, 1000));
  const auto res = check_linearizable(h, CounterSpec{}, /*max_states=*/5);
  EXPECT_FALSE(res.decided);
}

TEST(Checker, WitnessIsALegalLinearization) {
  History h;
  h.ops.push_back(op(0, "WriteMax", 5, 0, 0, 10));
  h.ops.push_back(op(1, "ReadMax", 0, kNoValue, 1, 4));  // before the write
  h.ops.push_back(op(2, "ReadMax", 0, 5, 5, 9));         // after it landed
  h.ops.push_back(op(1, "ReadMax", 0, 5, 11, 12));
  MaxRegisterSpec spec;
  const auto res = check_linearizable(h, spec);
  ASSERT_TRUE(res.linearizable);
  ASSERT_EQ(res.witness.size(), h.ops.size());
  // Replaying the witness through the spec reproduces every response.
  MaxRegisterSpec::State state = spec.initial();
  for (const std::size_t i : res.witness) {
    const auto next = spec.apply(state, h.ops[i]);
    ASSERT_TRUE(next.has_value()) << "witness step " << i;
    state = *next;
  }
  // Precedence respected: the early read linearizes before the late one.
  std::size_t pos_early = 0;
  std::size_t pos_late = 0;
  for (std::size_t k = 0; k < res.witness.size(); ++k) {
    if (res.witness[k] == 1) pos_early = k;
    if (res.witness[k] == 3) pos_late = k;
  }
  EXPECT_LT(pos_early, pos_late);
}

TEST(Checker, WitnessMayOmitPendingOps) {
  History h;
  h.ops.push_back(pending_op(0, "WriteMax", 9, 0));
  h.ops.push_back(op(1, "ReadMax", 0, kNoValue, 5, 6));
  const auto res = check_linearizable(h, MaxRegisterSpec{});
  ASSERT_TRUE(res.linearizable);
  EXPECT_EQ(res.witness.size(), 1u) << "the unseen pending write is omitted";
  EXPECT_EQ(res.witness[0], 1u);
}

TEST(Checker, NoWitnessOnFailure) {
  History h;
  h.ops.push_back(op(0, "WriteMax", 5, 0, 0, 1));
  h.ops.push_back(op(1, "ReadMax", 0, kNoValue, 2, 3));
  const auto res = check_linearizable(h, MaxRegisterSpec{});
  ASSERT_FALSE(res.linearizable);
  EXPECT_TRUE(res.witness.empty());
}

TEST(Checker, DeepSequentialHistoryIsFast) {
  History h;
  Value count = 0;
  std::uint64_t t = 0;
  for (int i = 0; i < 400; ++i) {
    h.ops.push_back(op(0, "CounterIncrement", 0, 0, t, t + 1));
    t += 2;
    ++count;
    h.ops.push_back(op(1, "CounterRead", 0, count, t, t + 1));
    t += 2;
  }
  const auto res = check_linearizable(h, CounterSpec{});
  EXPECT_TRUE(res.linearizable);
  EXPECT_TRUE(res.decided);
}

}  // namespace
}  // namespace ruco::lincheck
