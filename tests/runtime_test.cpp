// Unit tests for the runtime substrate: step accounting, padding, barrier,
// thread harness.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ruco/runtime/padded.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"

namespace ruco::runtime {
namespace {

TEST(StepCount, ScopeMeasuresTicks) {
  StepScope scope;
  EXPECT_EQ(scope.taken(), 0u);
  step_tick();
  step_tick();
  step_tick();
  EXPECT_EQ(scope.taken(), 3u);
}

TEST(StepCount, ScopesNest) {
  StepScope outer;
  step_tick();
  {
    StepScope inner;
    step_tick();
    step_tick();
    EXPECT_EQ(inner.taken(), 2u);
  }
  EXPECT_EQ(outer.taken(), 3u);
}

TEST(StepCount, PerThreadIsolation) {
  step_tick();
  const std::uint64_t mine = thread_steps();
  std::uint64_t theirs = 0;
  std::thread t{[&theirs] {
    theirs = thread_steps();  // fresh thread: zero
    step_tick();
  }};
  t.join();
  EXPECT_EQ(theirs, 0u);
  EXPECT_EQ(thread_steps(), mine);  // their tick did not leak here
}

TEST(Padded, EachAtomicOnOwnCacheLine) {
  static_assert(sizeof(PaddedAtomic<std::int64_t>) == kCacheLine);
  static_assert(alignof(PaddedAtomic<std::int64_t>) == kCacheLine);
  std::vector<PaddedAtomic<std::int64_t>> v(4, PaddedAtomic<std::int64_t>{7});
  for (const auto& cell : v) EXPECT_EQ(cell.value.load(), 7);
  const auto a = reinterpret_cast<std::uintptr_t>(&v[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&v[1]);
  EXPECT_GE(b - a, kCacheLine);
}

TEST(SpinBarrier, ReleasesAllParties) {
  constexpr std::size_t kParties = 4;
  SpinBarrier barrier{kParties};
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kParties; ++i) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // Everyone must have arrived before anyone proceeds.
      EXPECT_EQ(before.load(), static_cast<int>(kParties));
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), static_cast<int>(kParties));
}

TEST(SpinBarrier, Reusable) {
  constexpr std::size_t kParties = 3;
  SpinBarrier barrier{kParties};
  std::atomic<int> phase_sum{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kParties; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        barrier.arrive_and_wait();
        phase_sum.fetch_add(1);
        barrier.arrive_and_wait();
        // Between the two barriers every party bumped exactly once per
        // round.
        EXPECT_EQ(phase_sum.load() % static_cast<int>(kParties), 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(phase_sum.load(), 15);
}

TEST(RunThreads, PassesDistinctIndices) {
  std::vector<std::atomic<int>> hits(8);
  run_threads(8, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunThreads, ZeroAndOneThreadShortcuts) {
  run_threads(0, [](std::size_t) { FAIL() << "body must not run"; });
  int calls = 0;
  run_threads(1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ruco::runtime
