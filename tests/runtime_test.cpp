// Unit tests for the runtime substrate: step accounting, padding, barrier,
// thread harness.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ruco/runtime/padded.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"

namespace ruco::runtime {
namespace {

TEST(StepCount, ScopeMeasuresTicks) {
  StepScope scope;
  EXPECT_EQ(scope.taken(), 0u);
  step_tick();
  step_tick();
  step_tick();
  EXPECT_EQ(scope.taken(), 3u);
}

TEST(StepCount, ScopesNest) {
  StepScope outer;
  step_tick();
  {
    StepScope inner;
    step_tick();
    step_tick();
    EXPECT_EQ(inner.taken(), 2u);
  }
  EXPECT_EQ(outer.taken(), 3u);
}

TEST(StepCount, PerThreadIsolation) {
  step_tick();
  const std::uint64_t mine = thread_steps();
  std::uint64_t theirs = 0;
  std::thread t{[&theirs] {
    theirs = thread_steps();  // fresh thread: zero
    step_tick();
  }};
  t.join();
  EXPECT_EQ(theirs, 0u);
  EXPECT_EQ(thread_steps(), mine);  // their tick did not leak here
}

TEST(Padded, EachAtomicOnOwnCacheLine) {
  static_assert(sizeof(PaddedAtomic<std::int64_t>) == kCacheLine);
  static_assert(alignof(PaddedAtomic<std::int64_t>) == kCacheLine);
  std::vector<PaddedAtomic<std::int64_t>> v(4, PaddedAtomic<std::int64_t>{7});
  for (const auto& cell : v) EXPECT_EQ(cell.value.load(), 7);
  const auto a = reinterpret_cast<std::uintptr_t>(&v[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&v[1]);
  EXPECT_GE(b - a, kCacheLine);
}

TEST(SpinBarrier, ReleasesAllParties) {
  constexpr std::size_t kParties = 4;
  SpinBarrier barrier{kParties};
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kParties; ++i) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // Everyone must have arrived before anyone proceeds.
      EXPECT_EQ(before.load(), static_cast<int>(kParties));
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), static_cast<int>(kParties));
}

TEST(SpinBarrier, Reusable) {
  constexpr std::size_t kParties = 3;
  SpinBarrier barrier{kParties};
  std::atomic<int> phase_sum{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kParties; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        barrier.arrive_and_wait();
        phase_sum.fetch_add(1);
        barrier.arrive_and_wait();
        // Between the two barriers every party bumped exactly once per
        // round.
        EXPECT_EQ(phase_sum.load() % static_cast<int>(kParties), 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(phase_sum.load(), 15);
}

TEST(RunThreads, PassesDistinctIndices) {
  std::vector<std::atomic<int>> hits(8);
  run_threads(8, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunThreads, ZeroAndOneThreadShortcuts) {
  run_threads(0, [](std::size_t) { FAIL() << "body must not run"; });
  int calls = 0;
  run_threads(1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Watchdog, FastWorkersCompleteInTime) {
  std::vector<std::atomic<int>> hits(4);
  WatchdogOptions watchdog;
  watchdog.deadline = std::chrono::milliseconds{10'000};
  const auto result = run_threads(
      4, [&hits](std::size_t i) { hits[i].fetch_add(1); }, watchdog);
  EXPECT_TRUE(result.completed_in_time);
  EXPECT_TRUE(result.hang.stuck.empty());
  EXPECT_TRUE(result.hang.diagnostic.empty());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Watchdog, ZeroDeadlineDisablesSupervision) {
  std::vector<std::atomic<int>> hits(3);
  const auto result = run_threads(
      3, [&hits](std::size_t i) { hits[i].fetch_add(1); }, WatchdogOptions{});
  EXPECT_TRUE(result.completed_in_time);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Watchdog, NamesTheStuckThread) {
  // Thread 1 blocks until released; the watchdog must fire, name exactly
  // thread 1, and the on_hang handler releases it so joins still succeed
  // (no detached threads, CP.25).
  std::atomic<bool> release{false};
  HangReport seen;
  std::atomic<int> hang_calls{0};
  WatchdogOptions watchdog;
  watchdog.deadline = std::chrono::milliseconds{500};
  watchdog.on_hang = [&](const HangReport& report) {
    seen = report;
    hang_calls.fetch_add(1);
    release.store(true, std::memory_order_release);
  };
  const auto result = run_threads(
      3,
      [&release](std::size_t i) {
        if (i == 1) {
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
      },
      watchdog);
  EXPECT_FALSE(result.completed_in_time);
  EXPECT_EQ(hang_calls.load(), 1);
  ASSERT_EQ(seen.stuck.size(), 1u);
  EXPECT_EQ(seen.stuck[0], 1u);
  EXPECT_NE(seen.diagnostic.find("stuck thread index(es): 1"),
            std::string::npos)
      << seen.diagnostic;
  EXPECT_NE(seen.diagnostic.find("1 of 3 workers"), std::string::npos)
      << seen.diagnostic;
}

}  // namespace
}  // namespace ruco::runtime
