// metrics_snapshot: consistent multi-writer metrics collection.
//
// Each worker owns one segment of a single-writer snapshot and publishes
// its own "tasks completed" gauge there; a reporter thread Scans to get a
// *mutually consistent* view of all gauges at an instant -- no torn reads,
// no locks.  With the f-array snapshot a Scan costs one shared-memory step
// regardless of how many workers there are (Corollary 1's optimal point).
//
// The demo cross-checks consistency: every scanned view's total must lie
// between the totals implied by the per-worker progress before and after
// the scan.
//
//   $ ./metrics_snapshot
#include <atomic>
#include <iostream>
#include <numeric>
#include <vector>

#include "ruco/ruco.h"

namespace {

constexpr std::uint32_t kWorkers = 3;
constexpr ruco::Value kTasks = 20'000;

}  // namespace

int main() {
  ruco::snapshot::FArraySnapshot gauges{kWorkers + 1};
  std::atomic<int> workers_left{kWorkers};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> scan_steps{0};
  std::atomic<bool> torn{false};

  ruco::runtime::run_threads(kWorkers + 1, [&](std::size_t t) {
    const auto me = static_cast<ruco::ProcId>(t);
    if (t == kWorkers) {
      // Reporter: scan until the workers finish; views must be monotone
      // (snapshots are totally ordered), so totals never decrease.
      ruco::runtime::StepScope scope;
      ruco::Value last_total = 0;
      while (workers_left.load(std::memory_order_acquire) != 0) {
        const auto view = gauges.scan(me);
        const ruco::Value total =
            std::accumulate(view.begin(), view.end(), ruco::Value{0});
        if (total < last_total) torn.store(true);
        last_total = total;
        scans.fetch_add(1, std::memory_order_relaxed);
      }
      scan_steps.store(scope.taken());
      return;
    }
    for (ruco::Value done = 1; done <= kTasks; ++done) {
      // ... do a task ...
      gauges.update(me, done);  // publish own gauge: O(log N) steps
    }
    workers_left.fetch_sub(1, std::memory_order_acq_rel);
  });

  const auto final_view = gauges.scan(0);
  const ruco::Value total =
      std::accumulate(final_view.begin(), final_view.end(), ruco::Value{0});
  std::cout << "final gauges  : ";
  for (const auto v : final_view) std::cout << v << ' ';
  std::cout << "\ntotal         : " << total << " (expected "
            << kTasks * kWorkers << ")\n";
  std::cout << "reporter scans: " << scans.load() << ", mean steps/scan = "
            << static_cast<double>(scan_steps.load()) /
                   static_cast<double>(std::max<std::uint64_t>(scans.load(), 1))
            << " (O(1) per Corollary 1's optimal point)\n";
  std::cout << "monotone views: " << (torn.load() ? "VIOLATED" : "yes")
            << "\n";
  return (total == kTasks * kWorkers && !torn.load()) ? 0 : 1;
}
