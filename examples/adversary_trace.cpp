// adversary_trace: watch the Theorem 3 lower-bound construction run.
//
// Builds K-1 simulated writers (writer i performs WriteMax(i+1)) over a
// chosen max register and lets the essential-set adversary stretch them,
// printing each iteration: contention case, essential-set decay, erasures,
// halts, and the live invariant checks.  Finishes with the Lemma 5/6
// reader probe.
//
//   $ ./adversary_trace [cas|tree|aac] [K]       (default: cas 256)
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "ruco/adversary/maxreg_adversary.h"
#include "ruco/core/table.h"
#include "ruco/simalgos/programs.h"

int main(int argc, char** argv) {
  const std::string impl = argc > 1 ? argv[1] : "cas";
  const std::uint32_t k =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 256;

  ruco::simalgos::MaxRegProgram bundle =
      impl == "tree"
          ? ruco::simalgos::make_tree_maxreg_program(k)
          : impl == "aac"
                ? ruco::simalgos::make_aac_maxreg_program(
                      k, static_cast<ruco::Value>(k))
                : ruco::simalgos::make_cas_maxreg_program(k);

  ruco::adversary::MaxRegAdversaryOptions opts;
  opts.max_iterations = 32;
  opts.min_active = 8;  // demo floor; the paper's Lemma 4 uses 81
  const auto report = ruco::adversary::run_maxreg_adversary(bundle, opts);

  std::cout << "Theorem 3 adversary vs " << impl << " max register, K = " << k
            << "\n\n";
  ruco::Table t{{"iter i", "case", "active m", "|E_i|", "erased", "halted",
                 "done", "replay", "invariants"}};
  for (const auto& it : report.iterations) {
    t.add(it.index, ruco::adversary::to_string(it.contention),
          it.active_before, it.essential_after, it.erased,
          it.halted ? "yes" : "-", it.completed_essential,
          it.replay_ok ? "ok" : "FAIL", it.invariants_ok ? "ok" : "FAIL");
  }
  t.print();

  std::cout << "\nstopped: " << report.stop_reason << "\n";
  std::cout << "iterations i* = " << report.iterations_completed
            << "  (each of the " << report.final_essential
            << " surviving writers took i* steps inside one WriteMax,\n"
            << "   and no other process knows any of them exists)\n";
  std::cout << "reader probe: ReadMax -> " << report.reader_value << " in "
            << report.reader_steps << " steps; consistent with completed "
            << "writes: " << (report.reader_ok ? "yes" : "NO") << "\n";
  return (report.all_replays_ok && report.all_invariants_ok &&
          report.reader_ok)
             ? 0
             : 1;
}
