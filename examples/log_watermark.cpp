// log_watermark: the classic systems use of a max register -- tracking the
// durable high-watermark of a replicated log.
//
// N appender threads write batches to their own log segments and publish
// each batch's last offset with WriteMax; a flusher thread polls the
// watermark with O(1) ReadMax to decide how far consumers may read.  This
// is the access pattern the paper's tradeoffs speak to: reads vastly
// outnumber updates, so a read-optimal register (Algorithm A) is the right
// point on the curve -- and Theorem 3 says its log-cost writes are near the
// best possible for such a register.
//
//   $ ./log_watermark
#include <atomic>
#include <iostream>
#include <vector>

#include "ruco/ruco.h"
#include "ruco/util/rng.h"

namespace {

constexpr std::uint32_t kAppenders = 3;
constexpr int kBatchesPerAppender = 5'000;

}  // namespace

int main() {
  // Appenders + 1 flusher share the register.
  ruco::maxreg::TreeMaxRegister watermark{kAppenders + 1};
  // A global offset sequencer (the "log tail"): each appended batch claims
  // a contiguous offset range.
  ruco::counter::FetchAddCounter tail;
  std::atomic<bool> done{false};
  std::atomic<int> appenders_left{kAppenders};
  std::atomic<std::uint64_t> flusher_polls{0};
  std::atomic<ruco::Value> flusher_last{ruco::kNoValue};

  ruco::runtime::run_threads(kAppenders + 1, [&](std::size_t t) {
    if (t == kAppenders) {
      // Flusher: spin on the O(1) read; record the frontier.
      ruco::Value last = ruco::kNoValue;
      while (!done.load(std::memory_order_acquire)) {
        const ruco::Value w =
            watermark.read_max(static_cast<ruco::ProcId>(t));
        if (w < last) {
          std::cerr << "watermark went backwards!\n";
          std::abort();
        }
        last = w;
        flusher_polls.fetch_add(1, std::memory_order_relaxed);
      }
      flusher_last.store(last);
      return;
    }
    // Appender: claim offsets, "write" the batch, publish the watermark.
    ruco::util::SplitMix64 rng{t + 1};
    for (int b = 0; b < kBatchesPerAppender; ++b) {
      const ruco::Value batch = static_cast<ruco::Value>(rng.range(1, 64));
      for (ruco::Value i = 0; i < batch; ++i) {
        tail.increment(static_cast<ruco::ProcId>(t));
      }
      const ruco::Value durable_through =
          tail.read(static_cast<ruco::ProcId>(t));
      watermark.write_max(static_cast<ruco::ProcId>(t), durable_through);
    }
    if (appenders_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done.store(true, std::memory_order_release);  // last appender out
    }
  });
  // One final publish + read after quiescence.
  const ruco::Value final_tail = tail.read(0);
  watermark.write_max(0, final_tail);
  const ruco::Value final_mark = watermark.read_max(0);

  std::cout << "appended offsets : " << final_tail << "\n";
  std::cout << "final watermark  : " << final_mark << "\n";
  std::cout << "flusher polls    : " << flusher_polls.load()
            << " (each a single shared-memory step)\n";
  return final_mark == final_tail ? 0 : 1;
}
