// progress_counter: restricted-use counters racing on a shared work queue.
//
// Worker threads chew through a fixed batch of tasks, bumping a shared
// completion counter; a monitor thread polls progress.  We run the same
// workload over three counter designs and report how many steps each side
// paid -- the Theorem 1 tradeoff as felt by an application:
//
//   f-array    : monitor pays 1 step/poll, workers pay ~8 log2 N per task.
//   AAC (rw)   : both sides pay logs; no CAS anywhere (portable to
//                machines/models without it).
//   fetch_add  : both O(1) -- the point outside the read/write/CAS model.
//
//   $ ./progress_counter
#include <atomic>
#include <iostream>

#include "ruco/core/table.h"
#include "ruco/ruco.h"

namespace {

constexpr std::uint32_t kWorkers = 3;
constexpr int kTasksPerWorker = 4'000;

struct Run {
  std::uint64_t worker_steps = 0;
  std::uint64_t monitor_steps = 0;
  std::uint64_t polls = 0;
  ruco::Value final_count = 0;
};

template <typename Counter>
Run run_workload(Counter& counter) {
  Run out;
  std::atomic<int> workers_left{kWorkers};
  std::atomic<std::uint64_t> worker_steps{0};
  ruco::runtime::run_threads(kWorkers + 1, [&](std::size_t t) {
    if (t == kWorkers) {
      // Monitor: poll until the workers are done.
      ruco::runtime::StepScope scope;
      ruco::Value last = 0;
      while (workers_left.load(std::memory_order_acquire) != 0) {
        last = counter.read(static_cast<ruco::ProcId>(t));
        ++out.polls;
      }
      out.monitor_steps = scope.taken();
      (void)last;
      return;
    }
    ruco::runtime::StepScope scope;
    for (int i = 0; i < kTasksPerWorker; ++i) {
      counter.increment(static_cast<ruco::ProcId>(t));
    }
    worker_steps.fetch_add(scope.taken(), std::memory_order_relaxed);
    workers_left.fetch_sub(1, std::memory_order_acq_rel);
  });
  out.worker_steps = worker_steps.load();
  out.final_count = counter.read(0);
  return out;
}

}  // namespace

int main() {
  constexpr ruco::Value kTotal =
      static_cast<ruco::Value>(kWorkers) * kTasksPerWorker;
  ruco::Table t{{"counter", "final count", "steps/task (workers)",
                 "steps/poll (monitor)", "polls"}};

  {
    ruco::counter::FArrayCounter c{kWorkers + 1};
    const Run r = run_workload(c);
    t.add("f-array (CAS)", r.final_count,
          static_cast<double>(r.worker_steps) / kTotal,
          static_cast<double>(r.monitor_steps) /
              static_cast<double>(std::max<std::uint64_t>(r.polls, 1)),
          r.polls);
  }
  {
    ruco::counter::MaxRegCounter c{kWorkers + 1, kTotal + 1};
    const Run r = run_workload(c);
    t.add("AAC maxreg (rw-only)", r.final_count,
          static_cast<double>(r.worker_steps) / kTotal,
          static_cast<double>(r.monitor_steps) /
              static_cast<double>(std::max<std::uint64_t>(r.polls, 1)),
          r.polls);
  }
  {
    ruco::counter::FetchAddCounter c;
    const Run r = run_workload(c);
    t.add("fetch_add (outside model)", r.final_count,
          static_cast<double>(r.worker_steps) / kTotal,
          static_cast<double>(r.monitor_steps) /
              static_cast<double>(std::max<std::uint64_t>(r.polls, 1)),
          r.polls);
  }
  t.print();
  std::cout << "\nEvery counter must report exactly " << kTotal
            << " completed tasks; they differ only in who pays the steps "
               "(Theorem 1's tradeoff).\n";
  return 0;
}
