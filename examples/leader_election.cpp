// leader_election: one-shot leader election with a max register -- the kind
// of building-block use the paper's introduction cites (restricted-use
// objects inside randomized consensus [5] and mutual exclusion [7]).
//
// Each participant draws a random ballot, encodes (ballot, id) into a
// single value, WriteMaxes it, and reads the maximum back.  Once every
// participant has announced, all readers agree on the unique maximum --
// the leader.  Termination needs no rounds and no locks; agreement follows
// from linearizability of the register.
//
//   $ ./leader_election
#include <atomic>
#include <iostream>
#include <vector>

#include "ruco/ruco.h"
#include "ruco/util/rng.h"

namespace {

constexpr std::uint32_t kParticipants = 6;

// (ballot, id) -> value with ballot in the high bits: maximum ballot wins,
// id breaks ties deterministically.
ruco::Value encode(std::uint64_t ballot, std::uint32_t id) {
  return static_cast<ruco::Value>((ballot << 8) | id);
}
std::uint32_t decode_id(ruco::Value v) {
  return static_cast<std::uint32_t>(v & 0xff);
}

}  // namespace

int main() {
  ruco::maxreg::TreeMaxRegister ballots{kParticipants};
  std::atomic<int> announced{0};
  std::vector<std::uint32_t> elected(kParticipants);

  ruco::runtime::run_threads(kParticipants, [&](std::size_t t) {
    const auto me = static_cast<ruco::ProcId>(t);
    ruco::util::SplitMix64 rng{0xb0a7 + t};
    const std::uint64_t ballot = rng.below(1u << 20);
    ballots.write_max(me, encode(ballot, me));
    announced.fetch_add(1, std::memory_order_acq_rel);
    // Wait until everyone announced (a real protocol would run rounds or
    // use randomized termination; one shot suffices for the demo).
    while (announced.load(std::memory_order_acquire) <
           static_cast<int>(kParticipants)) {
    }
    elected[t] = decode_id(ballots.read_max(me));
  });

  std::cout << "votes tallied; elected per participant:";
  bool agree = true;
  for (const auto id : elected) {
    std::cout << ' ' << id;
    agree = agree && (id == elected[0]);
  }
  std::cout << "\nagreement: " << (agree ? "yes" : "NO") << ", leader = p"
            << elected[0] << "\n";
  return agree ? 0 : 1;
}
