// Quickstart: the headline object of the paper -- Algorithm A's max
// register (O(1) reads, O(min(log N, log v)) writes) -- shared by a few
// threads.
//
//   $ ./quickstart
#include <iostream>

#include "ruco/ruco.h"

int main() {
  constexpr std::uint32_t kThreads = 4;

  // A wait-free max register shared by up to kThreads threads.  Thread i
  // passes its id (0-based) to every operation.
  ruco::maxreg::TreeMaxRegister high_score{kThreads};

  ruco::runtime::run_threads(kThreads, [&high_score](std::size_t t) {
    const auto me = static_cast<ruco::ProcId>(t);
    // Each thread posts an increasing sequence of "scores"; the register
    // keeps the global maximum, no locks anywhere.
    for (ruco::Value v = 0; v < 10'000; ++v) {
      high_score.write_max(me, v * static_cast<ruco::Value>(t + 1));
      if (v % 2500 == 0) {
        // Reads cost exactly one shared-memory step (Theorem 6).
        const ruco::Value seen = high_score.read_max(me);
        // A reader's view is a linearizable max: it never decreases and
        // always covers this thread's own completed writes.
        if (seen < v * static_cast<ruco::Value>(t + 1)) {
          std::cerr << "linearizability violated!\n";
          std::abort();
        }
      }
    }
  });

  std::cout << "final maximum: " << high_score.read_max(0) << "\n";
  std::cout << "expected     : " << 9999 * 4 << "\n";
  return high_score.read_max(0) == 9999 * 4 ? 0 : 1;
}
