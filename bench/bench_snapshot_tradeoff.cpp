// Experiment C1 (Corollary 1): the Scan/Update tradeoff for single-writer
// snapshots, plus the counter-from-snapshot reduction that transports
// Theorem 1 to snapshots.
//
// Paper claim: Scan = O(f(N)) forces Update = Omega(log(N/f(N))).
//   f-array snapshot:     Scan O(1)  -> Update must be Omega(log N): pays
//                         Theta(log N).
//   double collect:       Scan O(N) solo -> frontier collapses to 0:
//                         Update O(1) allowed, and indeed 1 step.
//   Afek et al.:          Scan O(N^2) -> likewise unconstrained updates,
//                         but wait-free from reads/writes alone.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "ruco/core/table.h"
#include "ruco/counter/snapshot_counter.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/snapshot/afek_snapshot.h"
#include "ruco/snapshot/double_collect_snapshot.h"
#include "ruco/snapshot/farray_snapshot.h"
#include "ruco/util/stats.h"

namespace {

using ruco::ProcId;

template <typename S>
void measure(std::uint32_t n, const char* name, ruco::Table& t) {
  S snap{n};
  ruco::util::Samples scans, updates;
  for (std::uint32_t i = 0; i < 3 * n; ++i) {
    {
      ruco::runtime::StepScope s;
      snap.update(static_cast<ProcId>(i % n), static_cast<ruco::Value>(i));
      updates.add(s.taken());
    }
    {
      ruco::runtime::StepScope s;
      (void)snap.scan(static_cast<ProcId>(i % n));
      scans.add(s.taken());
    }
  }
  const double frontier =
      std::log(static_cast<double>(n) / std::max(scans.mean(), 1.0)) /
      std::log(3.0);
  t.add(n, name, scans.mean(), updates.mean(), std::max(frontier, 0.0),
        updates.mean() >= frontier ? "yes" : "NO");
}

}  // namespace

int main() {
  std::cout << "# C1: snapshot tradeoff (Corollary 1)\n\n";
  ruco::Table t{{"N", "snapshot", "scan steps", "update steps",
                 "frontier log3(N/f)", "above frontier"}};
  for (const std::uint32_t n : {8u, 32u, 128u, 512u}) {
    measure<ruco::snapshot::FArraySnapshot>(n, "f-array (scan O(1))", t);
    measure<ruco::snapshot::DoubleCollectSnapshot>(
        n, "double collect (scan O(N))", t);
    measure<ruco::snapshot::AfekSnapshot>(n, "Afek et al. (scan O(N^2))", t);
  }
  t.print();

  std::cout << "\n## Counter-from-snapshot reduction (Corollary 1's proof "
               "vehicle)\n\n";
  ruco::Table r{{"N", "route", "read steps", "increment steps"}};
  for (const std::uint32_t n : {64u, 256u}) {
    ruco::counter::SnapshotCounter<ruco::snapshot::FArraySnapshot> via{n};
    ruco::util::Samples reads, incs;
    for (std::uint32_t i = 0; i < 2 * n; ++i) {
      {
        ruco::runtime::StepScope s;
        via.increment(static_cast<ProcId>(i % n));
        incs.add(s.taken());
      }
      ruco::runtime::StepScope s;
      (void)via.read(static_cast<ProcId>(i % n));
      reads.add(s.taken());
    }
    r.add(n, "counter over f-array snapshot", reads.mean(), incs.mean());
  }
  r.print();
  std::cout << "\nShape check: the O(1)-scan snapshot pays ~4 log2 N per "
               "update; the O(N)-scan snapshots update in O(1); the "
               "reduction's counter inherits the (1, log N) point -- no "
               "snapshot beats the frontier anywhere.\n";
  return 0;
}
