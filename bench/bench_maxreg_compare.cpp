// Experiment AAC: the read/update tradeoff across max register designs.
//
// Paper claims compared:
//   * AAC (reference [2], read/write only): ReadMax and WriteMax both
//     Theta(log M).
//   * Algorithm A (Theorem 6, adds CAS):   ReadMax O(1), WriteMax
//     O(min(log N, log v)).
//   * CAS retry loop:                      both O(1) solo -- but only
//     lock-free, and Theorem 3 still forces executions with
//     Omega(log log K) writes (see bench_thm3_adversary).
//
// Theorem 4 reading of this table: AAC is read-suboptimal by design; any
// read-optimal register (the other two) must pay Omega(log log min(N,M))
// on writes in SOME execution -- the solo numbers below show where each
// design spends its steps, the adversary bench shows the forced stretch.
#include <cstdint>
#include <iostream>

#include "ruco/core/table.h"
#include "ruco/maxreg/aac_max_register.h"
#include "ruco/maxreg/cas_max_register.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/maxreg/unbounded_aac_max_register.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/util/rng.h"
#include "ruco/util/stats.h"

namespace {

using ruco::Value;

template <typename Reg>
void measure(Reg& reg, Value bound, std::uint64_t seed,
             ruco::util::Samples& reads, ruco::util::Samples& writes) {
  ruco::util::SplitMix64 rng{seed};
  for (int i = 0; i < 2000; ++i) {
    const Value v =
        static_cast<Value>(rng.below(static_cast<std::uint64_t>(bound)));
    {
      ruco::runtime::StepScope s;
      reg.write_max(0, v);
      writes.add(s.taken());
    }
    {
      ruco::runtime::StepScope s;
      (void)reg.read_max(0);
      reads.add(s.taken());
    }
  }
}

}  // namespace

int main() {
  std::cout << "# AAC vs Algorithm A vs CAS loop: solo step costs over "
               "random workloads\n\n";
  ruco::Table t{{"M = N", "impl", "read mean", "read max", "write mean",
                 "write p99", "write max"}};
  for (const std::uint32_t m : {16u, 256u, 4096u, 65536u}) {
    {
      ruco::maxreg::AacMaxRegister reg{static_cast<Value>(m)};
      ruco::util::Samples r, w;
      measure(reg, static_cast<Value>(m), 42, r, w);
      t.add(m, "AAC (rw-only)", r.mean(), r.max(), w.mean(),
            w.percentile(99), w.max());
    }
    {
      ruco::maxreg::TreeMaxRegister reg{m};
      ruco::util::Samples r, w;
      measure(reg, static_cast<Value>(m), 42, r, w);
      t.add(m, "Algorithm A", r.mean(), r.max(), w.mean(), w.percentile(99),
            w.max());
    }
    {
      ruco::maxreg::UnboundedAacMaxRegister reg{26};
      ruco::util::Samples r, w;
      measure(reg, static_cast<Value>(m), 42, r, w);
      t.add(m, "unbounded AAC (rw)", r.mean(), r.max(), w.mean(),
            w.percentile(99), w.max());
    }
    {
      ruco::maxreg::CasMaxRegister reg;
      ruco::util::Samples r, w;
      measure(reg, static_cast<Value>(m), 42, r, w);
      t.add(m, "CAS loop", r.mean(), r.max(), w.mean(), w.percentile(99),
            w.max());
    }
  }
  t.print();
  std::cout
      << "\nShape check: AAC read&write grow ~log2(M) together; Algorithm A "
         "reads stay at 1 while writes grow ~log2; the CAS loop is flat "
         "solo (its cost appears only under the Theorem 3 adversary).\n";
  return 0;
}
