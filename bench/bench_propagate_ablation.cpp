// Ablation (DESIGN.md decision 2): why Algorithm A CASes *twice* per level
// (lines 6-9).  One attempt would save half the write steps -- and loses
// linearizability.  We quantify both sides:
//   (a) the step savings a single-attempt variant would enjoy,
//   (b) the violation rate random schedules expose for attempts = 1 vs the
//       zero violations for attempts = 2.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "ruco/core/table.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/sim_max_registers.h"
#include "ruco/util/rng.h"

namespace {

using ruco::ProcId;
using ruco::Value;
using ruco::simalgos::SimTreeMaxRegister;

struct SweepResult {
  int violations = 0;
  int runs = 0;
  double mean_write_steps = 0;
};

SweepResult sweep(int attempts, int seeds) {
  SweepResult out;
  std::uint64_t total_steps = 0;
  std::uint64_t total_writes = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    ruco::sim::Program prog;
    auto reg = std::make_shared<SimTreeMaxRegister>(
        prog, 4, ruco::maxreg::Faithfulness::kHelpOnDuplicate, attempts);
    constexpr Value kWriters = 2;  // sibling B1 leaves: the racy pair
    for (Value v = 1; v <= kWriters; ++v) {
      prog.add_process([reg, v](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
        ctx.mark_invoke("WriteMax", v);
        co_await reg->write_max(ctx, v);
        ctx.mark_return(0);
        co_return 0;
      });
    }
    prog.add_process([reg](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
      ctx.mark_invoke("ReadMax", 0);
      const Value v = co_await reg->read_max(ctx);
      ctx.mark_return(v);
      co_return v;
    });
    ruco::sim::System sys{prog};
    ruco::util::SplitMix64 rng{seed};
    std::vector<ProcId> live{0, 1};
    while (!live.empty()) {
      const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
      sys.step(live[i]);
      if (!sys.active(live[i])) {
        live[i] = live.back();
        live.pop_back();
      }
    }
    total_steps += sys.steps_taken(0) + sys.steps_taken(1);
    total_writes += 2;
    ruco::sim::run_solo(sys, kWriters, 1u << 20);  // reader strictly after
    const auto res = ruco::lincheck::check_linearizable(
        ruco::lincheck::from_sim_history(sys.history()),
        ruco::lincheck::MaxRegisterSpec{});
    ++out.runs;
    if (res.decided && !res.linearizable) ++out.violations;
  }
  out.mean_write_steps =
      static_cast<double>(total_steps) / static_cast<double>(total_writes);
  return out;
}

}  // namespace

int main() {
  std::cout << "# Ablation: double-CAS propagation (Algorithm A lines 6-9)"
               "\n\n";
  ruco::Table t{{"propagate attempts", "mean WriteMax steps",
                 "violations / runs", "linearizable"}};
  for (const int attempts : {1, 2, 3}) {
    const auto r = sweep(attempts, 1500);
    t.add(attempts, r.mean_write_steps,
          std::to_string(r.violations) + " / " + std::to_string(r.runs),
          r.violations == 0 ? "yes" : "NO");
  }
  t.print();
  std::cout
      << "\nShape check: one attempt is ~2x cheaper and measurably wrong "
         "(random schedules already catch completed-write losses); two "
         "attempts suffice -- the paper's Lemma 9 argument -- and a third "
         "buys nothing but steps.\n";
  return 0;
}
