// Experiment THR: real-hardware sanity pass.  The paper's measure is steps,
// not nanoseconds; this google-benchmark binary confirms the step story
// translates to wall-clock on real atomics: Algorithm A's O(1) reads are
// flat across N, AAC reads scale with log M, f-array counter reads beat
// AAC-counter reads, and contended throughput does not collapse.
#include <benchmark/benchmark.h>

#include "ruco/counter/farray_counter.h"
#include "ruco/counter/fetch_add_counter.h"
#include "ruco/counter/maxreg_counter.h"
#include "ruco/maxreg/aac_max_register.h"
#include "ruco/maxreg/cas_max_register.h"
#include "ruco/maxreg/lock_max_register.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/snapshot/afek_snapshot.h"
#include "ruco/snapshot/double_collect_snapshot.h"
#include "ruco/snapshot/farray_snapshot.h"
#include "ruco/util/rng.h"

namespace {

using ruco::ProcId;
using ruco::Value;

// ----------------------------------------------------- max registers

void BM_TreeMaxRegister_Read(benchmark::State& state) {
  ruco::maxreg::TreeMaxRegister reg{
      static_cast<std::uint32_t>(state.range(0))};
  reg.write_max(0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read_max(0));
  }
}
BENCHMARK(BM_TreeMaxRegister_Read)->Arg(8)->Arg(256)->Arg(4096);

void BM_AacMaxRegister_Read(benchmark::State& state) {
  ruco::maxreg::AacMaxRegister reg{state.range(0)};
  reg.write_max(0, state.range(0) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read_max(0));
  }
}
BENCHMARK(BM_AacMaxRegister_Read)->Arg(8)->Arg(256)->Arg(4096)->Arg(1 << 20);

void BM_TreeMaxRegister_WriteAscending(benchmark::State& state) {
  ruco::maxreg::TreeMaxRegister reg{
      static_cast<std::uint32_t>(state.range(0))};
  Value v = 0;
  for (auto _ : state) {
    reg.write_max(0, ++v);
  }
}
BENCHMARK(BM_TreeMaxRegister_WriteAscending)->Arg(8)->Arg(256)->Arg(4096);

void BM_AacMaxRegister_WriteAscending(benchmark::State& state) {
  ruco::maxreg::AacMaxRegister reg{1 << 20};
  Value v = 0;
  for (auto _ : state) {
    reg.write_max(0, (++v) % (1 << 20));
  }
}
BENCHMARK(BM_AacMaxRegister_WriteAscending);

void BM_CasMaxRegister_WriteAscending(benchmark::State& state) {
  ruco::maxreg::CasMaxRegister reg;
  Value v = 0;
  for (auto _ : state) {
    reg.write_max(0, ++v);
  }
}
BENCHMARK(BM_CasMaxRegister_WriteAscending);

void BM_LockMaxRegister_WriteAscending(benchmark::State& state) {
  ruco::maxreg::LockMaxRegister reg;
  Value v = 0;
  for (auto _ : state) {
    reg.write_max(0, ++v);
  }
}
BENCHMARK(BM_LockMaxRegister_WriteAscending);

// Contended mixed workload via benchmark's threading support.
ruco::maxreg::TreeMaxRegister g_tree_reg{16};

void BM_TreeMaxRegister_Contended(benchmark::State& state) {
  const auto proc = static_cast<ProcId>(state.thread_index());
  ruco::util::SplitMix64 rng{proc + 1u};
  for (auto _ : state) {
    if (rng.chance(1, 4)) {
      g_tree_reg.write_max(proc, static_cast<Value>(rng.below(1 << 20)));
    } else {
      benchmark::DoNotOptimize(g_tree_reg.read_max(proc));
    }
  }
}
BENCHMARK(BM_TreeMaxRegister_Contended)->Threads(1)->Threads(2)->MinTime(0.02);

// ---------------------------------------------------------- counters

void BM_FArrayCounter_Increment(benchmark::State& state) {
  ruco::counter::FArrayCounter c{static_cast<std::uint32_t>(state.range(0))};
  for (auto _ : state) {
    c.increment(0);
  }
}
BENCHMARK(BM_FArrayCounter_Increment)->Arg(8)->Arg(256)->Arg(4096);

void BM_FArrayCounter_Read(benchmark::State& state) {
  ruco::counter::FArrayCounter c{static_cast<std::uint32_t>(state.range(0))};
  c.increment(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.read(0));
  }
}
BENCHMARK(BM_FArrayCounter_Read)->Arg(8)->Arg(4096);

void BM_MaxRegCounter_Increment(benchmark::State& state) {
  ruco::counter::MaxRegCounter c{static_cast<std::uint32_t>(state.range(0)),
                                 1 << 16};
  for (auto _ : state) {
    c.increment(0);
  }
}
BENCHMARK(BM_MaxRegCounter_Increment)->Arg(8)->Arg(256)->Iterations(30000);

void BM_MaxRegCounter_Read(benchmark::State& state) {
  ruco::counter::MaxRegCounter c{static_cast<std::uint32_t>(state.range(0)),
                                 1 << 16};
  c.increment(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.read(0));
  }
}
BENCHMARK(BM_MaxRegCounter_Read)->Arg(8)->Arg(256);

void BM_FetchAddCounter_Increment(benchmark::State& state) {
  ruco::counter::FetchAddCounter c;
  for (auto _ : state) {
    c.increment(0);
  }
}
BENCHMARK(BM_FetchAddCounter_Increment);

ruco::counter::FArrayCounter g_counter{16};

void BM_FArrayCounter_Contended(benchmark::State& state) {
  const auto proc = static_cast<ProcId>(state.thread_index());
  for (auto _ : state) {
    g_counter.increment(proc);
  }
}
BENCHMARK(BM_FArrayCounter_Contended)->Threads(1)->Threads(2)->MinTime(0.02);

// --------------------------------------------------------- snapshots

void BM_FArraySnapshot_Scan(benchmark::State& state) {
  ruco::snapshot::FArraySnapshot snap{
      static_cast<std::uint32_t>(state.range(0))};
  snap.update(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
  }
}
BENCHMARK(BM_FArraySnapshot_Scan)->Arg(8)->Arg(128);

void BM_FArraySnapshot_Update(benchmark::State& state) {
  ruco::snapshot::FArraySnapshot snap{
      static_cast<std::uint32_t>(state.range(0))};
  Value v = 0;
  for (auto _ : state) {
    snap.update(0, ++v);
  }
}
// Iteration-capped: each update allocates O(N) view entries into the
// restricted-use arenas, so an open-ended timing loop grows memory without
// bound.
BENCHMARK(BM_FArraySnapshot_Update)->Arg(8)->Arg(128)->Iterations(20000);

void BM_DoubleCollect_Scan(benchmark::State& state) {
  ruco::snapshot::DoubleCollectSnapshot snap{
      static_cast<std::uint32_t>(state.range(0))};
  snap.update(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
  }
}
BENCHMARK(BM_DoubleCollect_Scan)->Arg(8)->Arg(128);

void BM_Afek_Update(benchmark::State& state) {
  ruco::snapshot::AfekSnapshot snap{
      static_cast<std::uint32_t>(state.range(0))};
  Value v = 0;
  for (auto _ : state) {
    snap.update(0, ++v);
  }
}
BENCHMARK(BM_Afek_Update)->Arg(8)->Arg(64)->Iterations(20000);

}  // namespace

BENCHMARK_MAIN();
