// Experiment T6 (Theorem 6 / Figure 4): Algorithm A's step complexities.
//
// Paper claim:  ReadMax is O(1); WriteMax(v) is O(min(log N, log v)).
//
// Series printed:
//   (a) ReadMax steps vs N               -- expected: constant 1.
//   (b) WriteMax(v) steps vs v at fixed N -- expected: grows ~ 8 log2 v
//       while v < N (B1 leaf regime), then flat ~ 4 log2 N (process leaf
//       regime).  The crossover at v = N is the min() in Theorem 6.
//   (c) WriteMax(1) steps vs N           -- expected: constant (the whole
//       point of the B1 subtree: small operands never pay log N).
#include <cstdint>
#include <iostream>

#include "ruco/core/table.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/util/bits.h"

namespace {

using ruco::ProcId;
using ruco::Value;

std::uint64_t write_steps(ruco::maxreg::TreeMaxRegister& reg, ProcId p,
                          Value v) {
  ruco::runtime::StepScope scope;
  reg.write_max(p, v);
  return scope.taken();
}

}  // namespace

int main() {
  std::cout << "# T6: Algorithm A step complexity (Hendler-Khait Thm 6)\n\n";

  {
    std::cout << "## (a) ReadMax steps vs N  [paper: O(1)]\n\n";
    ruco::Table t{{"N", "ReadMax steps"}};
    for (const std::uint32_t n : {2u, 8u, 32u, 128u, 512u, 2048u, 8192u}) {
      ruco::maxreg::TreeMaxRegister reg{n};
      reg.write_max(0, 1);
      ruco::runtime::StepScope scope;
      (void)reg.read_max(1);
      t.add(n, scope.taken());
    }
    t.print();
  }

  {
    constexpr std::uint32_t kN = 1024;
    std::cout << "\n## (b) WriteMax(v) steps vs v at N = " << kN
              << "  [paper: O(min(log N, log v)); crossover at v = N]\n\n";
    ruco::Table t{{"v", "steps (fresh reg)", "regime", "leaf depth"}};
    for (const Value v :
         {Value{0}, Value{1}, Value{3}, Value{7}, Value{15}, Value{63},
          Value{255}, Value{1023}, Value{1024}, Value{4096}, Value{1 << 16},
          Value{1 << 20}}) {
      ruco::maxreg::TreeMaxRegister reg{kN};
      const auto steps = write_steps(reg, 0, v);
      t.add(v, steps, v < Value{kN} ? "B1 (log v)" : "TR (log N)",
            reg.write_leaf_depth(0, v));
    }
    t.print();
  }

  {
    std::cout << "\n## (c) WriteMax(1) steps vs N  [paper: O(1), independent"
                 " of N]\n\n";
    ruco::Table t{{"N", "WriteMax(1) steps", "WriteMax(N-1) steps",
                   "WriteMax(2N) steps"}};
    for (const std::uint32_t n : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
      ruco::maxreg::TreeMaxRegister a{n};
      ruco::maxreg::TreeMaxRegister b{n};
      ruco::maxreg::TreeMaxRegister c{n};
      t.add(n, write_steps(a, 0, 1), write_steps(b, 0, Value{n} - 1),
            write_steps(c, 0, Value{n} * 2));
    }
    t.print();
  }

  std::cout << "\nShape check: (a) constant, (b) ~8*log2(v) before the "
               "v=N crossover then flat, (c) column 1 constant while "
               "columns 2-3 grow ~4*log2(N).\n";
  return 0;
}
