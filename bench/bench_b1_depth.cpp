// Experiment Fig4: the data structure of Figure 4 -- the Bentley-Yao B1
// left subtree (leaf v at depth O(log v)) vs the complete right subtree
// (every leaf at depth ceil(log2 N)), the two regimes behind Theorem 6.
#include <cstdint>
#include <iostream>

#include "ruco/core/table.h"
#include "ruco/util/bits.h"
#include "ruco/util/tree_shape.h"

int main() {
  std::cout << "# Fig 4: tree shape -- B1 value leaves vs complete process "
               "leaves\n\n";
  constexpr std::uint32_t kN = 4096;
  const ruco::util::AlgorithmATreeShape shape{kN};

  std::cout << "## B1 leaf depth vs value v (N = " << kN
            << ")  [paper: O(log v)]\n\n";
  ruco::Table t{{"v", "depth(value leaf)", "2*log2(v+1)+3 bound"}};
  for (const std::uint64_t v :
       {0ull, 1ull, 2ull, 3ull, 7ull, 15ull, 63ull, 255ull, 1023ull,
        4095ull}) {
    t.add(v, shape.depth(shape.value_leaf(v)),
          2 * ruco::util::floor_log2(v + 1) + 3);
  }
  t.print();

  std::cout << "\n## Process leaf depth (right subtree)  [paper: O(log N), "
               "uniform]\n\n";
  ruco::Table p{{"process i", "depth(process leaf)", "ceil(log2 N)+1"}};
  for (const std::uint32_t i : {0u, 1u, 2047u, 4095u}) {
    p.add(i, shape.depth(shape.process_leaf(i)),
          ruco::util::ceil_log2(kN) + 1);
  }
  p.print();

  std::cout << "\n## Node count vs N (4N-1 total: 2N-1 per subtree + root)\n\n";
  ruco::Table c{{"N", "nodes", "4N-1"}};
  for (const std::uint32_t n : {4u, 64u, 1024u, 16384u}) {
    const ruco::util::AlgorithmATreeShape s{n};
    c.add(n, s.node_count(), 4ull * n - 1);
  }
  c.print();
  std::cout << "\nShape check: value-leaf depth tracks 2 log2(v) regardless "
               "of N; process leaves sit uniformly at log2(N); Figure 4's "
               "N=4 instance is the first row block.\n";
  return 0;
}
