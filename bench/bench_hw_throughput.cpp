// Hardware throughput with cross-layer telemetry: ops/sec, shared-memory
// steps/op (the paper's complexity measure, from runtime::thread_steps),
// and CAS failure rate (from the ruco::telemetry registry deltas) for the
// production max-register and counter implementations under real threads.
//
// The step-complexity benches report *per-operation* cost on one thread;
// this one reports the contended picture the telemetry layer exists for:
// how many base-object events each op really issued under N threads and
// what fraction of CAS attempts lost their race.
//
// Two workload modes:
//   default   every thread writes its own ascending op counter, so threads
//             frequently write values the register already covers -- the
//             duplicate/fast-path regime.
//   --contend thread t writes ops * nthreads + t: values interleave across
//             threads and every write is a fresh maximum, so writes race on
//             the root path instead of short-circuiting -- the worst-case
//             CAS-contention regime the conditional refresh and backoff are
//             aimed at.
//
//   --threads=N   worker threads (default 4)
//   --ms=M        measured window per workload (default 200)
//   --smoke       tiny run for CI (2 threads, 50 ms)
//   --contend     add the contended-mode workloads
//   --sweep       run each workload at 1, 2, 4, ... up to --threads
//   --json <path>     machine-readable results
//   --perfetto <path> sampled op timeline (open at ui.perfetto.dev)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ruco/core/table.h"
#include "ruco/counter/farray_counter.h"
#include "ruco/maxreg/cas_max_register.h"
#include "ruco/maxreg/tree_max_register.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/runtime/thread_harness.h"
#include "ruco/telemetry/registry.h"
#include "ruco/telemetry/timeline.h"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now().time_since_epoch())
          .count());
}

struct WorkloadResult {
  std::string name;
  std::string mode;  // "default" or "contend"
  std::uint64_t threads = 0;
  std::uint64_t ops = 0;
  std::uint64_t steps = 0;  // shared-memory events across all threads
  double wall_s = 0.0;
  std::uint64_t cas_attempts = 0;  // registry delta over the window
  std::uint64_t cas_failures = 0;

  [[nodiscard]] double ops_per_sec() const {
    return wall_s > 0 ? static_cast<double>(ops) / wall_s : 0.0;
  }
  [[nodiscard]] double steps_per_op() const {
    return ops > 0 ? static_cast<double>(steps) / static_cast<double>(ops)
                   : 0.0;
  }
  [[nodiscard]] double cas_fail_rate() const {
    return cas_attempts > 0 ? static_cast<double>(cas_failures) /
                                  static_cast<double>(cas_attempts)
                            : 0.0;
  }
};

std::uint64_t registry_value(const ruco::telemetry::Snapshot& snap,
                             const std::string& domain,
                             const std::string& name) {
  const auto* m = snap.find(domain, name);
  return m != nullptr ? m->value : 0;
}

/// Runs `body(thread, op_index)` on every thread until the deadline,
/// recording every `kSampleEvery`-th op into the Perfetto recorder.
template <typename Body>
WorkloadResult run_workload(const std::string& name, const std::string& mode,
                            std::size_t threads, std::uint64_t window_ms,
                            ruco::telemetry::OpRecorder* recorder,
                            std::uint32_t op_name_id, Body&& body) {
  constexpr std::uint64_t kSampleEvery = 1024;
  WorkloadResult r;
  r.name = name;
  r.mode = mode;
  r.threads = threads;
  std::vector<std::uint64_t> ops_per_thread(threads, 0);
  std::vector<std::uint64_t> steps_per_thread(threads, 0);

  const auto before = ruco::telemetry::Registry::global().snapshot();
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::milliseconds(window_ms);
  ruco::runtime::run_threads(threads, [&](std::size_t t) {
    const std::uint64_t steps_before = ruco::runtime::thread_steps();
    std::uint64_t ops = 0;
    while (Clock::now() < deadline) {
      // Batch between clock reads; the clock costs more than the ops.
      for (int i = 0; i < 64; ++i, ++ops) {
        if (recorder != nullptr && ops % kSampleEvery == 0) {
          const std::uint64_t start = now_us();
          body(t, ops);
          recorder->record(static_cast<std::uint32_t>(t), op_name_id, start,
                           std::max<std::uint64_t>(1, now_us() - start));
        } else {
          body(t, ops);
        }
      }
    }
    ops_per_thread[t] = ops;
    steps_per_thread[t] = ruco::runtime::thread_steps() - steps_before;
  });
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  const auto after = ruco::telemetry::Registry::global().snapshot();
  for (std::size_t t = 0; t < threads; ++t) {
    r.ops += ops_per_thread[t];
    r.steps += steps_per_thread[t];
  }
  // CAS telemetry across the algorithm layers this binary exercises.
  for (const char* name_in_domain : {"cas_attempts", "propagate_cas_attempts"}) {
    r.cas_attempts += registry_value(after, "maxreg", name_in_domain) -
                      registry_value(before, "maxreg", name_in_domain);
  }
  for (const char* name_in_domain : {"cas_failures", "propagate_cas_failures"}) {
    r.cas_failures += registry_value(after, "maxreg", name_in_domain) -
                      registry_value(before, "maxreg", name_in_domain);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 4;
  std::uint64_t window_ms = 200;
  bool smoke = false;
  bool contend = false;
  bool sweep = false;
  std::string json_path;
  std::string perfetto_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--contend") contend = true;
    if (arg == "--sweep") sweep = true;
    if (arg.rfind("--threads=", 0) == 0) threads = std::stoull(arg.substr(10));
    if (arg.rfind("--ms=", 0) == 0) window_ms = std::stoull(arg.substr(5));
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    if (arg == "--perfetto" && i + 1 < argc) perfetto_path = argv[++i];
  }
  if (smoke) {
    threads = std::min<std::size_t>(threads, 2);
    window_ms = std::min<std::uint64_t>(window_ms, 50);
  }
  if (threads == 0) threads = 1;

  std::cout << "# Hardware throughput with telemetry: " << threads
            << " threads, " << window_ms << " ms per workload"
            << (contend ? ", with contended mode" : "")
            << (sweep ? ", thread sweep" : "") << "\n\n";

  ruco::telemetry::OpRecorder recorder{static_cast<std::uint32_t>(threads),
                                       4096};
  ruco::telemetry::OpRecorder* rec =
      perfetto_path.empty() ? nullptr : &recorder;

  std::vector<WorkloadResult> results;

  // One pass over the three workloads at a given thread count.  In the
  // default mode thread t writes its own op counter (values collide across
  // threads: the duplicate/fast-path regime); in contend mode thread t
  // writes ops * tc + t so every write is a fresh maximum racing up the
  // root path.
  const auto run_suite = [&](std::size_t tc, bool contended) {
    const auto n = static_cast<std::uint32_t>(tc);
    const char* mode = contended ? "contend" : "default";
    {
      ruco::maxreg::CasMaxRegister reg;
      const auto op = recorder.intern("cas_maxreg.write+read");
      results.push_back(run_workload(
          "cas maxreg", mode, tc, window_ms, rec, op,
          [&](std::size_t t, std::uint64_t ops) {
            const auto v = static_cast<ruco::Value>(
                contended ? ops * tc + t : ops);
            reg.write_max(static_cast<ruco::ProcId>(t), v);
            (void)reg.read_max(static_cast<ruco::ProcId>(t));
          }));
    }
    {
      ruco::maxreg::TreeMaxRegister reg{n};
      const auto op = recorder.intern("tree_maxreg.write+read");
      results.push_back(run_workload(
          "tree maxreg (Alg A)", mode, tc, window_ms, rec, op,
          [&](std::size_t t, std::uint64_t ops) {
            const auto v = static_cast<ruco::Value>(
                contended ? ops * tc + t : ops);
            reg.write_max(static_cast<ruco::ProcId>(t), v);
            (void)reg.read_max(static_cast<ruco::ProcId>(t));
          }));
    }
    {
      ruco::counter::FArrayCounter counter{n};
      const auto op = recorder.intern("farray_counter.inc+read");
      // A counter increment has no value operand; contend mode only drops
      // the read so every op races on the propagation path.
      results.push_back(run_workload(
          "f-array counter", mode, tc, window_ms, rec, op,
          [&](std::size_t t, std::uint64_t) {
            counter.increment(static_cast<ruco::ProcId>(t));
            if (!contended) (void)counter.read(static_cast<ruco::ProcId>(t));
          }));
    }
  };

  std::vector<std::size_t> thread_counts;
  if (sweep) {
    for (std::size_t tc = 1; tc < threads; tc *= 2) thread_counts.push_back(tc);
  }
  thread_counts.push_back(threads);
  for (const std::size_t tc : thread_counts) {
    run_suite(tc, false);
    if (contend) run_suite(tc, true);
  }

  ruco::Table t{{"workload", "mode", "threads", "ops/sec", "steps/op",
                 "CAS fail rate"}};
  for (const auto& r : results) {
    t.add(r.name, r.mode, r.threads,
          static_cast<std::uint64_t>(r.ops_per_sec()), r.steps_per_op(),
          r.cas_fail_rate());
  }
  t.print();

  if (!json_path.empty()) {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"hw_throughput\",\n  \"threads\": " << threads
        << ",\n  \"window_ms\": " << window_ms << ",\n  \"series\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      out << "    {\"workload\": \"" << r.name << "\", \"mode\": \"" << r.mode
          << "\", \"threads\": " << r.threads << ", \"ops\": " << r.ops
          << ", \"ops_per_sec\": " << r.ops_per_sec()
          << ", \"steps_per_op\": " << r.steps_per_op()
          << ", \"cas_attempts\": " << r.cas_attempts
          << ", \"cas_failures\": " << r.cas_failures
          << ", \"cas_fail_rate\": " << r.cas_fail_rate() << "}"
          << (i + 1 == results.size() ? "" : ",") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  if (!perfetto_path.empty()) {
    ruco::telemetry::TimelineWriter tl;
    recorder.export_to(tl, 1, "bench_hw_throughput");
    const std::string err = tl.validate();
    if (!err.empty()) {
      std::cerr << "perfetto export invalid: " << err << "\n";
      return 1;
    }
    if (!tl.write_file(perfetto_path)) {
      std::cerr << "cannot write " << perfetto_path << "\n";
      return 1;
    }
    std::cout << "wrote " << perfetto_path << " (" << tl.num_events()
              << " events, " << recorder.dropped()
              << " dropped; open at ui.perfetto.dev)\n";
  }
  std::cout << "\nShape check: the cas register reads in O(1) but pays for "
               "contention in failed CAS retries; Algorithm A's tree "
               "register spreads writes over O(log N) switches with "
               "conditional refresh pruning the second CAS round (near-zero "
               "failures in the default regime, root fast path absorbing "
               "duplicate maxima); the f-array counter reads in one step "
               "with O(log N) updates.\n";
  return 0;
}
