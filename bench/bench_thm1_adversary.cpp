// Experiment T1-adv (Theorem 1's construction, end to end): the adversary
// starves N-1 concurrent CounterIncrements with Lemma 1 rounds; no correct
// counter can finish them all before round log_3(N / f(N)).
//
// Series printed, per N and per counter family:
//   rounds r until all increments completed   vs   the bound log_3(N/f)
//   (f = the reader's measured steps),
//   the slowest increment's step count,
//   the Lemma 3 probe: reader's answer, steps, awareness (must reach N).
#include <cmath>
#include <cstdint>
#include <iostream>

#include "ruco/adversary/counter_adversary.h"
#include "ruco/core/table.h"
#include "ruco/simalgos/programs.h"

namespace {

void report_row(ruco::Table& t, const char* name,
                const ruco::adversary::CounterAdversaryReport& r) {
  const double f = static_cast<double>(r.reader_steps);
  const double bound =
      std::log(static_cast<double>(r.n) / std::max(f, 1.0)) / std::log(3.0);
  t.add(r.n, name, r.rounds, r.max_increment_steps, f, std::max(bound, 0.0),
        r.knowledge_bound_held ? "yes" : "NO",
        r.reader_correct ? "yes" : "NO", r.reader_awareness);
}

}  // namespace

int main() {
  std::cout << "# T1-adv: Theorem 1 adversary vs counters\n\n";
  ruco::Table t{{"N", "counter", "rounds r", "max inc steps",
                 "f (reader steps)", "log3(N/f)", "M<=3^j", "reader ok",
                 "|AW(reader)|"}};
  for (const std::uint32_t n : {9u, 27u, 81u, 243u, 729u, 2187u}) {
    report_row(t, "f-array",
               ruco::adversary::run_counter_adversary(
                   ruco::simalgos::make_farray_counter_program(n)));
  }
  for (const std::uint32_t n : {9u, 27u, 81u, 243u}) {
    report_row(t, "AAC maxreg",
               ruco::adversary::run_counter_adversary(
                   ruco::simalgos::make_maxreg_counter_program(
                       n, static_cast<ruco::Value>(n))));
  }
  for (const std::uint32_t n : {9u, 27u, 81u, 243u}) {
    report_row(t, "2-CAS (outside model)",
               ruco::adversary::run_counter_adversary(
                   ruco::simalgos::make_kcas_counter_program(n)));
  }
  t.print();
  std::cout
      << "\nShape check: rounds r >= log3(N/f) everywhere (the lower "
         "bound); for the f-array r tracks ~4 log2 N (its actual increment "
         "cost), i.e. the bound is loose by the constant the paper "
         "predicts; reader awareness = N confirms Lemma 3's information "
         "requirement.  The 2-CAS counter (stronger primitive, outside "
         "Theorem 1's model) is solo-cheap but only lock-free: the "
         "adversary stretches it to Theta(N) rounds -- one k-CAS winner "
         "per wave.\n";
  return 0;
}
