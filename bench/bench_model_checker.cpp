// Model-checker economics, in two parts.
//
// Part 1 (unchanged): coverage vs preemption bound -- schedules explored
// under iterative context bounding, and the measured *bug depth* of the
// two Algorithm A defects this reproduction identified (the printed
// early-return gap at depth 1, the single-propagation-attempt ablation at
// depth 2).
//
// Part 2: the exploration engine itself.  The rearchitected checker keeps
// one live System per worker and replays only on backtrack (replay-light
// DFS), optionally prunes commuting interleavings (sleep-set POR plus a
// persistent-set filter over declared footprints), and splits the tree
// across worker threads.  This benchmark measures each win separately:
//
//   * headline -- the 4-process Algorithm A exhaustive check (one writer
//     on a K=8 tree, three single-step readers; every interleaving
//     linearizability-checked): legacy recursive engine vs the
//     replay-light engine with POR at jobs = 1.  Acceptance: >= 5x.
//   * bounded series -- context-bounded runs (POR gated off by design):
//     replay-light alone.
//   * disjoint-writers series -- processes with declared disjoint
//     footprints: the persistent-set filter collapses the factorial
//     schedule space to essentially one representative.
//   * jobs scaling -- a budgeted deep exploration split across
//     jobs in {1, 2, 4}; executions stay identical (deterministic budget
//     tickets), wall time should drop near-linearly.
//
// --json <path> writes the measurements (including the headline speedup)
// as JSON for CI and the checked-in BENCH_model_checker.json; --smoke
// shrinks the workloads for fast CI runs.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ruco/core/table.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/model_checker.h"
#include "ruco/simalgos/sim_max_registers.h"

namespace {

using ruco::Value;
using ruco::sim::ObjectId;
using ruco::maxreg::Faithfulness;

ruco::sim::Program make_program(Faithfulness mode, int attempts,
                                bool same_operand) {
  ruco::sim::Program prog;
  auto reg = std::make_shared<ruco::simalgos::SimTreeMaxRegister>(
      prog, 4, mode, attempts);
  for (int w = 0; w < 2; ++w) {
    const Value v = same_operand ? 1 : w + 1;
    prog.add_process([reg, v](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
      ctx.mark_invoke("WriteMax", v);
      co_await reg->write_max(ctx, v);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value got = co_await reg->read_max(ctx);
    ctx.mark_return(got);
    co_return got;
  });
  return prog;
}

/// The headline workload: one writer propagating through a K-leaf
/// Algorithm A tree plus `readers` single-step root readers -- the largest
/// Algorithm A configuration whose *full* interleaving space the legacy
/// engine can enumerate in benchmark time.
ruco::sim::Program make_headline_program(std::uint32_t k,
                                         std::uint32_t readers) {
  ruco::sim::Program prog;
  auto reg = std::make_shared<ruco::simalgos::SimTreeMaxRegister>(
      prog, k, Faithfulness::kHelpOnDuplicate, 2);
  const Value v = static_cast<Value>(k - 1);
  prog.add_process([reg, v](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
    ctx.mark_invoke("WriteMax", v);
    co_await reg->write_max(ctx, v);
    ctx.mark_return(0);
    co_return 0;
  });
  for (std::uint32_t r = 0; r < readers; ++r) {
    prog.add_process([reg](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
      ctx.mark_invoke("ReadMax", 0);
      const Value got = co_await reg->read_max(ctx);
      ctx.mark_return(got);
      co_return got;
    });
  }
  return prog;
}

/// POR showcase: n processes, each writing `steps` ascending values to its
/// own object, footprints declared.  Every pair of steps from different
/// processes commutes, so the persistent-set filter reduces the
/// (n*steps)!/(steps!)^n interleavings to a single representative.
ruco::sim::Program make_disjoint_writers(std::uint32_t n,
                                         std::uint32_t steps) {
  ruco::sim::Program prog;
  std::vector<ObjectId> objs;
  for (std::uint32_t p = 0; p < n; ++p) objs.push_back(prog.add_object(0));
  for (std::uint32_t p = 0; p < n; ++p) {
    const ObjectId o = objs[p];
    prog.add_process(
        [o, steps](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
          for (std::uint32_t s = 1; s <= steps; ++s) {
            co_await ctx.write(o, static_cast<Value>(s));
          }
          co_return 0;
        },
        {o});
  }
  return prog;
}

std::string lin_verdict(const ruco::sim::System& sys) {
  const auto res = ruco::lincheck::check_linearizable(
      ruco::lincheck::from_sim_history(sys.history()),
      ruco::lincheck::MaxRegisterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable";
}

std::string ok_verdict(const ruco::sim::System&) { return ""; }

struct Measurement {
  std::string series;
  std::string config;
  ruco::sim::ModelCheckResult result;
};

/// JSON-escapes nothing fancy: all our strings are plain ASCII labels.
void write_json(const std::string& path, bool smoke,
                const std::vector<Measurement>& rows, double baseline_ms,
                double optimized_ms,
                const std::vector<std::pair<std::uint32_t, double>>& scaling) {
  std::ofstream out{path};
  out << "{\n  \"bench\": \"model_checker\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"hardware_cores\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"headline\": {\n"
      << "    \"workload\": \"4-process Algorithm A exhaustive "
         "(1 writer + 3 readers, K=8 tree)\",\n"
      << "    \"baseline\": \"legacy recursive engine\",\n"
      << "    \"optimized\": \"replay-light + POR, jobs=1\",\n"
      << "    \"baseline_ms\": " << baseline_ms << ",\n"
      << "    \"optimized_ms\": " << optimized_ms << ",\n"
      << "    \"speedup\": "
      << (optimized_ms > 0 ? baseline_ms / optimized_ms : 0.0) << ",\n"
      << "    \"jobs_scaling\": [";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "{\"jobs\": " << scaling[i].first
        << ", \"wall_ms\": " << scaling[i].second << "}";
  }
  out << "]\n  },\n  \"series\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = rows[i];
    const auto& s = m.result.stats;
    out << "    {\"series\": \"" << m.series << "\", \"config\": \""
        << m.config << "\", \"ok\": " << (m.result.ok ? "true" : "false")
        << ", \"executions\": " << m.result.executions
        << ", \"nodes\": " << s.nodes
        << ", \"applied_steps\": " << s.applied_steps
        << ", \"replayed_steps\": " << s.replayed_steps
        << ", \"sleep_pruned\": " << s.sleep_pruned
        << ", \"persistent_pruned\": " << s.persistent_pruned
        << ", \"jobs\": " << s.jobs_used << ", \"wall_ms\": " << s.wall_ms
        << "}" << (i + 1 == rows.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  std::cout << "# Context-bounded model checking: coverage vs bound, and "
               "measured bug depths\n\n";

  ruco::Table t{{"variant", "bound", "schedules", "violation found"}};
  struct Case {
    const char* name;
    Faithfulness mode;
    int attempts;
    bool same_operand;
  };
  const Case cases[] = {
      {"as-printed (early-return gap)", Faithfulness::kAsPrinted, 2, true},
      {"propagate-once ablation", Faithfulness::kHelpOnDuplicate, 1, false},
      {"fixed Algorithm A", Faithfulness::kHelpOnDuplicate, 2, true},
  };
  for (const auto& c : cases) {
    for (const std::uint32_t bound : {0u, 1u, 2u}) {
      const auto prog = make_program(c.mode, c.attempts, c.same_operand);
      ruco::sim::ModelCheckOptions options;
      options.preemption_bound = bound;
      const auto result = ruco::sim::model_check(prog, lin_verdict, options);
      t.add(c.name, bound, result.executions, result.ok ? "no" : "YES");
      if (!result.ok) break;  // deeper bounds would re-find it
    }
  }
  t.print();

  // ------------------------------------------------------ engine benchmarks
  std::cout << "\n# Exploration engine: legacy recursion vs replay-light "
               "DFS + POR + parallel split\n\n";

  std::vector<Measurement> rows;
  ruco::Table perf{{"series", "config", "executions", "nodes",
                    "replayed steps", "sleep-pruned", "wall ms"}};
  auto record = [&](const std::string& series, const std::string& config,
                    const ruco::sim::ModelCheckResult& r) {
    perf.add(series, config, r.executions, r.stats.nodes,
             r.stats.replayed_steps, r.stats.sleep_pruned + r.stats.persistent_pruned,
             static_cast<std::uint64_t>(r.stats.wall_ms));
    rows.push_back({series, config, r});
    if (!r.ok) {
      std::cerr << "UNEXPECTED violation in " << series << "/" << config
                << ": " << r.message << "\n";
    }
  };

  using Engine = ruco::sim::ModelCheckOptions::Engine;

  // Headline: exhaustive 4-process Algorithm A (smoke: K=4 tree, 7980
  // interleavings; full: K=8 tree, 21924).
  const std::uint32_t headline_k = smoke ? 4 : 8;
  const auto headline = make_headline_program(headline_k, 3);
  double baseline_ms = 0;
  double optimized_ms = 0;
  {
    ruco::sim::ModelCheckOptions o;
    o.engine = Engine::kLegacyRecursive;
    const auto r = ruco::sim::model_check(headline, lin_verdict, o);
    record("headline algA 1w+3r K=" + std::to_string(headline_k), "legacy",
           r);
    baseline_ms = r.stats.wall_ms;
  }
  {
    ruco::sim::ModelCheckOptions o;
    const auto r = ruco::sim::model_check(headline, lin_verdict, o);
    record("headline algA 1w+3r K=" + std::to_string(headline_k),
           "replay-light", r);
  }
  {
    ruco::sim::ModelCheckOptions o;
    o.por = true;
    const auto r = ruco::sim::model_check(headline, lin_verdict, o);
    record("headline algA 1w+3r K=" + std::to_string(headline_k),
           "replay-light+POR", r);
    optimized_ms = r.stats.wall_ms;
  }

  // Context-bounded series: POR is gated off under a preemption bound, so
  // this isolates the replay-light win.
  for (const std::uint32_t bound : {1u, 2u}) {
    const auto prog = make_program(Faithfulness::kHelpOnDuplicate, 2, true);
    for (const Engine eng : {Engine::kLegacyRecursive, Engine::kIterative}) {
      ruco::sim::ModelCheckOptions o;
      o.preemption_bound = bound;
      o.engine = eng;
      const auto r = ruco::sim::model_check(prog, lin_verdict, o);
      record("bounded 2w+1r bound=" + std::to_string(bound),
             eng == Engine::kIterative ? "replay-light" : "legacy", r);
    }
  }

  // Disjoint-writers series: declared footprints let the persistent-set
  // filter collapse the factorial schedule space to one representative.
  {
    const std::uint32_t n = 3;
    const std::uint32_t steps = smoke ? 2 : 4;  // 90 / 34650 interleavings
    const auto label = "disjoint " + std::to_string(n) + "w x " +
                       std::to_string(steps) + " steps";
    const auto prog = make_disjoint_writers(n, steps);
    {
      ruco::sim::ModelCheckOptions o;
      o.engine = Engine::kLegacyRecursive;
      record(label, "legacy", ruco::sim::model_check(prog, ok_verdict, o));
    }
    {
      ruco::sim::ModelCheckOptions o;
      record(label, "replay-light",
             ruco::sim::model_check(prog, ok_verdict, o));
    }
    {
      ruco::sim::ModelCheckOptions o;
      o.por = true;
      record(label, "replay-light+POR",
             ruco::sim::model_check(prog, ok_verdict, o));
    }
  }

  // Parallel scaling: a deep budgeted exploration (2 writers + reader on
  // the K=4 tree, 38-step schedules).  The budget is reserved through a
  // shared ticket counter, so executions are identical for every jobs
  // value while wall time drops.
  std::vector<std::pair<std::uint32_t, double>> scaling;
  {
    const auto prog = make_program(Faithfulness::kHelpOnDuplicate, 2, false);
    for (const std::uint32_t jobs : {1u, 2u, 4u}) {
      ruco::sim::ModelCheckOptions o;
      o.max_executions = smoke ? 20'000 : 150'000;
      o.jobs = jobs;
      const auto r = ruco::sim::model_check(prog, lin_verdict, o);
      record("budgeted 2w+1r", "jobs=" + std::to_string(jobs), r);
      scaling.emplace_back(jobs, r.stats.wall_ms);
    }
  }

  perf.print();
  const double speedup =
      optimized_ms > 0 ? baseline_ms / optimized_ms : 0.0;
  std::cout << "\nheadline: legacy " << baseline_ms << " ms -> replay-light"
            << "+POR " << optimized_ms << " ms at jobs=1  ("
            << speedup << "x)\n";
  if (!scaling.empty() && scaling.back().second > 0) {
    std::cout << "scaling: jobs=1 " << scaling.front().second
              << " ms -> jobs=" << scaling.back().first << " "
              << scaling.back().second << " ms  ("
              << scaling.front().second / scaling.back().second << "x) on "
              << std::thread::hardware_concurrency() << " hardware core(s)";
    if (std::thread::hardware_concurrency() < scaling.back().first) {
      std::cout << " -- fewer cores than jobs; expect flat wall time here "
                   "and near-linear scaling on a multicore host";
    }
    std::cout << "\n";
  }
  std::cout
      << "\nShape check: the replay-light engine eliminates the legacy "
         "fresh-System-per-node construction and its full-prefix replay at "
         "every interior node, POR prunes commuting interleavings "
         "(factorially many for the disjoint-footprint writers), and the "
         "parallel split divides the same deterministic exploration across "
         "workers.\n";

  if (!json_path.empty()) {
    write_json(json_path, smoke, rows, baseline_ms, optimized_ms, scaling);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
