// Model-checking coverage economics: schedules explored vs preemption
// bound (iterative context bounding), and the measured *bug depth* of the
// two Algorithm A defects this reproduction identified -- the printed
// early-return gap (depth 1) and the single-propagation-attempt ablation
// (depth 2).  Full exploration of the same programs is astronomically
// large; bounding makes the search systematic and fast.
#include <cstdint>
#include <iostream>
#include <memory>

#include "ruco/core/table.h"
#include "ruco/lincheck/checker.h"
#include "ruco/lincheck/specs.h"
#include "ruco/sim/model_checker.h"
#include "ruco/simalgos/sim_max_registers.h"

namespace {

using ruco::Value;
using ruco::maxreg::Faithfulness;

ruco::sim::Program make_program(Faithfulness mode, int attempts,
                                bool same_operand) {
  ruco::sim::Program prog;
  auto reg = std::make_shared<ruco::simalgos::SimTreeMaxRegister>(
      prog, 4, mode, attempts);
  for (int w = 0; w < 2; ++w) {
    const Value v = same_operand ? 1 : w + 1;
    prog.add_process([reg, v](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
      ctx.mark_invoke("WriteMax", v);
      co_await reg->write_max(ctx, v);
      ctx.mark_return(0);
      co_return 0;
    });
  }
  prog.add_process([reg](ruco::sim::Ctx& ctx) -> ruco::sim::Op {
    ctx.mark_invoke("ReadMax", 0);
    const Value got = co_await reg->read_max(ctx);
    ctx.mark_return(got);
    co_return got;
  });
  return prog;
}

std::string lin_verdict(const ruco::sim::System& sys) {
  const auto res = ruco::lincheck::check_linearizable(
      ruco::lincheck::from_sim_history(sys.history()),
      ruco::lincheck::MaxRegisterSpec{});
  if (!res.decided) return "undecided";
  return res.linearizable ? "" : "non-linearizable";
}

}  // namespace

int main() {
  std::cout << "# Context-bounded model checking: coverage vs bound, and "
               "measured bug depths\n\n";

  ruco::Table t{{"variant", "bound", "schedules", "violation found"}};
  struct Case {
    const char* name;
    Faithfulness mode;
    int attempts;
    bool same_operand;
  };
  const Case cases[] = {
      {"as-printed (early-return gap)", Faithfulness::kAsPrinted, 2, true},
      {"propagate-once ablation", Faithfulness::kHelpOnDuplicate, 1, false},
      {"fixed Algorithm A", Faithfulness::kHelpOnDuplicate, 2, true},
  };
  for (const auto& c : cases) {
    for (const std::uint32_t bound : {0u, 1u, 2u}) {
      const auto prog = make_program(c.mode, c.attempts, c.same_operand);
      ruco::sim::ModelCheckOptions options;
      options.preemption_bound = bound;
      const auto result = ruco::sim::model_check(prog, lin_verdict, options);
      t.add(c.name, bound, result.executions, result.ok ? "no" : "YES");
      if (!result.ok) break;  // deeper bounds would re-find it
    }
  }
  t.print();
  std::cout
      << "\nShape check: the printed pseudocode's gap appears at bound 1 "
         "(one ordering constraint: stall the first writer after its leaf "
         "write); the single-CAS ablation needs bound 2; the fixed "
         "algorithm survives every schedule with <= 2 preemptions of this "
         "3-process program -- tens of thousands of schedules, each "
         "replayed and Wing-Gong-checked, in well under a second.\n";
  return 0;
}
