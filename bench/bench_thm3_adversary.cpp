// Experiment T3-adv (Theorem 3's construction, end to end): the
// essential-set adversary against the max registers.
//
// Paper claims exercised:
//   * Lemma 4: each iteration keeps |E_{i+1}| >= sqrt(m)/3 - 2 (Equation 4:
//     |E_i| = Omega(K^(1/3^i))).
//   * Theorem 3: with ReadMax = O(f(K)) the construction sustains
//     i* = Omega(log log K / log f(K)) iterations, so Omega(f(K)) processes
//     each take i* steps inside one WriteMax.
//   * Claim 1 / Definitions 5-7: every erasure replays response-exact, and
//     hidden/supreme/step invariants hold each iteration (checked live).
//
// Tables: per-iteration decay trace at K = 1024, then i* as K sweeps for
// the three register designs.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "ruco/adversary/maxreg_adversary.h"
#include "ruco/core/table.h"
#include "ruco/simalgos/programs.h"

namespace {

using ruco::adversary::MaxRegAdversaryOptions;
using ruco::adversary::MaxRegAdversaryReport;
using ruco::adversary::run_maxreg_adversary;

void decay_table(const MaxRegAdversaryReport& r, const char* name) {
  std::cout << "\n## Per-iteration essential-set decay: " << name
            << " (K = " << r.k << ")\n\n";
  ruco::Table t{{"i", "case", "m (active)", "|E_i| after",
                 "sqrt(m)/3-2 floor", "erased", "halted", "replay",
                 "invariants"}};
  for (const auto& it : r.iterations) {
    const double floor_bound =
        std::sqrt(static_cast<double>(it.active_before)) / 3.0 - 2.0;
    t.add(it.index, ruco::adversary::to_string(it.contention),
          it.active_before, it.essential_after, std::max(floor_bound, 0.0),
          it.erased, it.halted ? "1" : "0", it.replay_ok ? "ok" : "FAIL",
          it.invariants_ok ? "ok" : "FAIL");
  }
  t.print();
  std::cout << "stop: " << r.stop_reason
            << "; reader value = " << r.reader_value
            << " (consistent: " << (r.reader_ok ? "yes" : "NO") << ")\n";
}

}  // namespace

int main() {
  std::cout << "# T3-adv: Theorem 3 essential-set adversary\n";

  {
    MaxRegAdversaryOptions opts;
    opts.max_iterations = 24;
    decay_table(run_maxreg_adversary(
                    ruco::simalgos::make_cas_maxreg_program(1024), opts),
                "CAS retry loop (f(K) = 1)");
  }
  {
    MaxRegAdversaryOptions opts;
    opts.max_iterations = 24;
    opts.min_active = 16;
    decay_table(run_maxreg_adversary(
                    ruco::simalgos::make_tree_maxreg_program(1024), opts),
                "Algorithm A (f(K) = 1)");
  }

  std::cout << "\n## i* vs K (iterations sustained before Lemma 4's floor "
               "m >= 81; Theorem 3: Omega(log log K) for f(K) = O(1))\n\n";
  ruco::Table t{{"K", "impl", "i*", "|E_i*|", "loglog K", "sound"}};
  for (const std::uint32_t k : {128u, 512u, 2048u, 4096u}) {
    for (const char* impl : {"cas", "tree", "aac"}) {
      MaxRegAdversaryOptions opts;
      opts.max_iterations = 24;
      MaxRegAdversaryReport r =
          impl[0] == 'c'
              ? run_maxreg_adversary(
                    ruco::simalgos::make_cas_maxreg_program(k), opts)
              : impl[0] == 't'
                    ? run_maxreg_adversary(
                          ruco::simalgos::make_tree_maxreg_program(k), opts)
                    : run_maxreg_adversary(
                          ruco::simalgos::make_aac_maxreg_program(
                              k, static_cast<ruco::Value>(k)),
                          opts);
      const double llk =
          std::log2(std::max(std::log2(static_cast<double>(k)), 1.0));
      t.add(k, impl, r.iterations_completed, r.final_essential, llk,
            (r.all_replays_ok && r.all_invariants_ok && r.reader_ok &&
             r.all_size_bounds_ok)
                ? "yes"
                : "NO");
    }
  }
  t.print();
  std::cout
      << "\nShape check: i* >= log log K for the O(1)-read designs (cas, "
         "tree) -- each surviving WriteMax was stretched to i* steps while "
         "its issuer stayed invisible to everyone; every iteration's "
         "erasure replayed response-exact (Claim 1) and kept the "
         "hidden/supreme invariants (Definitions 5-7).\n";
  return 0;
}
