// Wait-freedom under crash storms: worst-case survivor step counts as the
// number of injected crashes f grows (the paper's fault model is f < N).
// The wait-free algorithms' survivors finish in a bounded -- essentially
// flat -- number of their own steps no matter how many peers crash
// mid-operation; the spinlock register is the blocking contrast: one
// crashed lock holder and the survivors spin until the schedule budget
// runs out.
//
// --json <path> dumps the table as JSON; --smoke shrinks the seed count
// for fast CI runs.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ruco/core/table.h"
#include "ruco/sim/fault.h"
#include "ruco/sim/schedulers.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"

namespace {

using ruco::ProcId;

struct StormResult {
  bool all_completed = true;   // every survivor finished in every storm
  std::uint64_t worst = 0;     // max own-steps any survivor needed
  std::uint64_t crashes = 0;   // total crashes actually injected
};

StormResult run_storms(const ruco::sim::Program& program,
                       std::uint32_t max_crashes, std::uint64_t seeds,
                       std::uint64_t budget) {
  StormResult out;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    ruco::sim::System sys{program};
    ruco::sim::FaultPlan plan;
    plan.seed = seed;
    plan.max_random_crashes = max_crashes;
    plan.crash_per_mille = max_crashes == 0 ? 0 : 150;
    plan.min_survivors = 1;
    ruco::sim::FaultInjector injector{sys, plan};
    ruco::sim::run_random(sys, seed * 977, budget, injector);
    out.crashes += injector.crash_count();
    for (ProcId p = 0; p < sys.num_processes(); ++p) {
      if (sys.crashed(p)) continue;
      out.worst = std::max(out.worst, sys.steps_taken(p));
      out.all_completed = out.all_completed && sys.done(p);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  std::cout << "# Crash storms: worst survivor step count vs crashes "
               "injected (f < N = 8)\n\n";

  constexpr std::uint32_t kProcs = 8;
  const std::uint64_t kSeeds = smoke ? 8 : 32;
  // Small budget: wait-free survivors need only dozens of steps; a blocking
  // survivor spins to the budget, so a tight one keeps the contrast fast.
  constexpr std::uint64_t kBudget = 1u << 14;

  // Keep the whole bundles: the Program bodies reference the algorithm
  // instance each bundle owns.
  const auto tree = ruco::simalgos::make_tree_maxreg_program(kProcs);
  const auto cas = ruco::simalgos::make_cas_maxreg_program(kProcs);
  const auto aac = ruco::simalgos::make_aac_maxreg_program(kProcs, kProcs);
  const auto farray = ruco::simalgos::make_farray_counter_program(kProcs);
  const auto lock = ruco::simalgos::make_lock_maxreg_program(kProcs);
  struct Target {
    const char* name;
    const ruco::sim::Program& program;
  };
  const Target targets[] = {
      {"tree maxreg (Alg A)", tree.program},
      {"cas maxreg", cas.program},
      {"aac maxreg", aac.program},
      {"f-array counter", farray.program},
      {"LOCK maxreg (blocking)", lock.program},
  };

  struct Row {
    std::string name;
    std::uint32_t f = 0;
    StormResult r;
  };
  std::vector<Row> rows;
  ruco::Table t{{"algorithm", "max crashes", "crashes injected",
                 "worst survivor steps", "all survivors done"}};
  for (const auto& target : targets) {
    for (const std::uint32_t f : {0u, 1u, 2u, 4u, kProcs - 1}) {
      const auto r = run_storms(target.program, f, kSeeds, kBudget);
      t.add(target.name, f, r.crashes, r.worst, r.all_completed ? "yes" : "NO");
      rows.push_back({target.name, f, r});
    }
  }
  t.print();
  if (!json_path.empty()) {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"crash_storm\",\n  \"procs\": " << kProcs
        << ",\n  \"seeds\": " << kSeeds << ",\n  \"series\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"algorithm\": \"" << rows[i].name
          << "\", \"max_crashes\": " << rows[i].f
          << ", \"crashes_injected\": " << rows[i].r.crashes
          << ", \"worst_survivor_steps\": " << rows[i].r.worst
          << ", \"all_survivors_done\": "
          << (rows[i].r.all_completed ? "true" : "false") << "}"
          << (i + 1 == rows.size() ? "" : ",") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  std::cout
      << "\nShape check: for the wait-free algorithms the worst survivor "
         "step count stays flat (within the fault-free ballpark) as f grows "
         "to N-1 and every survivor completes.  The spinlock register "
         "completes only at f = 0: once a storm crashes the lock holder, "
         "the survivors spin until the " << kBudget
      << "-step budget expires -- exactly the behavior the wait-freedom "
         "certifier rejects.\n";
  return 0;
}
