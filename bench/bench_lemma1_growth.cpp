// Experiment L1 (Lemma 1): one adversary round at most triples the largest
// awareness/familiarity set:  M(E sigma) <= 3 M(E).
//
// We run the Lemma 1 scheduler round by round over both counter families
// and print, per round, the measured knowledge high-water mark next to the
// 3^j envelope the Theorem 1 construction relies on (capped at N -- no set
// can exceed the process count).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "ruco/adversary/lemma_one.h"
#include "ruco/core/table.h"
#include "ruco/sim/system.h"
#include "ruco/simalgos/programs.h"

namespace {

using ruco::ProcId;

void run(const ruco::simalgos::CounterProgram& bundle, const char* name) {
  ruco::sim::System sys{bundle.program};
  std::vector<ProcId> procs;
  for (ProcId p = 0; p < bundle.num_incrementers; ++p) procs.push_back(p);

  std::cout << "\n## " << name << " (N = " << bundle.num_incrementers + 1
            << ")\n\n";
  ruco::Table t{{"round j", "M(E_j)", "3^j cap", "ratio vs prev",
                 "bound held"}};
  std::size_t cap = 1;
  std::size_t prev = 1;
  for (int j = 1; j <= 1 << 20; ++j) {
    std::vector<ProcId> active;
    for (const ProcId p : procs) {
      if (sys.active(p)) active.push_back(p);
    }
    if (active.empty()) break;
    const auto round = ruco::adversary::lemma_one_round(sys, active);
    cap = std::min(cap * 3, procs.size() + 1);
    // Print the first rounds and every power-of-two round after.
    if (j <= 8 || (j & (j - 1)) == 0) {
      t.add(j, round.knowledge_after, cap,
            static_cast<double>(round.knowledge_after) /
                static_cast<double>(std::max<std::size_t>(prev, 1)),
            round.bound_held() && round.knowledge_after <= cap ? "yes"
                                                               : "NO");
    }
    prev = round.knowledge_after;
  }
  t.print();
}

}  // namespace

int main() {
  std::cout << "# L1: knowledge growth per Lemma 1 round (M(E_j) <= 3^j)\n";
  run(ruco::simalgos::make_farray_counter_program(243), "f-array counter");
  run(ruco::simalgos::make_maxreg_counter_program(243, 243),
      "AAC max-register counter");
  std::cout << "\nShape check: the per-round growth ratio never exceeds 3, "
               "so the familiarity sets need Omega(log_3 N) rounds to cover "
               "all N processes -- the engine of Theorem 1.\n";
  return 0;
}
