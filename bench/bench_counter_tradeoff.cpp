// Experiment T1-frontier (Theorem 1 / Theorem 2): the counter read/update
// tradeoff.  For every counter we place its measured (read steps, update
// steps) point against the frontier  update >= log_3(N / read).
//
// Paper claim: any obstruction-free read/write/CAS counter with
// CounterRead = O(f(N)) has CounterIncrement = Omega(log(N/f(N))).  In
// particular (Theorem 2) a read-optimal counter has Omega(log N) updates.
// The fetch_add row uses a primitive outside the model -- the point the
// tradeoff forbids for read/write/CAS.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "ruco/core/table.h"
#include "ruco/counter/farray_counter.h"
#include "ruco/counter/fetch_add_counter.h"
#include "ruco/counter/kcas_counter.h"
#include "ruco/counter/maxreg_counter.h"
#include "ruco/counter/unbounded_maxreg_counter.h"
#include "ruco/counter/snapshot_counter.h"
#include "ruco/runtime/stepcount.h"
#include "ruco/snapshot/farray_snapshot.h"
#include "ruco/util/stats.h"

namespace {

using ruco::ProcId;
using ruco::Value;

struct Point {
  double read_mean = 0;
  double update_mean = 0;
};

template <typename C>
Point measure(C& c, std::uint32_t n) {
  ruco::util::Samples reads, updates;
  for (std::uint32_t i = 0; i < 4 * n; ++i) {
    {
      ruco::runtime::StepScope s;
      c.increment(static_cast<ProcId>(i % n));
      updates.add(s.taken());
    }
    {
      ruco::runtime::StepScope s;
      (void)c.read(static_cast<ProcId>(i % n));
      reads.add(s.taken());
    }
  }
  return Point{reads.mean(), updates.mean()};
}

double frontier(std::uint32_t n, double f) {
  return std::log(static_cast<double>(n) / std::max(f, 1.0)) / std::log(3.0);
}

}  // namespace

int main() {
  std::cout << "# T1: counter tradeoff -- measured (read, update) vs the "
               "Omega(log(N/f)) frontier\n\n";
  ruco::Table t{{"N", "counter", "read steps", "update steps",
                 "frontier log3(N/f)", "in-model", "above frontier"}};
  for (const std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    const Value u = 8 * static_cast<Value>(n);  // restricted-use budget
    {
      ruco::counter::FArrayCounter c{n};
      const auto p = measure(c, n);
      const double fb = frontier(n, p.read_mean);
      t.add(n, "f-array (CAS)", p.read_mean, p.update_mean, fb, "yes",
            p.update_mean >= fb ? "yes" : "NO");
    }
    {
      ruco::counter::MaxRegCounter c{n, u};
      const auto p = measure(c, n);
      const double fb = frontier(n, p.read_mean);
      t.add(n, "AAC maxreg (rw)", p.read_mean, p.update_mean, fb, "yes",
            p.update_mean >= fb ? "yes" : "NO");
    }
    {
      ruco::counter::SnapshotCounter<ruco::snapshot::FArraySnapshot> c{n};
      const auto p = measure(c, n);
      const double fb = frontier(n, p.read_mean);
      t.add(n, "snapshot-reduction", p.read_mean, p.update_mean, fb, "yes",
            p.update_mean >= fb ? "yes" : "NO");
    }
    {
      // Value-sensitive variant: costs grow with the count reached (about
      // 4N increments here), not with a preset bound.
      ruco::counter::UnboundedMaxRegCounter c{n};
      const auto p = measure(c, n);
      const double fb = frontier(n, p.read_mean);
      t.add(n, "unbounded AAC (rw)", p.read_mean, p.update_mean, fb, "yes",
            p.update_mean >= fb ? "yes" : "NO");
    }
    {
      ruco::counter::FetchAddCounter c;
      const auto p = measure(c, n);
      const double fb = frontier(n, p.read_mean);
      t.add(n, "fetch_add", p.read_mean, p.update_mean, fb,
            "NO (stronger primitive)",
            p.update_mean >= fb ? "yes" : "no (allowed: outside model)");
    }
    {
      // Software 2-CAS (HFP MCAS from single-word CAS): uncontended cost
      // shown; worst case is unbounded (lock-free), so Theorem 1 holds.
      ruco::counter::KcasCounter c{n};
      const auto p = measure(c, n);
      const double fb = frontier(n, p.read_mean);
      t.add(n, "2-CAS (software MCAS)", p.read_mean, p.update_mean, fb,
            "yes (built from CAS)",
            p.update_mean >= fb ? "yes" : "solo only; worst case unbounded");
    }
  }
  t.print();
  std::cout
      << "\nShape check: every in-model counter sits on or above the "
         "frontier; fetch_add sits below it, which is exactly what "
         "read/write/CAS implementations cannot do (Theorem 1).  The "
         "f-array hugs the frontier (read 1, update ~4 log2 N with the "
         "conditional refresh); the AAC "
         "counter trades a log-factor on updates for staying read/write "
         "only.\n";
  return 0;
}
