#!/usr/bin/env python3
"""Perf-smoke regression guard over bench_hw_throughput JSON output.

Usage: check_perf_smoke.py <bench_json> [baseline_json]

Compares steps/op of selected (workload, mode, threads) series against the
recorded baselines (scripts/perf_baseline.json by default) and fails when a
series exceeds its baseline by more than the configured tolerance.  Steps/op
is the paper's complexity measure -- unlike ops/sec it does not depend on CI
machine speed.  Solo (threads=1) lanes are fully deterministic, so a 10%
excursion means an actual hot-path step regression (an extra load in the
refresh loop, a lost fast path), not noise.  Contended lanes are *not*
deterministic: a lost first-round CAS legitimately triggers a second
refresh round (up to 4 extra events per level), so adverse scheduling on a
noisy runner can push steps/op above the solo ceiling.  Those lanes carry a
measured baseline plus a wider per-lane tolerance.

A baseline entry is either a bare number (steps/op ceiling, checked with
the global tolerance) or an object {"baseline": B, "tolerance": T} for a
lane that needs its own headroom.
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "perf_baseline.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)
    tolerance = float(baseline.get("tolerance", 1.10))

    series = {}
    for entry in bench.get("series", []):
        key = "|".join(
            [entry["workload"],
             entry.get("mode", "default"),
             str(entry.get("threads", bench.get("threads", "?")))])
        series[key] = float(entry["steps_per_op"])

    failures = []
    for key, entry in baseline["baselines"].items():
        if isinstance(entry, dict):
            base = float(entry["baseline"])
            lane_tolerance = float(entry.get("tolerance", tolerance))
        else:
            base = float(entry)
            lane_tolerance = tolerance
        if key not in series:
            failures.append(f"missing series '{key}' in {bench_path}")
            continue
        measured = series[key]
        limit = base * lane_tolerance
        verdict = "OK" if measured <= limit else "FAIL"
        print(f"{verdict}: {key}: steps/op {measured:.2f} "
              f"(baseline {base:.2f}, limit {limit:.2f})")
        if measured > limit:
            failures.append(
                f"{key}: steps/op {measured:.2f} exceeds {limit:.2f}")

    if failures:
        print("\nperf-smoke regression guard FAILED:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("\nperf-smoke regression guard passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
