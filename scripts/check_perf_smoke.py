#!/usr/bin/env python3
"""Perf-smoke regression guard over bench_hw_throughput JSON output.

Usage: check_perf_smoke.py <bench_json> [baseline_json]
       check_perf_smoke.py --self-test

Compares steps/op of selected (workload, mode, threads) series against the
recorded baselines (scripts/perf_baseline.json by default) and fails when a
series exceeds its baseline by more than the configured tolerance.  Steps/op
is the paper's complexity measure -- unlike ops/sec it does not depend on CI
machine speed.  Solo (threads=1) lanes are fully deterministic, so a 10%
excursion means an actual hot-path step regression (an extra load in the
refresh loop, a lost fast path), not noise.  Contended lanes are *not*
deterministic: a lost first-round CAS legitimately triggers a second
refresh round (up to 4 extra events per level), so adverse scheduling on a
noisy runner can push steps/op above the solo ceiling.  Those lanes carry a
measured baseline plus a wider per-lane tolerance.

A baseline entry is either a bare number (steps/op ceiling, checked with
the global tolerance) or an object {"baseline": B, "tolerance": T} for a
lane that needs its own headroom.

Malformed input never raises: every missing or non-numeric field turns
into a per-lane failure line naming the file, the lane, and the field, so
a truncated bench JSON or a mistyped baseline reads as an actionable
verdict instead of a KeyError traceback.  `--self-test` exercises the
guard against synthetic in-memory fixtures (pass, regression, missing
lane, malformed entry, bad baseline) and is run by CI before the real
comparison.
"""

import json
import os
import sys


def load_series(bench, bench_path):
    """Index bench series by lane key; report malformed entries."""
    series = {}
    problems = []
    entries = bench.get("series")
    if not isinstance(entries, list):
        return series, [f"{bench_path}: no 'series' array at top level"]
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"{bench_path}: series[{i}] is not an object")
            continue
        workload = entry.get("workload")
        if not workload:
            problems.append(
                f"{bench_path}: series[{i}] has no 'workload' field")
            continue
        key = "|".join(
            [workload,
             entry.get("mode", "default"),
             str(entry.get("threads", bench.get("threads", "?")))])
        try:
            series[key] = float(entry["steps_per_op"])
        except KeyError:
            problems.append(
                f"{bench_path}: lane '{key}' has no 'steps_per_op' field")
        except (TypeError, ValueError):
            problems.append(
                f"{bench_path}: lane '{key}' has non-numeric steps_per_op "
                f"{entry['steps_per_op']!r}")
    return series, problems


def check(bench, baseline, bench_path="<bench>", baseline_path="<baseline>",
          out=sys.stdout):
    """Core comparison; returns the list of failure messages."""
    try:
        tolerance = float(baseline.get("tolerance", 1.10))
    except (TypeError, ValueError):
        return [f"{baseline_path}: global 'tolerance' is not a number"]
    lanes = baseline.get("baselines")
    if not isinstance(lanes, dict):
        return [f"{baseline_path}: no 'baselines' object at top level"]

    series, failures = load_series(bench, bench_path)
    for key, entry in lanes.items():
        try:
            if isinstance(entry, dict):
                base = float(entry["baseline"])
                lane_tolerance = float(entry.get("tolerance", tolerance))
            else:
                base = float(entry)
                lane_tolerance = tolerance
        except KeyError:
            failures.append(
                f"{baseline_path}: lane '{key}' object has no 'baseline'")
            continue
        except (TypeError, ValueError):
            failures.append(
                f"{baseline_path}: lane '{key}' has a non-numeric "
                "baseline/tolerance")
            continue
        if key not in series:
            failures.append(
                f"missing lane '{key}' in {bench_path} -- the bench run "
                "did not produce this series (crashed early, or the "
                "workload/mode/threads key changed?)")
            continue
        measured = series[key]
        limit = base * lane_tolerance
        verdict = "OK" if measured <= limit else "FAIL"
        print(f"{verdict}: {key}: steps/op {measured:.2f} "
              f"(baseline {base:.2f}, limit {limit:.2f})", file=out)
        if measured > limit:
            failures.append(
                f"{key}: steps/op {measured:.2f} exceeds {limit:.2f}")
    return failures


def self_test() -> int:
    """Run the guard against synthetic fixtures; 0 iff all behave."""
    import io

    def run(bench, baseline):
        return check(bench, baseline, "bench.json", "base.json",
                     out=io.StringIO())

    lane = {"workload": "counter", "mode": "solo", "threads": 1,
            "steps_per_op": 3.0}
    good_bench = {"series": [lane]}
    good_base = {"tolerance": 1.10, "baselines": {"counter|solo|1": 3.0}}

    cases = [
        ("clean pass", run(good_bench, good_base), []),
        ("regression flagged",
         run({"series": [dict(lane, steps_per_op=9.0)]}, good_base),
         ["exceeds"]),
        ("per-lane tolerance respected",
         run({"series": [dict(lane, steps_per_op=4.0)]},
             {"baselines": {"counter|solo|1":
                            {"baseline": 3.0, "tolerance": 1.5}}}),
         []),
        ("missing lane named",
         run({"series": []}, good_base), ["missing lane 'counter|solo|1'"]),
        ("entry without steps_per_op named, not KeyError",
         run({"series": [{"workload": "counter", "mode": "solo",
                          "threads": 1}]}, good_base),
         ["no 'steps_per_op'", "missing lane"]),
        ("entry without workload named",
         run({"series": [{"steps_per_op": 3.0}]}, good_base),
         ["no 'workload'", "missing lane"]),
        ("non-numeric steps_per_op named",
         run({"series": [dict(lane, steps_per_op="fast")]}, good_base),
         ["non-numeric steps_per_op", "missing lane"]),
        ("bench without series named",
         run({}, good_base), ["no 'series' array", "missing lane"]),
        ("baseline object without 'baseline' named",
         run(good_bench, {"baselines": {"counter|solo|1": {"tolerance": 2}}}),
         ["no 'baseline'"]),
        ("baseline without 'baselines' named",
         run(good_bench, {}), ["no 'baselines' object"]),
    ]

    bad = 0
    for name, failures, expected_bits in cases:
        if len(failures) != len(expected_bits) or not all(
                bit in msg for bit, msg in zip(expected_bits, failures)):
            print(f"SELF-TEST FAIL: {name}: got {failures!r}, "
                  f"expected fragments {expected_bits!r}")
            bad += 1
        else:
            print(f"self-test ok: {name}")
    if bad:
        print(f"\ncheck_perf_smoke self-test FAILED ({bad} case(s))")
        return 1
    print(f"\ncheck_perf_smoke self-test passed ({len(cases)} cases).")
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    bench_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "perf_baseline.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = check(bench, baseline, bench_path, baseline_path)
    if failures:
        print("\nperf-smoke regression guard FAILED:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print("\nperf-smoke regression guard passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
