#!/usr/bin/env bash
# Regenerates the checked-in exploration-engine benchmark evidence.
#
#   scripts/run_benches.sh [build-dir]
#
# Builds the benchmark targets in an optimized tree (default: ./build,
# configured RelWithDebInfo if it does not exist yet), runs the full
# model-checker benchmark, and writes BENCH_model_checker.json at the repo
# root (plus crash-storm and hardware-throughput JSONs alongside it).  Pass
# --smoke through the BENCH_SMOKE=1 environment variable for a fast
# CI-sized run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
smoke_flag=""
if [[ "${BENCH_SMOKE:-0}" != "0" ]]; then
  smoke_flag="--smoke"
fi

if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$build_dir" \
    --target bench_model_checker bench_crash_storm bench_hw_throughput -j

"$build_dir/bench/bench_model_checker" $smoke_flag \
    --json "$repo_root/BENCH_model_checker.json"
"$build_dir/bench/bench_crash_storm" $smoke_flag \
    --json "$repo_root/BENCH_crash_storm.json"
"$build_dir/bench/bench_hw_throughput" $smoke_flag --contend --sweep \
    --json "$repo_root/BENCH_throughput.json"

echo "wrote $repo_root/BENCH_model_checker.json"
echo "wrote $repo_root/BENCH_crash_storm.json"
echo "wrote $repo_root/BENCH_throughput.json"
