#!/usr/bin/env bash
# Regenerates every experiment table in EXPERIMENTS.md from a built tree.
#   scripts/regen_experiments.sh [build-dir]   (default: build)
set -euo pipefail
build="${1:-build}"
for b in bench_alg_a_steps bench_b1_depth bench_maxreg_compare \
         bench_counter_tradeoff bench_snapshot_tradeoff \
         bench_lemma1_growth bench_thm1_adversary bench_thm3_adversary \
         bench_model_checker bench_propagate_ablation; do
  echo "=== ${b} ==="
  "${build}/bench/${b}"
  echo
done
echo "=== bench_throughput (google-benchmark) ==="
"${build}/bench/bench_throughput" --benchmark_min_time=0.05
